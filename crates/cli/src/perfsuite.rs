//! Performance suite: runs the registry's figure workloads under each
//! future-event-list backend and writes one `BENCH_<date>.json`
//! trajectory point (events/sec, wall time, peak pending events,
//! topology-cache hit rate per figure), so perf regressions show up as a
//! broken series of committed baselines rather than as anecdotes.
//!
//! ```text
//! mpvsim perfsuite --quick
//! mpvsim perfsuite --out BENCH_2026-08-06.json
//! ```
//!
//! The workloads are exactly the [`StudyKind::Figure`] entries of the
//! [`mpvsim_core::studies`] registry — a figure added there is
//! benchmarked automatically. Each workload runs over its own
//! [`TopologyCache`], so the report also shows how many network
//! generations the cache eliminated for cells sharing a network.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mpvsim_core::figures::FigureOptions;
use mpvsim_core::studies::{registry, StudyId, StudyKind};
use mpvsim_core::{EngineOptions, LayoutKind, ProbeKind, TopologyCache, TopologyCacheStats};
use mpvsim_des::{ExperimentObserver, FelKind, ObserverHandle, ReplicationMetrics};

/// The benchmarked studies: every figure in the registry.
fn workloads() -> Vec<StudyId> {
    registry().iter().filter(|s| s.kind == StudyKind::Figure).map(|s| s.id).collect()
}

/// Every (backend, probe) configuration a workload runs under: both
/// backends bare (heap first, so the comparison reads "calendar vs
/// heap"), plus the calendar backend with the do-nothing probe attached —
/// the third run isolates the cost of probe *dispatch* (the `Option`
/// branch + virtual call per hook), reported as the `probe_overhead`
/// section of the JSON document.
const RUNS: [(FelKind, ProbeKind); 3] = [
    (FelKind::BinaryHeap, ProbeKind::None),
    (FelKind::Calendar, ProbeKind::None),
    (FelKind::Calendar, ProbeKind::Noop),
];

const USAGE: &str = "\
usage: mpvsim perfsuite [--quick] [--out PATH] [--figure NAME]... [--scale N]... [--shards K]... [--reps N] [--seed S] [--threads T] [--population P] [--layout KIND]
  --quick              reduced workload for CI smoke runs (2 reps, population 250)
  --out PATH           output path (default BENCH_<utc-date>.json)
  --figure NAME        run only this workload (repeatable; e.g. fig1_baseline)
  --scale N            also run one Virus 1 baseline replication at population N
                       (repeatable) and report bytes/phone in the scaling section
  --shards K           shard counts for the fig1-shard workload (repeatable;
                       default 1 and 8; speedups are reported against K=1)
  --reps N             replications per scenario (default 10)
  --seed S             master seed (default 2007)
  --threads T          worker threads; 0 = auto-detect (default 4)
  --population P       population size (default 1000)
  --layout KIND        state-array layout: fresh|arena (default fresh)
";

/// Parsed command line.
struct SuiteOptions {
    figure: FigureOptions,
    out: Option<PathBuf>,
    only: Vec<String>,
    quick: bool,
    scales: Vec<usize>,
    shard_counts: Vec<usize>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<SuiteOptions, String> {
    let mut opts = FigureOptions::default();
    let mut out = None;
    let mut only = Vec::new();
    let mut quick = false;
    let mut scales = Vec::new();
    let mut shard_counts = Vec::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => {
                let v = args.next().ok_or_else(|| format!("--out needs a path\n{USAGE}"))?;
                out = Some(PathBuf::from(v));
            }
            "--figure" => {
                let v = args.next().ok_or_else(|| format!("--figure needs a name\n{USAGE}"))?;
                if !workloads().iter().any(|id| id.name() == v) {
                    let known: Vec<&str> = workloads().iter().map(|id| id.name()).collect();
                    return Err(format!("unknown figure {v:?}; known: {known:?}\n{USAGE}"));
                }
                only.push(v);
            }
            "--layout" => {
                let v = args.next().ok_or_else(|| format!("--layout needs a value\n{USAGE}"))?;
                opts.engine.layout = LayoutKind::from_name(&v).ok_or_else(|| {
                    format!("unknown layout {v:?} (one of: fresh, arena)\n{USAGE}")
                })?;
            }
            "--reps" | "--seed" | "--threads" | "--population" | "--scale" | "--shards" => {
                let v = args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
                let parsed: u64 = v
                    .parse()
                    .map_err(|_| format!("{flag} value {v:?} is not a number\n{USAGE}"))?;
                match flag.as_str() {
                    "--reps" => opts.reps = parsed,
                    "--seed" => opts.master_seed = parsed,
                    "--threads" => {
                        opts.engine.threads = if parsed == 0 {
                            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                        } else {
                            parsed as usize
                        };
                    }
                    "--population" => opts.population = parsed as usize,
                    "--scale" => {
                        if parsed == 0 {
                            return Err(format!("--scale must be positive\n{USAGE}"));
                        }
                        scales.push(parsed as usize);
                    }
                    "--shards" => {
                        if parsed == 0 {
                            return Err(format!("--shards must be positive\n{USAGE}"));
                        }
                        shard_counts.push(parsed as usize);
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if quick {
        opts.reps = 2;
        opts.population = 250;
    }
    if opts.reps == 0 || opts.population == 0 {
        return Err(format!("reps and population must be positive\n{USAGE}"));
    }
    if shard_counts.is_empty() {
        shard_counts = vec![1, 8];
    }
    Ok(SuiteOptions { figure: opts, out, only, quick, scales, shard_counts })
}

/// Observer that accumulates engine counters across one workload run:
/// total events processed and the worst pending-event high-water mark
/// any replication reached.
#[derive(Default)]
struct MetricsCollector {
    events: AtomicU64,
    peak_pending: AtomicUsize,
    peak_event_bytes: AtomicUsize,
    reps: AtomicU64,
}

impl ExperimentObserver for MetricsCollector {
    fn on_replication_finish(&self, m: &ReplicationMetrics) {
        self.events.fetch_add(m.sim.events_processed, Ordering::Relaxed);
        self.peak_pending.fetch_max(m.sim.peak_pending_events, Ordering::Relaxed);
        self.peak_event_bytes.fetch_max(m.sim.peak_event_bytes, Ordering::Relaxed);
        self.reps.fetch_add(1, Ordering::Relaxed);
    }
}

/// The UTC date (`YYYY-MM-DD`) of a unix timestamp, via the standard
/// civil-from-days conversion — enough calendar math to name a file
/// without pulling in a date crate.
fn utc_date(secs_since_epoch: u64) -> String {
    let days = (secs_since_epoch / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// One (figure, backend, probe) measurement.
struct Measurement {
    figure: &'static str,
    fel: FelKind,
    probe: ProbeKind,
    shards: usize,
    curves: usize,
    reps: u64,
    wall_secs: f64,
    events_processed: u64,
    events_per_sec: f64,
    peak_pending_events: usize,
    peak_event_bytes: usize,
    cache: TopologyCacheStats,
}

fn run_workload(
    study: StudyId,
    base: &FigureOptions,
    fel: FelKind,
    probe: ProbeKind,
) -> Result<Measurement, String> {
    let collector = Arc::new(MetricsCollector::default());
    let cache = TopologyCache::shared();
    let opts = FigureOptions {
        observer: ObserverHandle::from_arc(collector.clone()),
        engine: EngineOptions { fel, probe, ..base.engine },
        topology_cache: Some(Arc::clone(&cache)),
        ..base.clone()
    };
    let started = Instant::now();
    let results =
        study.run(&opts).map_err(|e| format!("{} [{}]: {e}", study.name(), fel.label()))?;
    let wall_secs = started.elapsed().as_secs_f64();
    let events = collector.events.load(Ordering::Relaxed);
    Ok(Measurement {
        figure: study.name(),
        fel,
        probe,
        shards: base.engine.shards,
        curves: results.len(),
        reps: collector.reps.load(Ordering::Relaxed),
        wall_secs,
        events_processed: events,
        events_per_sec: if wall_secs > 0.0 { events as f64 / wall_secs } else { 0.0 },
        peak_pending_events: collector.peak_pending.load(Ordering::Relaxed),
        peak_event_bytes: collector.peak_event_bytes.load(Ordering::Relaxed),
        cache: cache.stats(),
    })
}

/// One metrics-registry overhead measurement: the same workload with
/// the global registry recording versus switched to its no-op path
/// (one relaxed load per `inc`/`observe`).
struct MetricsOverheadPoint {
    figure: &'static str,
    events_per_sec_off: f64,
    events_per_sec_on: f64,
    overhead_pct: f64,
}

/// Runs `study` twice on the calendar backend — registry recording off,
/// then on — and reports the throughput delta. Positive percentages mean
/// the recording run was slower. The two runs must process identical
/// event counts: metrics are trajectory-neutral by construction, and a
/// mismatch here is a determinism bug, not a perf result.
fn run_metrics_overhead(
    study: StudyId,
    base: &FigureOptions,
) -> Result<MetricsOverheadPoint, String> {
    let was_on = mpvsim_obs::metrics::enabled();
    mpvsim_obs::metrics::set_enabled(false);
    let off = run_workload(study, base, FelKind::Calendar, ProbeKind::None);
    mpvsim_obs::metrics::set_enabled(true);
    let on = run_workload(study, base, FelKind::Calendar, ProbeKind::None);
    mpvsim_obs::metrics::set_enabled(was_on);
    let (off, on) = (off?, on?);
    if off.events_processed != on.events_processed {
        return Err(format!(
            "metrics overhead run of {} is not trajectory-neutral: {} events with recording off, {} with recording on",
            off.figure, off.events_processed, on.events_processed,
        ));
    }
    let overhead_pct = if off.events_per_sec > 0.0 {
        100.0 * (off.events_per_sec - on.events_per_sec) / off.events_per_sec
    } else {
        0.0
    };
    Ok(MetricsOverheadPoint {
        figure: off.figure,
        events_per_sec_off: off.events_per_sec,
        events_per_sec_on: on.events_per_sec,
        overhead_pct,
    })
}

/// One single-replication scaling measurement: the Virus 1 baseline
/// scaling cell at population `n`, reporting resident memory per phone.
struct ScalePoint {
    population: usize,
    wall_secs: f64,
    events_processed: u64,
    events_per_sec: f64,
    peak_pending_events: usize,
    peak_event_bytes: usize,
    resident_state_bytes: usize,
    bytes_per_phone: f64,
    final_infected: usize,
}

/// Runs one replication of the Virus 1 baseline at population `n`,
/// with the scaling study's bounded-memory settings at or above
/// [`mpvsim_core::figures::SCALING_BOUNDED_MIN_POPULATION`] phones.
fn run_scale_point(n: usize, base: &FigureOptions) -> Result<ScalePoint, String> {
    use mpvsim_core::figures::{SCALING_BOUNDED_MIN_POPULATION, SCALING_INBOX_CAP};
    let mut config = mpvsim_core::ScenarioConfig::baseline(mpvsim_core::VirusProfile::virus1())
        .with_population(mpvsim_core::PopulationConfig::paper_default(n));
    if n >= SCALING_BOUNDED_MIN_POPULATION {
        config.inbox_cap = Some(SCALING_INBOX_CAP);
        config.event_budget = Some(mpvsim_core::DEFAULT_EVENT_BUDGET.max(n as u64 * 2_000));
    }
    let started = Instant::now();
    let (run, metrics) = mpvsim_core::run_scenario_configured(
        &config,
        base.master_seed,
        base.engine.fel,
        None,
        mpvsim_core::ProbeKind::None,
        base.engine.layout,
    )
    .map_err(|e| format!("scale {n}: {e}"))?;
    let wall_secs = started.elapsed().as_secs_f64();
    let total_bytes = run.resident_state_bytes + metrics.peak_event_bytes;
    Ok(ScalePoint {
        population: n,
        wall_secs,
        events_processed: metrics.events_processed,
        events_per_sec: if wall_secs > 0.0 {
            metrics.events_processed as f64 / wall_secs
        } else {
            0.0
        },
        peak_pending_events: metrics.peak_pending_events,
        peak_event_bytes: metrics.peak_event_bytes,
        resident_state_bytes: run.resident_state_bytes,
        bytes_per_phone: total_bytes as f64 / n as f64,
        final_infected: run.final_infected,
    })
}

/// One sharded-engine throughput measurement: the fig1-shard workload
/// (the Virus 1 baseline passed through [`mpvsim_core::shardable`],
/// which replaces the zero-minimum read delay the conservative barrier
/// cannot accept) run as a single replication at shard count `shards`.
struct ShardPoint {
    shards: usize,
    wall_secs: f64,
    events_processed: u64,
    events_per_sec: f64,
    peak_pending_events: usize,
    cut_edges: u64,
    lookahead_secs: u64,
    window_rounds: u64,
    pin_rounds: u64,
    idle_shard_rounds: u64,
    cross_shard_messages: u64,
    final_infected: usize,
}

/// Runs one sharded replication of the fig1-shard workload. The `K = 1`
/// point runs the same engine inline, so the events/s ratio against it
/// isolates what partitioning + the barrier buy (or cost) — on a
/// single-core box the threaded executor cannot beat 1x wall-clock, so
/// the report also records `cpu_cores` for the reader.
fn run_shard_point(shards: usize, base: &FigureOptions) -> Result<ShardPoint, String> {
    let config = mpvsim_core::ScenarioConfig::baseline(mpvsim_core::VirusProfile::virus1())
        .with_population(mpvsim_core::PopulationConfig::paper_default(base.population));
    let config = mpvsim_core::shardable(&config);
    let started = Instant::now();
    let outcome = mpvsim_core::run_scenario_sharded(
        &config,
        base.master_seed,
        base.engine.fel,
        None,
        shards,
        None,
        mpvsim_core::ShardMode::Auto,
    )
    .map_err(|e| format!("shards {shards}: {e}"))?;
    let wall_secs = started.elapsed().as_secs_f64();
    let t = &outcome.telemetry;
    Ok(ShardPoint {
        shards,
        wall_secs,
        events_processed: outcome.metrics.events_processed,
        events_per_sec: if wall_secs > 0.0 {
            outcome.metrics.events_processed as f64 / wall_secs
        } else {
            0.0
        },
        peak_pending_events: outcome.metrics.peak_pending_events,
        cut_edges: t.cut_edges,
        lookahead_secs: t.lookahead.as_secs(),
        window_rounds: t.barrier.window_rounds,
        pin_rounds: t.barrier.pin_rounds,
        idle_shard_rounds: t.barrier.idle_shard_rounds,
        cross_shard_messages: t.barrier.cross_shard_messages,
        final_infected: outcome.result.final_infected,
    })
}

fn report(
    suite: &SuiteOptions,
    measurements: &[Measurement],
    metrics_overhead_points: &[MetricsOverheadPoint],
    scale_points: &[ScalePoint],
    shard_points: &[ShardPoint],
) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = measurements
        .iter()
        .map(|m| {
            serde_json::json!({
                "figure": m.figure,
                "fel": m.fel.label(),
                "probe": m.probe.name(),
                "shards": m.shards,
                "curves": m.curves,
                "reps_run": m.reps,
                "wall_secs": m.wall_secs,
                "events_processed": m.events_processed,
                "events_per_sec": m.events_per_sec,
                "peak_pending_events": m.peak_pending_events,
                "peak_event_bytes": m.peak_event_bytes,
                "topology_cache_hits": m.cache.hits,
                "topology_cache_misses": m.cache.misses,
            })
        })
        .collect();

    // Per-figure calendar-vs-heap throughput ratio, pairing un-probed
    // runs on the name.
    let comparison: Vec<serde_json::Value> = measurements
        .iter()
        .filter(|m| m.fel == FelKind::BinaryHeap && m.probe == ProbeKind::None)
        .filter_map(|heap| {
            let cal = measurements.iter().find(|m| {
                m.figure == heap.figure && m.fel == FelKind::Calendar && m.probe == ProbeKind::None
            })?;
            let speedup = if heap.events_per_sec > 0.0 {
                cal.events_per_sec / heap.events_per_sec
            } else {
                0.0
            };
            Some(serde_json::json!({
                "figure": heap.figure,
                "events_per_sec_heap": heap.events_per_sec,
                "events_per_sec_calendar": cal.events_per_sec,
                "speedup_calendar_vs_heap": speedup,
            }))
        })
        .collect();

    // Per-figure probe-dispatch overhead: the same (figure, backend)
    // workload with and without the no-op probe attached. Positive
    // percentages mean the probed run was slower.
    let probe_overhead: Vec<serde_json::Value> = measurements
        .iter()
        .filter(|m| m.probe == ProbeKind::Noop)
        .filter_map(|noop| {
            let none = measurements.iter().find(|m| {
                m.figure == noop.figure && m.fel == noop.fel && m.probe == ProbeKind::None
            })?;
            let overhead_pct = if none.events_per_sec > 0.0 {
                100.0 * (none.events_per_sec - noop.events_per_sec) / none.events_per_sec
            } else {
                0.0
            };
            Some(serde_json::json!({
                "figure": noop.figure,
                "fel": noop.fel.label(),
                "events_per_sec_none": none.events_per_sec,
                "events_per_sec_noop": noop.events_per_sec,
                "overhead_pct": overhead_pct,
            }))
        })
        .collect();

    // Metrics-registry overhead: recording off vs on for the same
    // workload. The bench-smoke gate reads `overhead_pct`.
    let metrics_overhead: Vec<serde_json::Value> = metrics_overhead_points
        .iter()
        .map(|p| {
            serde_json::json!({
                "figure": p.figure,
                "events_per_sec_off": p.events_per_sec_off,
                "events_per_sec_on": p.events_per_sec_on,
                "overhead_pct": p.overhead_pct,
            })
        })
        .collect();

    // Single-replication memory trajectory: one row per `--scale N`,
    // with the bytes/phone column the scaling acceptance gate reads.
    let scaling: Vec<serde_json::Value> = scale_points
        .iter()
        .map(|p| {
            serde_json::json!({
                "population": p.population,
                "wall_secs": p.wall_secs,
                "events_processed": p.events_processed,
                "events_per_sec": p.events_per_sec,
                "peak_pending_events": p.peak_pending_events,
                "peak_event_bytes": p.peak_event_bytes,
                "resident_state_bytes": p.resident_state_bytes,
                "bytes_per_phone": p.bytes_per_phone,
                "final_infected": p.final_infected,
            })
        })
        .collect();

    // Sharded-engine throughput: one row per `--shards K`, each paired
    // with the K=1 row (when present) for the events/s speedup the
    // sharding acceptance gate reads. Wall-clock speedup above 1x needs
    // real cores — `cpu_cores` records what this box had.
    let one_shard = shard_points.iter().find(|p| p.shards == 1);
    let sharding: Vec<serde_json::Value> = shard_points
        .iter()
        .map(|p| {
            let speedup = one_shard
                .filter(|base| base.events_per_sec > 0.0)
                .map(|base| p.events_per_sec / base.events_per_sec);
            serde_json::json!({
                "figure": "fig1_shard",
                "shards": p.shards,
                "wall_secs": p.wall_secs,
                "events_processed": p.events_processed,
                "events_per_sec": p.events_per_sec,
                "peak_pending_events": p.peak_pending_events,
                "cut_edges": p.cut_edges,
                "lookahead_secs": p.lookahead_secs,
                "window_rounds": p.window_rounds,
                "pin_rounds": p.pin_rounds,
                "idle_shard_rounds": p.idle_shard_rounds,
                "cross_shard_messages": p.cross_shard_messages,
                "final_infected": p.final_infected,
                "speedup_vs_one_shard": speedup,
            })
        })
        .collect();

    serde_json::json!({
        "schema": "mpvsim-perfsuite/6",
        "quick": suite.quick,
        "reps": suite.figure.reps,
        "master_seed": suite.figure.master_seed,
        "threads": suite.figure.engine.threads,
        "cpu_cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "population": suite.figure.population,
        "layout": suite.figure.engine.layout.label(),
        "figures": rows,
        "comparison": comparison,
        "probe_overhead": probe_overhead,
        "metrics_overhead": metrics_overhead,
        "scaling": scaling,
        "sharding": sharding,
    })
}

fn render_table(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:<12} {:<6} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "figure",
        "fel",
        "probe",
        "wall s",
        "events",
        "events/s",
        "peak pend",
        "peak ev B",
        "cache h/m"
    );
    for m in measurements {
        let _ = writeln!(
            out,
            "{:<18} {:<12} {:<6} {:>10.2} {:>12} {:>12.0} {:>10} {:>12} {:>12}",
            m.figure,
            m.fel.label(),
            m.probe.name(),
            m.wall_secs,
            m.events_processed,
            m.events_per_sec,
            m.peak_pending_events,
            m.peak_event_bytes,
            format!("{}/{}", m.cache.hits, m.cache.misses),
        );
    }
    out
}

fn render_scaling_table(points: &[ScalePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>14} {:>12} {:>14} {:>14} {:>12} {:>10}",
        "population",
        "wall s",
        "events",
        "peak pend",
        "state bytes",
        "event bytes",
        "bytes/phone",
        "infected"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<12} {:>10.2} {:>14} {:>12} {:>14} {:>14} {:>12.1} {:>10}",
            p.population,
            p.wall_secs,
            p.events_processed,
            p.peak_pending_events,
            p.resident_state_bytes,
            p.peak_event_bytes,
            p.bytes_per_phone,
            p.final_infected,
        );
    }
    out
}

fn render_sharding_table(points: &[ShardPoint]) -> String {
    let one = points.iter().find(|p| p.shards == 1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>14} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "shards", "wall s", "events", "events/s", "windows", "cut edges", "x-shard msg", "speedup"
    );
    for p in points {
        let speedup = one.filter(|b| b.events_per_sec > 0.0).map_or_else(
            || "-".to_owned(),
            |b| format!("{:.2}", p.events_per_sec / b.events_per_sec),
        );
        let _ = writeln!(
            out,
            "{:<8} {:>10.2} {:>14} {:>12.0} {:>10} {:>10} {:>12} {:>10}",
            p.shards,
            p.wall_secs,
            p.events_processed,
            p.events_per_sec,
            p.window_rounds,
            p.cut_edges,
            p.cross_shard_messages,
            speedup,
        );
    }
    out
}

/// Runs the suite; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let suite = match parse_args(args.iter().cloned()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let selected: Vec<StudyId> = workloads()
        .into_iter()
        .filter(|id| suite.only.is_empty() || suite.only.iter().any(|o| o == id.name()))
        .collect();
    eprintln!(
        "perfsuite: {} figures x {} configs, {} reps, population {}, seed {}, {} threads",
        selected.len(),
        RUNS.len(),
        suite.figure.reps,
        suite.figure.population,
        suite.figure.master_seed,
        suite.figure.engine.threads,
    );

    let mut measurements = Vec::new();
    for &study in &selected {
        for (fel, probe) in RUNS {
            eprintln!("running {} [{} / probe {}]...", study.name(), fel.label(), probe.name());
            match run_workload(study, &suite.figure, fel, probe) {
                Ok(m) => {
                    eprintln!(
                        "  {:.2} s, {} events, {:.0} events/s, peak pending {}, cache {}/{}",
                        m.wall_secs,
                        m.events_processed,
                        m.events_per_sec,
                        m.peak_pending_events,
                        m.cache.hits,
                        m.cache.misses,
                    );
                    measurements.push(m);
                }
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            }
        }
    }

    // Registry overhead on one workload: fig1 when it is in the selected
    // set (the canonical overhead gate), else the first selected figure
    // so `--figure` filtered runs still produce a row.
    let mut metrics_overhead_points = Vec::new();
    let overhead_study = selected
        .iter()
        .find(|id| id.name() == "fig1_baseline")
        .or_else(|| selected.first())
        .copied();
    if let Some(study) = overhead_study {
        eprintln!("running {} [metrics registry off vs on]...", study.name());
        match run_metrics_overhead(study, &suite.figure) {
            Ok(p) => {
                eprintln!(
                    "  {:.0} events/s off, {:.0} events/s on, overhead {:.2}%",
                    p.events_per_sec_off, p.events_per_sec_on, p.overhead_pct,
                );
                metrics_overhead_points.push(p);
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }

    let mut scale_points = Vec::new();
    for &n in &suite.scales {
        eprintln!("running scaling point n={n} (1 replication, virus 1 baseline)...");
        match run_scale_point(n, &suite.figure) {
            Ok(p) => {
                eprintln!(
                    "  {:.2} s, {} events, {:.1} bytes/phone ({} state + {} event peak)",
                    p.wall_secs,
                    p.events_processed,
                    p.bytes_per_phone,
                    p.resident_state_bytes,
                    p.peak_event_bytes,
                );
                scale_points.push(p);
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }

    let mut shard_points = Vec::new();
    for &k in &suite.shard_counts {
        eprintln!("running fig1-shard point at {k} shard(s) (1 replication, virus 1 shardable)...");
        match run_shard_point(k, &suite.figure) {
            Ok(p) => {
                eprintln!(
                    "  {:.2} s, {} events, {:.0} events/s, {} window rounds, {} cross-shard msgs",
                    p.wall_secs,
                    p.events_processed,
                    p.events_per_sec,
                    p.window_rounds,
                    p.cross_shard_messages,
                );
                shard_points.push(p);
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }

    print!("{}", render_table(&measurements));
    if !scale_points.is_empty() {
        print!("{}", render_scaling_table(&scale_points));
    }
    if !shard_points.is_empty() {
        print!("{}", render_sharding_table(&shard_points));
    }
    let doc = report(&suite, &measurements, &metrics_overhead_points, &scale_points, &shard_points);

    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let path =
        suite.out.clone().unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", utc_date(now))));
    match std::fs::File::create(&path) {
        Ok(file) => {
            if let Err(e) = serde_json::to_writer_pretty(std::io::BufWriter::new(file), &doc) {
                eprintln!("cannot serialize report: {e}");
                return 1;
            }
            eprintln!("wrote {}", path.display());
            0
        }
        Err(e) => {
            eprintln!("cannot create {}: {e}", path.display());
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SuiteOptions, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert!(!o.quick);
        assert!(o.out.is_none());
        assert!(o.only.is_empty());
        assert!(o.scales.is_empty());
        assert_eq!(o.shard_counts, vec![1, 8], "default shard axis");
        assert_eq!(o.figure.population, 1000);
    }

    #[test]
    fn scale_and_layout_flags_parse() {
        let o = parse(&["--scale", "1000", "--scale", "50000", "--layout", "arena"]).unwrap();
        assert_eq!(o.scales, vec![1000, 50000]);
        assert_eq!(o.figure.engine.layout, mpvsim_core::LayoutKind::Arena);
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--layout", "bogus"]).is_err());
    }

    #[test]
    fn shard_count_flags_parse() {
        let o = parse(&["--shards", "1", "--shards", "4", "--shards", "16"]).unwrap();
        assert_eq!(o.shard_counts, vec![1, 4, 16]);
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "four"]).is_err());
    }

    #[test]
    fn quick_shrinks_the_workload() {
        let o = parse(&["--quick"]).unwrap();
        assert_eq!(o.figure.reps, 2);
        assert_eq!(o.figure.population, 250);
    }

    #[test]
    fn workloads_are_the_registry_figures() {
        let names: Vec<&str> = workloads().iter().map(|id| id.name()).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains(&"fig1_baseline"));
        assert!(names.contains(&"fig7_blacklist"));
    }

    #[test]
    fn figure_filter_validates_names() {
        let o = parse(&["--figure", "fig1_baseline", "--figure", "fig6_monitoring"]).unwrap();
        assert_eq!(o.only, vec!["fig1_baseline", "fig6_monitoring"]);
        assert!(parse(&["--figure", "fig99_nope"]).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_zero_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--reps", "0"]).is_err());
        assert!(parse(&["--population", "0"]).is_err());
    }

    #[test]
    fn utc_date_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(utc_date(1_785_974_400), "2026-08-06");
        // Leap day.
        assert_eq!(utc_date(951_782_400), "2000-02-29");
    }

    #[test]
    fn measurements_produce_comparison_rows_and_cache_stats() {
        // Tiny run, one figure, both backends: the report must pair them.
        let base = FigureOptions {
            reps: 1,
            master_seed: 3,
            engine: EngineOptions::new(),
            population: 30,
            ..FigureOptions::default()
        };
        let mut ms = Vec::new();
        for (fel, probe) in RUNS {
            ms.push(run_workload(StudyId::Fig7Blacklist, &base, fel, probe).unwrap());
        }
        assert_eq!(ms[0].curves, 5);
        assert!(ms[0].events_processed > 0);
        assert!(ms[0].peak_pending_events > 0);
        assert_eq!(ms[0].events_processed, ms[1].events_processed, "bit-identical trajectories");
        assert_eq!(
            ms[1].events_processed, ms[2].events_processed,
            "the no-op probe must not change the trajectory"
        );
        // Five cells share one network per seed: 1 miss, 4 hits per rep.
        assert_eq!((ms[0].cache.hits, ms[0].cache.misses), (4, 1));
        let scale = run_scale_point(40, &base).unwrap();
        assert_eq!(scale.population, 40);
        assert!(scale.resident_state_bytes > 0);
        assert!(scale.bytes_per_phone > 0.0);
        let shard_one = run_shard_point(1, &base).unwrap();
        let shard_four = run_shard_point(4, &base).unwrap();
        assert!(shard_one.events_processed > 0);
        assert_eq!(
            shard_one.events_processed, shard_four.events_processed,
            "the sharded engine is shard-count-invariant"
        );
        assert_eq!(shard_one.cut_edges, 0, "one shard cuts nothing");
        assert!(shard_four.window_rounds > 0, "a multi-shard run opens time windows");
        let suite = SuiteOptions {
            figure: base,
            out: None,
            only: vec!["fig7_blacklist".to_owned()],
            quick: false,
            scales: vec![40],
            shard_counts: vec![1, 4],
        };
        let overhead_point = run_metrics_overhead(StudyId::Fig7Blacklist, &suite.figure).unwrap();
        assert_eq!(overhead_point.figure, "fig7_blacklist");
        assert!(overhead_point.events_per_sec_off > 0.0);
        assert!(overhead_point.events_per_sec_on > 0.0);
        assert!(mpvsim_obs::metrics::enabled(), "overhead run must restore the registry state");
        let shard_points = [shard_one, shard_four];
        let doc = report(
            &suite,
            &ms,
            std::slice::from_ref(&overhead_point),
            std::slice::from_ref(&scale),
            &shard_points,
        );
        assert_eq!(doc["schema"], "mpvsim-perfsuite/6");
        assert_eq!(doc["layout"], "fresh");
        assert!(doc["cpu_cores"].as_u64().unwrap() >= 1);
        let sharding = doc["sharding"].as_array().unwrap();
        assert_eq!(sharding.len(), 2);
        assert_eq!(sharding[0]["shards"], 1);
        assert_eq!(sharding[0]["speedup_vs_one_shard"], 1.0);
        assert_eq!(sharding[1]["shards"], 4);
        assert!(sharding[1]["speedup_vs_one_shard"].is_number());
        assert!(sharding[1]["cross_shard_messages"].is_number());
        assert_eq!(doc["figures"][0]["shards"], 1);
        assert!(render_sharding_table(&shard_points).contains("speedup"));
        let scaling = doc["scaling"].as_array().unwrap();
        assert_eq!(scaling.len(), 1);
        assert_eq!(scaling[0]["population"], 40);
        assert!(scaling[0]["bytes_per_phone"].as_f64().unwrap() > 0.0);
        assert!(scaling[0]["resident_state_bytes"].as_u64().unwrap() > 0);
        assert!(render_scaling_table(std::slice::from_ref(&scale)).contains("bytes/phone"));
        assert_eq!(doc["figures"].as_array().unwrap().len(), 3);
        assert!(doc["figures"][0]["peak_event_bytes"].as_u64().unwrap() > 0);
        assert_eq!(doc["figures"][0]["topology_cache_hits"], 4);
        assert_eq!(doc["figures"][0]["probe"], "none");
        assert_eq!(doc["figures"][2]["probe"], "noop");
        let cmp = doc["comparison"].as_array().unwrap();
        assert_eq!(cmp.len(), 1);
        assert_eq!(cmp[0]["figure"], "fig7_blacklist");
        assert!(cmp[0]["speedup_calendar_vs_heap"].is_number());
        let overhead = doc["probe_overhead"].as_array().unwrap();
        assert_eq!(overhead.len(), 1);
        assert_eq!(overhead[0]["fel"], "calendar");
        assert!(overhead[0]["overhead_pct"].is_number());
        let metrics_overhead = doc["metrics_overhead"].as_array().unwrap();
        assert_eq!(metrics_overhead.len(), 1);
        assert_eq!(metrics_overhead[0]["figure"], "fig7_blacklist");
        assert!(metrics_overhead[0]["overhead_pct"].is_number());
        assert!(metrics_overhead[0]["events_per_sec_off"].as_f64().unwrap() > 0.0);
        assert!(metrics_overhead[0]["events_per_sec_on"].as_f64().unwrap() > 0.0);
        let table = render_table(&ms);
        assert!(table.contains("fig7_blacklist"));
        assert!(table.contains("binary-heap"));
        assert!(table.contains("noop"));
        assert!(table.contains("4/1"), "cache column missing:\n{table}");
    }
}
