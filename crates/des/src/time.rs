//! Simulation time: integer seconds since the start of the simulation.
//!
//! Integer time makes event ordering exact and replications bit-for-bit
//! reproducible. Sub-second resolution is unnecessary for the mobile-phone
//! virus model, whose shortest timescale is a one-minute send gap.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in whole seconds since time zero.
///
/// `SimTime` is ordered, hashable and cheap to copy. Construct instants with
/// [`SimTime::from_secs`] / [`SimTime::from_hours`], or by adding a
/// [`SimDuration`] to an existing instant.
///
/// ```rust
/// use mpvsim_des::{SimTime, SimDuration};
/// let t = SimTime::from_hours(2) + SimDuration::from_mins(30);
/// assert_eq!(t.as_secs(), 9000);
/// assert!(t > SimTime::from_hours(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in whole seconds.
///
/// ```rust
/// use mpvsim_des::SimDuration;
/// assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `secs` seconds after time zero.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant `mins` minutes after time zero.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60)
    }

    /// Creates an instant `hours` hours after time zero.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3600)
    }

    /// Creates an instant `days` days after time zero.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400)
    }

    /// Seconds since time zero.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Hours since time zero, as a float (for plotting and reports).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0.checked_sub(earlier.0).expect("duration_since: earlier instant is after self"),
        )
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of wrapping.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// A span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// A span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// A span of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// A span of (fractional) seconds, rounded to the nearest whole second.
    ///
    /// Negative and non-finite inputs clamp to zero; values beyond `u64`
    /// range clamp to [`SimDuration::MAX`]. This is the bridge from
    /// continuous random variates (e.g. exponential delays) to the integer
    /// clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let rounded = secs.round();
        if rounded >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(rounded as u64)
        }
    }

    /// Length in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Length in hours, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Length in (float) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// True when this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime + SimDuration overflowed"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration + SimDuration overflowed"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration - SimDuration underflowed"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0 / 86_400;
        let hours = (self.0 % 86_400) / 3600;
        let mins = (self.0 % 3600) / 60;
        let secs = self.0 % 60;
        if days > 0 {
            write!(f, "{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else {
            write!(f, "{hours:02}h{mins:02}m{secs:02}s")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimTime(self.0).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_days(2), SimDuration::from_hours(48));
    }

    #[test]
    fn ordering_follows_seconds() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_mins(30) < SimDuration::from_hours(1));
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_hours(1) + SimDuration::from_mins(30);
        assert_eq!(t.as_secs(), 5400);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(7);
        assert_eq!(t2.as_secs(), 7);
    }

    #[test]
    fn duration_since_works() {
        let a = SimTime::from_hours(2);
        let b = SimTime::from_hours(5);
        assert_eq!(b.duration_since(a), SimDuration::from_hours(3));
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier instant is after self")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.4).as_secs(), 1);
        assert_eq!(SimDuration::from_secs_f64(1.6).as_secs(), 2);
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn as_hours_f64_converts() {
        assert!((SimTime::from_hours(3).as_hours_f64() - 3.0).abs() < 1e-12);
        assert!((SimDuration::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(4).saturating_mul(3).as_secs(), 12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3723).to_string(), "01h02m03s");
        assert_eq!(SimTime::from_days(2).to_string(), "2d00h00m00s");
        assert_eq!(SimDuration::from_mins(15).to_string(), "00h15m00s");
    }

    #[test]
    fn duration_max_and_is_zero() {
        assert_eq!(
            SimDuration::from_secs(5).max(SimDuration::from_secs(9)),
            SimDuration::from_secs(9)
        );
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_secs(1).is_zero());
    }
}
