//! The unified simulator CLI: `mpvsim <command>`; see
//! [`mpvsim_cli::commands`] for the dispatch table.
fn main() {
    mpvsim_cli::commands::main();
}
