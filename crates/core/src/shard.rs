//! Sharded intra-replication execution: one event loop per shard of the
//! contact graph, synchronized by a conservative time-window barrier.
//!
//! ## Architecture
//!
//! The CSR contact graph is partitioned with
//! [`mpvsim_phonenet::Partition::edge_cut`]; each shard owns the phones
//! of one part and runs the epidemic dynamics for them over a
//! shard-local [`ShardQueue`]. A coordinator plans lockstep rounds with
//! [`plan_round`]: either a *pin* (a globally-ordered event — seeding,
//! sampling, mechanism activation, a patch wave) or a half-open time
//! *window* `[T, W)` in which every shard processes its local events
//! with `time < W`. The window is safe because the only cross-shard
//! interaction is MMS delivery, and a delivered message is read no
//! earlier than `send time + read_delay.minimum()` — that minimum is
//! the lookahead `L`, and `W ≤ T + L`, so nothing a shard does inside
//! the window can affect another shard *within* the same window.
//! Cross-shard deliveries travel as [`Envelope`]s through a
//! [`ShardRouter`] and are drained in deterministic `(time, source,
//! seq)` order at the next barrier.
//!
//! ## Determinism contract
//!
//! The sharded engine's trajectory is a function of `(config, seed)`
//! only — **not** of the shard count, the executor (inline or threads),
//! or the FEL backend. This works because every random draw is tied to
//! the entity that consumes it: each phone draws from its own
//! [`derive_stream_seed`]-derived substream (stream [`PHONE_STREAM`])
//! and the coordinator (seeding, rollout offsets) from
//! [`COORD_STREAM`], so the draw sequence is independent of event
//! interleaving across shards. Same-time events order by a canonical
//! per-event key (`phone id` · `kind`), and the window grid itself
//! depends only on the global event front and the pin schedule, which
//! are partition-invariant.
//!
//! The flip side: the sharded trajectory is **not** bit-identical to
//! the sequential engine in [`crate::run_scenario`], which threads one
//! global RNG through the event order. The equivalence the test tier
//! enforces is *internal*: `shards = k` must be byte-identical to
//! `shards = 1` **of this engine** for every `k`, which is what makes
//! the shard count a pure performance knob. The committed goldens of
//! the sequential engine are untouched.
//!
//! ## What can run sharded
//!
//! Mechanisms whose state is confined to the sending phone, its
//! provider-side rows, or globally-pinned instants all shard cleanly:
//! contact-list and random-dialing targeting, quotas, monitoring,
//! blacklisting, signature scan, detection, education and immunization.
//! Features with *unpartitionable* shared state are rejected up front
//! with a structured [`ConfigError`]: Bluetooth/mobility (global
//! proximity field), legitimate traffic and piggybacking (reads of
//! arbitrary remote phones), finite gateway capacity (one global
//! transit queue), bounded inboxes (delivery admission would need the
//! recipient's synchronous answer), and a read-delay distribution with
//! zero minimum (no lookahead — the barrier would not advance).
//!
//! The detectability clock is the one mechanism needing global merge:
//! shards log virus sightings `(time, source, seq)` and the coordinator
//! counts them in merged order; the crossing instant is recorded as
//! `detected_at`, and the mechanism activations are pinned at
//! `max(detected_at + delay, W_discovery)` — the coordinator can only
//! *act* on a discovery at the barrier that revealed it, so activations
//! inside the discovery window are deferred to its end. `W_discovery`
//! is grid-invariant, so this is the same instant at every shard count.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use mpvsim_des::random::bernoulli;
use mpvsim_des::seed::derive_stream_seed;
use mpvsim_des::{
    plan_round, BarrierStats, Envelope, FelKind, Lookahead, Round, ShardQueue, ShardRouter,
    SimDuration, SimMetrics, SimTime,
};
use mpvsim_phonenet::{AddressSpace, Gateway, Inboxes, Partition, PhoneId, Population};
use mpvsim_stats::TimeSeries;

use crate::behavior::AcceptanceModel;
use crate::config::{ConfigError, ScenarioConfig};
use crate::model::RunStats;
use crate::probe::{BlockCause, InfectionCause, Milestone, SimProbe};
use crate::response::ActivationTimes;
use crate::run::{RunResult, TopologyCache, DEFAULT_EVENT_BUDGET};
use crate::virus::TargetingStrategy;

/// Sub-stream label for per-phone dynamics draws (stream 0 is the
/// replication's legacy global stream, 1 the topology stream).
const PHONE_STREAM: u64 = 2;
/// Sub-stream label for the coordinator's draws (seed selection,
/// rollout offsets).
const COORD_STREAM: u64 = 3;

/// A phone's rolling quota day (mirrors the sequential model).
const DAY: SimDuration = SimDuration::from_hours(24);

/// Canonical same-time event ranks: reads before sends before reboots.
/// Two events tie on `(time, key)` only when they are the same
/// `ReadMessage(phone)` — interchangeable, so the residual heap order
/// does not matter.
const KIND_READ: u64 = 0;
const KIND_SEND: u64 = 1;
const KIND_REBOOT: u64 = 2;

fn ev_key(phone: u32, kind: u64) -> u64 {
    (u64::from(phone) << 8) | kind
}

/// Same-time pin ranks (a pin round executes all pins at one instant in
/// rank order): seeding first — the `t = 0` sample must see the seed
/// infection, exactly as the sequential engine's FIFO order does — then
/// patch waves, mechanism activations, and sampling last.
const RANK_SEED: u8 = 0;
const RANK_WAVE: u8 = 1;
const RANK_SCAN: u8 = 2;
const RANK_DETECTION: u8 = 3;
const RANK_ROLLOUT: u8 = 4;
const RANK_SAMPLE: u8 = 5;

/// Which executor runs the shard loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Inline when a probe is attached, `shards == 1`, or the machine
    /// has a single core (lockstepping OS threads over one core only
    /// adds scheduling overhead); threads otherwise. The choice never
    /// moves a bit — trajectories are executor-invariant.
    #[default]
    Auto,
    /// All shards stepped by one thread in merged `(time, key, shard)`
    /// order — the reference executor, and the only one that can carry
    /// a [`SimProbe`] (hooks fire in a single monotone stream).
    Inline,
    /// One OS thread per shard, lockstepped by the barrier protocol.
    Threads,
}

/// Per-shard lane counters of one sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardLane {
    /// Events this shard's loop processed.
    pub events: u64,
    /// High-water mark of the shard-local future-event list.
    pub peak_len: usize,
    /// Resident event-payload bytes at that high-water mark.
    pub peak_event_bytes: usize,
    /// Envelopes this shard sent to other shards.
    pub messages_out: u64,
    /// Envelopes delivered to this shard from other shards.
    pub messages_in: u64,
}

/// Synchronization and partition telemetry of one sharded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Shard count the run used (including empty shards).
    pub shards: usize,
    /// Contact edges crossing shard boundaries.
    pub cut_edges: u64,
    /// The conservative lookahead the window grid used.
    pub lookahead: SimDuration,
    /// Barrier round counters.
    pub barrier: BarrierStats,
    /// Per-shard lane counters, indexed by shard.
    pub lanes: Vec<ShardLane>,
}

impl ShardTelemetry {
    /// Checks the cross-shard flow invariant: every envelope that left
    /// a shard entered exactly one other shard, and the router saw all
    /// of them.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated conservation
    /// equation.
    pub fn check_flow(&self) -> Result<(), String> {
        let out: u64 = self.lanes.iter().map(|l| l.messages_out).sum();
        let inn: u64 = self.lanes.iter().map(|l| l.messages_in).sum();
        if out != inn {
            return Err(format!(
                "cross-shard flow leak: {out} envelopes left shards, {inn} arrived"
            ));
        }
        if out != self.barrier.cross_shard_messages {
            return Err(format!(
                "router count mismatch: shards sent {out}, router routed {}",
                self.barrier.cross_shard_messages
            ));
        }
        Ok(())
    }
}

/// Everything one sharded replication produced.
#[derive(Debug)]
pub struct ShardOutcome {
    /// The replication's observable output (same shape as the
    /// sequential engine's).
    pub result: RunResult,
    /// Engine counters; `peak_pending_events` / `peak_event_bytes` are
    /// the **sum of per-shard peaks** (an upper bound on the true
    /// global peak, which no single queue witnesses).
    pub metrics: SimMetrics,
    /// Partition and barrier telemetry.
    pub telemetry: ShardTelemetry,
}

/// Rejects scenario features whose shared state cannot be partitioned
/// (see the module docs for the reasoning per feature).
///
/// # Errors
///
/// Returns a [`ConfigError`] naming the offending field.
pub fn reject_unshardable(config: &ScenarioConfig) -> Result<(), ConfigError> {
    if config.virus.bluetooth.is_some() || config.mobility.is_some() {
        return Err(ConfigError::invalid(
            "virus.bluetooth",
            "the Bluetooth/mobility vector needs the global proximity field; run with shards = 1",
        ));
    }
    if config.behavior.legitimate_mms.is_some() {
        return Err(ConfigError::invalid(
            "behavior.legitimate_mms",
            "legitimate traffic reads arbitrary remote phones; run with shards = 1",
        ));
    }
    if config.virus.piggyback {
        return Err(ConfigError::invalid(
            "virus.piggyback",
            "piggyback sends ride remote deliveries; run with shards = 1",
        ));
    }
    if config.gateway_capacity_per_hour.is_some() {
        return Err(ConfigError::invalid(
            "gateway_capacity_per_hour",
            "finite gateway capacity is one global transit queue; run with shards = 1",
        ));
    }
    if config.inbox_cap.is_some() {
        return Err(ConfigError::invalid(
            "inbox_cap",
            "bounded inboxes need the recipient's synchronous admission answer; run with shards = 1",
        ));
    }
    // Checked last so the error a zero-minimum read delay produces is
    // the lookahead one (the other rejections are about shared state).
    Lookahead::new(config.behavior.read_delay.minimum())
        .map_err(|e| ConfigError::invalid("behavior.read_delay", e.to_string()))?;
    Ok(())
}

// ---------------------------------------------------------------------
// Worker: one shard's event loop
// ---------------------------------------------------------------------

/// Per-phone sending-side state (mirror of the sequential model's).
#[derive(Debug, Clone, Copy)]
struct Sender {
    cursor: usize,
    sent_in_day: u32,
    day_epoch_start: SimTime,
    sent_since_reboot: u32,
    awaiting_reboot: bool,
    send_scheduled: bool,
    /// Kept for field parity with the sequential model's sender state;
    /// only consulted by piggyback sends, which are unshardable.
    #[allow(dead_code)]
    next_allowed: SimTime,
}

impl Sender {
    fn new() -> Self {
        Sender {
            cursor: 0,
            sent_in_day: 0,
            day_epoch_start: SimTime::ZERO,
            sent_since_reboot: 0,
            awaiting_reboot: false,
            send_scheduled: false,
            next_allowed: SimTime::ZERO,
        }
    }
}

/// Shard-local event alphabet. Globally-ordered events (seeding,
/// sampling, activations, patch waves) are coordinator pins, not queue
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SEvent {
    SendAttempt(PhoneId),
    Reboot(PhoneId),
    ReadMessage(PhoneId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    Sent,
    DailyQuota(SimTime),
    RebootQuota,
    NoTargets,
    CannotPropagate,
}

/// A virus sighting logged for the coordinator's detectability clock:
/// `(time, sender id, per-sender sequence)` — a globally unique,
/// totally ordered key.
type Sighting = (SimTime, u64, u64);

/// A reborrowable, optionally-absent probe handle threaded through the
/// worker's handlers (the inline executor owns the probe; the threaded
/// one runs probeless).
struct ProbeSlot<'a>(Option<&'a mut (dyn SimProbe + 'static)>);

impl ProbeSlot<'_> {
    fn get(&mut self) -> Option<&mut (dyn SimProbe + 'static)> {
        match &mut self.0 {
            Some(p) => Some(&mut **p),
            None => None,
        }
    }
}

/// The per-shard round command (coordinator → worker).
struct RoundCmd {
    /// Cross-shard deliveries that became safe at this barrier, in
    /// `(time, source, seq)` order.
    deliveries: Vec<Envelope<u32>>,
    /// The coordinator's current activation view.
    activation: ActivationTimes,
    action: Action,
}

enum Action {
    /// Process local events with `time < end`, at most `max_events`.
    Window { end: SimTime, max_events: u64 },
    /// Infect these owned phones now (the seed pin).
    Seed { phones: Vec<u32>, now: SimTime },
    /// Apply a patch wave: the full wave list is broadcast; each worker
    /// patches the phones it owns, in list order.
    Wave { phones: Arc<Vec<u32>>, now: SimTime },
    /// Report state for a sample pin (no event processing).
    Report,
    /// Terminal: return the final report.
    Finish,
}

/// The per-shard round reply (worker → coordinator).
struct RoundReport {
    front: Option<SimTime>,
    outbox: Vec<Envelope<u32>>,
    sightings: Vec<Sighting>,
    processed: u64,
    truncated: bool,
    infected: usize,
    messages_sent: u64,
}

/// A worker's end-of-run accounting.
struct FinalReport {
    stats: RunStats,
    infected: usize,
    resident_state_bytes: usize,
    events: u64,
    peak_len: usize,
    peak_event_bytes: usize,
    messages_in: u64,
    messages_out: u64,
}

/// One shard's complete simulation state. The phone-state arrays
/// (population, gateway, inboxes) are full-size with global indexing —
/// rows of non-owned phones are never read or written, so clones stay
/// disjoint — while the per-sender machinery (quota state, RNG
/// substreams, sequence counters) is packed per owned phone.
struct ShardWorker {
    shard: usize,
    seed: u64,
    config: Arc<ScenarioConfig>,
    partition: Arc<Partition>,
    population: Population,
    gateway: Gateway,
    inboxes: Inboxes,
    address_space: Option<AddressSpace>,
    acceptance: AcceptanceModel,
    senders: Vec<Sender>,
    /// Lazily-seeded per-phone RNG substreams (local index).
    rngs: Vec<Option<StdRng>>,
    /// Per-sender cross-shard envelope counters (local index).
    env_seq: Vec<u64>,
    /// Per-sender sighting counters (local index).
    sight_seq: Vec<u64>,
    queue: ShardQueue<SEvent>,
    activation: ActivationTimes,
    stats: RunStats,
    outbox: Vec<Envelope<u32>>,
    sightings: Vec<Sighting>,
    recipient_buf: Vec<PhoneId>,
    messages_in: u64,
    messages_out: u64,
    events: u64,
}

/// The lazily-initialized RNG substream of one owned phone. A free
/// function over the slice so handlers can hold it alongside disjoint
/// `&mut self` fields.
fn phone_rng(rngs: &mut [Option<StdRng>], li: usize, master: u64, phone: u32) -> &mut StdRng {
    rngs[li].get_or_insert_with(|| {
        StdRng::seed_from_u64(derive_stream_seed(master, u64::from(phone), PHONE_STREAM))
    })
}

impl ShardWorker {
    fn new(
        shard: usize,
        config: Arc<ScenarioConfig>,
        partition: Arc<Partition>,
        population: Population,
        fel: FelKind,
        seed: u64,
    ) -> Self {
        let n = population.len();
        let monitor_window =
            config.response.monitoring.map(|m| m.window).unwrap_or(SimDuration::from_hours(24));
        let ring_capacity = match config.response.monitoring {
            Some(mn) => mn.threshold.saturating_add(1),
            None => 0,
        };
        let gateway = Gateway::with_capacity(n, monitor_window, ring_capacity);
        let inboxes = Inboxes::with_cap(n, None);
        let address_space = match config.virus.targeting {
            TargetingStrategy::RandomDialing { valid_fraction } => Some(AddressSpace::new(
                u32::try_from(n).expect("population fits u32"),
                valid_fraction,
            )),
            TargetingStrategy::ContactList => None,
        };
        let education_scale = config.response.education.map(|e| e.acceptance_scale).unwrap_or(1.0);
        let acceptance = config.behavior.acceptance.scaled(education_scale);
        let owned = partition.members(shard).len();
        ShardWorker {
            shard,
            seed,
            config,
            partition,
            population,
            gateway,
            inboxes,
            address_space,
            acceptance,
            senders: vec![Sender::new(); owned],
            rngs: vec![None; owned],
            env_seq: vec![0; owned],
            sight_seq: vec![0; owned],
            queue: ShardQueue::with_kind(fel),
            activation: ActivationTimes::default(),
            stats: RunStats::default(),
            outbox: Vec::new(),
            sightings: Vec::new(),
            recipient_buf: Vec::new(),
            messages_in: 0,
            messages_out: 0,
            events: 0,
        }
    }

    fn li(&self, phone: PhoneId) -> usize {
        self.partition.local_index(phone.0)
    }

    fn schedule(&mut self, time: SimTime, kind: u64, phone: PhoneId, ev: SEvent) {
        self.queue.schedule(time, ev_key(phone.0, kind), ev);
    }

    /// Applies the round preamble: the coordinator's activation view
    /// and the cross-shard deliveries that became safe at this barrier.
    fn apply_round_prefix(&mut self, deliveries: Vec<Envelope<u32>>, activation: ActivationTimes) {
        self.activation = activation;
        for env in deliveries {
            let r = PhoneId(env.payload);
            // Unbounded inboxes (enforced by `reject_unshardable`):
            // admission never fails, so the sender's send-time
            // `deliveries` count is already correct.
            let _ = self.inboxes.try_deliver(r);
            self.messages_in += 1;
            self.schedule(env.time, KIND_READ, r, SEvent::ReadMessage(r));
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.queue.peek()
    }

    /// Pops and handles exactly one event (inline executor).
    fn step_one(&mut self, probe: &mut ProbeSlot<'_>) {
        let (t, _k, ev) = self.queue.pop().expect("step_one on empty queue");
        self.handle(t, ev, probe);
    }

    /// Processes local events with `time < end`, up to `max_events`.
    /// Returns `(processed, truncated)`; `truncated` means the cap hit
    /// with in-window events still pending (budget overrun).
    fn run_window(
        &mut self,
        end: SimTime,
        max_events: u64,
        probe: &mut ProbeSlot<'_>,
    ) -> (u64, bool) {
        let mut processed = 0u64;
        while processed < max_events {
            match self.queue.peek_time() {
                Some(t) if t < end => {}
                _ => return (processed, false),
            }
            let (t, _k, ev) = self.queue.pop().expect("peeked event present");
            processed += 1;
            self.handle(t, ev, probe);
        }
        let truncated = matches!(self.queue.peek_time(), Some(t) if t < end);
        (processed, truncated)
    }

    fn handle(&mut self, now: SimTime, ev: SEvent, probe: &mut ProbeSlot<'_>) {
        self.events += 1;
        match ev {
            SEvent::SendAttempt(p) => self.on_send_attempt(p, now, probe),
            SEvent::Reboot(p) => self.on_reboot(p, now, probe),
            SEvent::ReadMessage(p) => self.on_read_message(p, now, probe),
        }
    }

    /// Seed pin: infect the listed owned phones (coordinator already
    /// drew them from its own stream, in a shard-invariant order).
    fn apply_seed(&mut self, phones: &[u32], now: SimTime, probe: &mut ProbeSlot<'_>) {
        for &id in phones {
            self.on_infection(PhoneId(id), InfectionCause::Seed, now, probe);
        }
    }

    /// Patch-wave pin: apply the patch to the owned phones of the
    /// broadcast wave, preserving the wave's emission order.
    fn apply_wave(&mut self, phones: &[u32], now: SimTime, probe: &mut ProbeSlot<'_>) {
        for &id in phones {
            if self.partition.shard_of(id) != self.shard {
                continue;
            }
            let p = PhoneId(id);
            let was_infected = self.population.phone(p).is_infected();
            self.population.phone_mut(p).apply_patch();
            if let Some(pr) = probe.get() {
                pr.on_patch_applied(now, p, was_infected);
            }
        }
    }

    fn round_report(&mut self, processed: u64, truncated: bool) -> RoundReport {
        RoundReport {
            front: self.queue.peek_time(),
            outbox: std::mem::take(&mut self.outbox),
            sightings: std::mem::take(&mut self.sightings),
            processed,
            truncated,
            infected: self.population.infected_count(),
            messages_sent: self.stats.messages_sent,
        }
    }

    fn into_final(self) -> FinalReport {
        FinalReport {
            stats: self.stats,
            infected: self.population.infected_count(),
            resident_state_bytes: self.population.resident_bytes()
                + self.inboxes.resident_bytes()
                + self.gateway.resident_bytes(),
            events: self.events,
            peak_len: self.queue.peak_len(),
            peak_event_bytes: self.queue.peak_resident_bytes(),
            messages_in: self.messages_in,
            messages_out: self.messages_out,
        }
    }

    // --- handlers: mirrors of the sequential model, with per-phone
    // --- RNG substreams and envelope routing for remote recipients.

    fn on_infection(
        &mut self,
        phone: PhoneId,
        cause: InfectionCause,
        now: SimTime,
        probe: &mut ProbeSlot<'_>,
    ) {
        if !self.population.infect(phone) {
            return; // not susceptible (immunized / already infected / resistant)
        }
        if let Some(p) = probe.get() {
            p.on_infection(now, phone, cause);
        }
        let li = self.li(phone);
        self.senders[li] = Sender::new();
        self.senders[li].day_epoch_start = now;

        if !self.config.virus.mms_vector {
            return;
        }
        debug_assert!(!self.config.virus.piggyback, "piggyback rejected for sharded runs");

        let gap_spec = self.config.virus.send_gap;
        let gap = gap_spec.sample(phone_rng(&mut self.rngs, li, self.seed, phone.0));
        if self.config.virus.global_day_bursts {
            let elapsed = now.as_secs() % DAY.as_secs();
            let wait = if elapsed == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_secs(DAY.as_secs() - elapsed)
            };
            self.schedule(now + wait + gap, KIND_SEND, phone, SEvent::SendAttempt(phone));
        } else {
            let dormancy = self.config.virus.dormancy;
            self.schedule(now + dormancy + gap, KIND_SEND, phone, SEvent::SendAttempt(phone));
        }
        self.senders[li].send_scheduled = true;

        if self.config.virus.quota.per_reboot.is_some() {
            let interval = self.config.virus.quota.reboot_interval;
            let reboot_in = interval.sample(phone_rng(&mut self.rngs, li, self.seed, phone.0));
            self.schedule(now + reboot_in, KIND_REBOOT, phone, SEvent::Reboot(phone));
        }
    }

    fn on_send_attempt(&mut self, phone: PhoneId, now: SimTime, probe: &mut ProbeSlot<'_>) {
        let li = self.li(phone);
        self.senders[li].send_scheduled = false;
        match self.try_send(phone, now, probe) {
            SendOutcome::CannotPropagate | SendOutcome::NoTargets => {}
            SendOutcome::DailyQuota(resume) => {
                self.senders[li].send_scheduled = true;
                self.schedule(resume, KIND_SEND, phone, SEvent::SendAttempt(phone));
            }
            SendOutcome::RebootQuota => {
                self.senders[li].awaiting_reboot = true;
            }
            SendOutcome::Sent => {
                if self.population.phone(phone).can_propagate() {
                    let gap_spec = self.config.virus.send_gap;
                    let mut gap =
                        gap_spec.sample(phone_rng(&mut self.rngs, li, self.seed, phone.0));
                    if let Some(mn) = self.config.response.monitoring {
                        if self.population.phone(phone).is_throttled() {
                            gap = gap.max(mn.forced_wait);
                            if let Some(p) = probe.get() {
                                p.on_throttle_wait(now, phone, mn.forced_wait);
                            }
                        }
                    }
                    self.senders[li].send_scheduled = true;
                    self.schedule(now + gap, KIND_SEND, phone, SEvent::SendAttempt(phone));
                }
            }
        }
    }

    fn try_send(&mut self, phone: PhoneId, now: SimTime, probe: &mut ProbeSlot<'_>) -> SendOutcome {
        if !self.population.phone(phone).can_propagate() {
            return SendOutcome::CannotPropagate;
        }
        let li = self.li(phone);

        {
            let global_bursts = self.config.virus.global_day_bursts;
            let sender = &mut self.senders[li];
            if global_bursts {
                let boundary = SimTime::from_secs(now.as_secs() - now.as_secs() % DAY.as_secs());
                if boundary > sender.day_epoch_start {
                    sender.day_epoch_start = boundary;
                    sender.sent_in_day = 0;
                }
            } else {
                while now >= sender.day_epoch_start + DAY {
                    sender.day_epoch_start += DAY;
                    sender.sent_in_day = 0;
                }
            }
        }

        if let Some(limit) = self.config.virus.quota.per_day {
            let sender = &self.senders[li];
            if sender.sent_in_day >= limit {
                return SendOutcome::DailyQuota(sender.day_epoch_start + DAY);
            }
        }
        if let Some(limit) = self.config.virus.quota.per_reboot {
            if self.senders[li].sent_since_reboot >= limit {
                return SendOutcome::RebootQuota;
            }
        }

        let have_message = match self.config.virus.targeting {
            TargetingStrategy::ContactList => {
                let contacts = self.population.contacts(phone);
                if contacts.is_empty() {
                    return SendOutcome::NoTargets;
                }
                let len = contacts.len();
                let k = (self.config.virus.recipients_per_message as usize).min(len);
                let start = self.senders[li].cursor % len;
                self.senders[li].cursor = (start + k) % len;
                self.recipient_buf.clear();
                self.recipient_buf.extend((0..k).map(|i| PhoneId(contacts[(start + i) % len])));
                true
            }
            TargetingStrategy::RandomDialing { .. } => {
                let space = self.address_space.expect("address space built for random dialing");
                match space.dial_random(phone_rng(&mut self.rngs, li, self.seed, phone.0)) {
                    Some(target) => {
                        self.recipient_buf.clear();
                        self.recipient_buf.push(target);
                        true
                    }
                    None => {
                        self.stats.invalid_dials += 1;
                        false
                    }
                }
            }
        };

        {
            let sender = &mut self.senders[li];
            sender.sent_in_day += 1;
            sender.sent_since_reboot += 1;
        }
        self.stats.messages_sent += 1;
        self.senders[li].next_allowed = now + self.config.virus.send_gap.minimum();
        if let Some(p) = probe.get() {
            let fanout = if have_message { self.recipient_buf.len() as u32 } else { 0 };
            p.on_message_sent(now, phone, fanout);
        }

        let recipients = std::mem::take(&mut self.recipient_buf);
        self.gateway_process(phone, have_message.then_some(recipients.as_slice()), now, probe);
        self.recipient_buf = recipients;
        SendOutcome::Sent
    }

    fn note_outgoing_for_monitoring(
        &mut self,
        phone: PhoneId,
        now: SimTime,
        probe: &mut ProbeSlot<'_>,
    ) {
        let in_window = self.gateway.record_outgoing(phone, now);
        if let Some(mn) = self.config.response.monitoring {
            if in_window > mn.threshold as usize && !self.population.phone(phone).is_throttled() {
                self.population.phone_mut(phone).throttle();
                self.stats.throttled_phones += 1;
                let false_positive = !self.population.phone(phone).is_infected();
                if false_positive {
                    self.stats.false_positive_throttles += 1;
                }
                if let Some(p) = probe.get() {
                    p.on_throttled(now, phone, false_positive);
                }
            }
        }
    }

    fn gateway_process(
        &mut self,
        sender: PhoneId,
        recipients: Option<&[PhoneId]>,
        now: SimTime,
        probe: &mut ProbeSlot<'_>,
    ) {
        self.note_outgoing_for_monitoring(sender, now, probe);

        let suspected = self.gateway.record_suspected(sender);
        if let Some(b) = self.config.response.blacklist {
            if suspected > b.threshold {
                if !self.population.phone(sender).is_blacklisted() {
                    self.population.phone_mut(sender).blacklist();
                    self.stats.blacklisted_phones += 1;
                    if let Some(p) = probe.get() {
                        p.on_blacklisted(now, sender);
                    }
                }
                self.stats.blocked_by_blacklist += 1;
                if let Some(p) = probe.get() {
                    p.on_message_blocked(now, sender, BlockCause::Blacklist);
                }
                return;
            }
        }

        // Detectability clock: log the sighting for the coordinator's
        // global merge. The worker's `detected_at` view lags a barrier
        // behind the truth, but the coordinator counts in merged order
        // and discards the surplus, so the crossing is shard-invariant.
        if self.activation.detected_at.is_none() {
            let sli = self.li(sender);
            let seq = self.sight_seq[sli];
            self.sight_seq[sli] += 1;
            self.sightings.push((now, u64::from(sender.0), seq));
        }

        if let Some(at) = self.activation.scan_active_at {
            if now >= at {
                self.stats.blocked_by_scan += 1;
                if let Some(p) = probe.get() {
                    p.on_message_blocked(now, sender, BlockCause::Scan);
                }
                return;
            }
        }

        if let Some(d) = self.config.response.detection {
            if let Some(at) = self.activation.detection_active_at {
                let sli = self.li(sender);
                if now >= at
                    && bernoulli(phone_rng(&mut self.rngs, sli, self.seed, sender.0), d.accuracy)
                {
                    self.stats.blocked_by_detection += 1;
                    if let Some(p) = probe.get() {
                        p.on_message_blocked(now, sender, BlockCause::Detection);
                    }
                    return;
                }
            }
        }

        let Some(recipients) = recipients else {
            return; // unassigned number: nothing to deliver
        };
        let sli = self.li(sender);
        let read_delay = self.config.behavior.read_delay;
        for &r in recipients {
            self.stats.deliveries += 1;
            if let Some(p) = probe.get() {
                p.on_message_delivered(now, sender, r);
            }
            // The read delay is drawn from the *sender's* stream at
            // send time, in recipient order — identical draws whether
            // the recipient is local or remote, so the partition never
            // shifts a sequence.
            let read_in = read_delay.sample(phone_rng(&mut self.rngs, sli, self.seed, sender.0));
            let t_read = now + read_in;
            if self.partition.shard_of(r.0) == self.shard {
                let _ = self.inboxes.try_deliver(r);
                self.schedule(t_read, KIND_READ, r, SEvent::ReadMessage(r));
            } else {
                // `t_read ≥ now + lookahead ≥ window end`: the envelope
                // is always drained at a barrier before its read fires.
                let seq = self.env_seq[sli];
                self.env_seq[sli] += 1;
                self.outbox.push(Envelope {
                    time: t_read,
                    source: u64::from(sender.0),
                    seq,
                    payload: r.0,
                });
                self.messages_out += 1;
            }
        }
    }

    fn on_read_message(&mut self, phone: PhoneId, now: SimTime, probe: &mut ProbeSlot<'_>) {
        self.stats.reads += 1;
        self.inboxes.read(phone);
        if let Some(p) = probe.get() {
            p.on_message_read(now, phone);
        }
        let n = self.population.phone_mut(phone).record_infected_message();
        let prob = self.acceptance.prob_accept(n);
        let li = self.li(phone);
        if bernoulli(phone_rng(&mut self.rngs, li, self.seed, phone.0), prob) {
            self.stats.acceptances += 1;
            if let Some(p) = probe.get() {
                p.on_message_accepted(now, phone);
            }
            self.on_infection(phone, InfectionCause::Mms, now, probe);
        }
    }

    fn on_reboot(&mut self, phone: PhoneId, now: SimTime, probe: &mut ProbeSlot<'_>) {
        if !self.population.phone(phone).can_propagate() {
            return; // the reboot cycle dies with the propagation
        }
        let li = self.li(phone);
        {
            let sender = &mut self.senders[li];
            sender.sent_since_reboot = 0;
            if sender.awaiting_reboot && !sender.send_scheduled {
                sender.awaiting_reboot = false;
                sender.send_scheduled = true;
            } else {
                sender.awaiting_reboot = false;
                let interval = self.config.virus.quota.reboot_interval;
                let next = interval.sample(phone_rng(&mut self.rngs, li, self.seed, phone.0));
                self.schedule(now + next, KIND_REBOOT, phone, SEvent::Reboot(phone));
                return;
            }
        }
        self.schedule(now, KIND_SEND, phone, SEvent::SendAttempt(phone));
        let interval = self.config.virus.quota.reboot_interval;
        let next = interval.sample(phone_rng(&mut self.rngs, li, self.seed, phone.0));
        self.schedule(now + next, KIND_REBOOT, phone, SEvent::Reboot(phone));
        let _ = probe;
    }
}

// ---------------------------------------------------------------------
// Executors: inline merged-order and one-thread-per-shard
// ---------------------------------------------------------------------

enum Reply {
    Round(RoundReport),
    Final(Box<FinalReport>),
}

struct ThreadLane {
    tx: mpsc::Sender<RoundCmd>,
    rx: mpsc::Receiver<Reply>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn worker_loop(mut w: ShardWorker, rx: mpsc::Receiver<RoundCmd>, tx: mpsc::Sender<Reply>) {
    let mut probe = ProbeSlot(None);
    while let Ok(cmd) = rx.recv() {
        w.apply_round_prefix(cmd.deliveries, cmd.activation);
        let reply = match cmd.action {
            Action::Window { end, max_events } => {
                let (p, trunc) = w.run_window(end, max_events, &mut probe);
                Reply::Round(w.round_report(p, trunc))
            }
            Action::Seed { phones, now } => {
                w.apply_seed(&phones, now, &mut probe);
                Reply::Round(w.round_report(0, false))
            }
            Action::Wave { phones, now } => {
                w.apply_wave(&phones, now, &mut probe);
                Reply::Round(w.round_report(0, false))
            }
            Action::Report => Reply::Round(w.round_report(0, false)),
            Action::Finish => {
                let _ = tx.send(Reply::Final(Box::new(w.into_final())));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// The shard executor. Both variants implement the identical round
/// protocol; the inline one steps all shards from one thread in merged
/// global `(time, key, shard)` order (and is the only one that can
/// carry a probe), the threaded one runs each shard's loop on its own
/// OS thread in lockstep.
enum Pool {
    Inline { workers: Vec<ShardWorker>, probe: Option<Box<dyn SimProbe>> },
    Threads { lanes: Vec<ThreadLane> },
}

impl Pool {
    fn spawn_threads(workers: Vec<ShardWorker>) -> Pool {
        let lanes = workers
            .into_iter()
            .map(|w| {
                let (tx, crx) = mpsc::channel::<RoundCmd>();
                let (rtx, rx) = mpsc::channel::<Reply>();
                let handle = std::thread::spawn(move || worker_loop(w, crx, rtx));
                ThreadLane { tx, rx, handle: Some(handle) }
            })
            .collect();
        Pool::Threads { lanes }
    }

    fn round(&mut self, cmds: Vec<RoundCmd>) -> Vec<RoundReport> {
        match self {
            Pool::Inline { workers, probe } => {
                let mut actions = Vec::with_capacity(cmds.len());
                for (w, cmd) in workers.iter_mut().zip(cmds) {
                    w.apply_round_prefix(cmd.deliveries, cmd.activation);
                    actions.push(cmd.action);
                }
                if let Some(&Action::Window { end, max_events }) = actions.first() {
                    // Merged execution: always step the globally-earliest
                    // pending event, so a probe observes one monotone
                    // stream — exactly the order a single queue holding
                    // every shard's events would pop. `max_events` caps
                    // the round globally (the budget check).
                    let mut processed = vec![0u64; workers.len()];
                    let mut total = 0u64;
                    while total < max_events {
                        let mut best: Option<(SimTime, u64, usize)> = None;
                        for (i, w) in workers.iter_mut().enumerate() {
                            if let Some((t, k)) = w.peek_key() {
                                if t < end {
                                    let cand = (t, k, i);
                                    if best.is_none_or(|b| cand < b) {
                                        best = Some(cand);
                                    }
                                }
                            }
                        }
                        let Some((_, _, i)) = best else { break };
                        let mut slot = ProbeSlot(probe.as_deref_mut());
                        workers[i].step_one(&mut slot);
                        processed[i] += 1;
                        total += 1;
                    }
                    workers
                        .iter_mut()
                        .enumerate()
                        .map(|(i, w)| {
                            let trunc = total >= max_events
                                && matches!(w.peek_key(), Some((t, _)) if t < end);
                            w.round_report(processed[i], trunc)
                        })
                        .collect()
                } else {
                    workers
                        .iter_mut()
                        .zip(actions)
                        .map(|(w, a)| {
                            let mut slot = ProbeSlot(probe.as_deref_mut());
                            match a {
                                Action::Seed { phones, now } => {
                                    w.apply_seed(&phones, now, &mut slot)
                                }
                                Action::Wave { phones, now } => {
                                    w.apply_wave(&phones, now, &mut slot)
                                }
                                Action::Report => {}
                                Action::Window { .. } | Action::Finish => {
                                    unreachable!("finish goes through Pool::finish")
                                }
                            }
                            w.round_report(0, false)
                        })
                        .collect()
                }
            }
            Pool::Threads { lanes } => {
                for (lane, cmd) in lanes.iter().zip(cmds) {
                    lane.tx.send(cmd).expect("shard worker thread alive");
                }
                lanes
                    .iter()
                    .map(|lane| match lane.rx.recv().expect("shard worker replies") {
                        Reply::Round(r) => r,
                        Reply::Final(_) => unreachable!("final reply outside Pool::finish"),
                    })
                    .collect()
            }
        }
    }

    /// Fires a milestone on the probe, if one is attached (inline only;
    /// the threaded executor is always probeless).
    fn milestone(&mut self, now: SimTime, m: Milestone) {
        if let Pool::Inline { probe: Some(p), .. } = self {
            p.on_milestone(now, m);
        }
    }

    fn finish(self, cmds: Vec<RoundCmd>) -> (Vec<FinalReport>, Option<crate::probe::ProbeOutput>) {
        match self {
            Pool::Inline { mut workers, probe } => {
                for (w, cmd) in workers.iter_mut().zip(cmds) {
                    w.apply_round_prefix(cmd.deliveries, cmd.activation);
                }
                let finals = workers.into_iter().map(ShardWorker::into_final).collect();
                (finals, probe.and_then(|p| p.into_output()))
            }
            Pool::Threads { mut lanes } => {
                for (lane, cmd) in lanes.iter().zip(cmds) {
                    lane.tx.send(cmd).expect("shard worker thread alive");
                }
                let finals = lanes
                    .iter()
                    .map(|lane| match lane.rx.recv().expect("shard worker final reply") {
                        Reply::Final(f) => *f,
                        Reply::Round(_) => unreachable!("round reply to the final command"),
                    })
                    .collect();
                for lane in &mut lanes {
                    if let Some(h) = lane.handle.take() {
                        let _ = h.join();
                    }
                }
                (finals, None)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator: pins, windows, detection merge, rollout
// ---------------------------------------------------------------------

/// A globally-ordered instant the coordinator executes between windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pin {
    Seed,
    Sample,
    ScanActive,
    DetectionActive,
    RolloutStart,
    Wave(usize),
}

fn min_time(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

struct Coordinator {
    config: Arc<ScenarioConfig>,
    partition: Arc<Partition>,
    /// The coordinator's own population clone: seeding exclusion and
    /// HubsFirst degrees only — it never tracks the epidemic.
    population: Population,
    rng: StdRng,
    router: ShardRouter<u32>,
    /// Pending pins keyed `(time, rank, insertion)`: the BTreeMap *is*
    /// the pin schedule's total order.
    pins: BTreeMap<(SimTime, u8, u32), Pin>,
    uniq: u32,
    fronts: Vec<Option<SimTime>>,
    activation: ActivationTimes,
    series: TimeSeries,
    traffic: TimeSeries,
    /// Virus sightings counted toward `detect_threshold` so far.
    observed: u64,
    patch_waves: Vec<Arc<Vec<u32>>>,
    barrier: BarrierStats,
    processed_total: u64,
    budget: u64,
    horizon_end: SimTime,
    lookahead: Lookahead,
    seed: u64,
}

impl Coordinator {
    fn push_pin(&mut self, at: SimTime, rank: u8, pin: Pin) {
        let key = (at, rank, self.uniq);
        self.uniq += 1;
        self.pins.insert(key, pin);
    }

    /// Pins `pin` at `raw`, deferred to `floor` (the barrier that
    /// revealed the triggering discovery) if `raw` precedes it, and
    /// dropped entirely past the horizon (the legacy engine's
    /// never-fired FEL entries).
    fn pin_at_least(&mut self, raw: SimTime, floor: SimTime, rank: u8, pin: Pin) {
        let at = raw.max(floor);
        if at <= self.horizon_end {
            self.push_pin(at, rank, pin);
        }
    }

    fn budget_error(&self, now: SimTime) -> ConfigError {
        ConfigError::run(format!(
            "seed {}: event budget {} exceeded at simulated time {now} (raise event_budget or shrink the scenario)",
            self.seed, self.budget
        ))
    }

    /// One command per shard for the next round, draining each shard's
    /// safe cross-shard deliveries and carrying the activation view.
    fn cmds_with(&mut self, mut action: impl FnMut(usize) -> Action) -> Vec<RoundCmd> {
        let shards = self.partition.shard_count();
        (0..shards)
            .map(|i| RoundCmd {
                deliveries: self.router.drain(i),
                activation: self.activation,
                action: action(i),
            })
            .collect()
    }

    /// Folds a pin round's reports back in (fronts and any routed
    /// envelopes; pin rounds cannot log sightings).
    fn absorb_pin_reports(&mut self, reports: Vec<RoundReport>) {
        for (i, r) in reports.into_iter().enumerate() {
            self.fronts[i] = r.front;
            for env in r.outbox {
                let dest = self.partition.shard_of(env.payload);
                self.router.send(dest, env);
            }
            debug_assert!(r.sightings.is_empty(), "pin rounds log no sightings");
        }
    }

    fn run(&mut self, pool: &mut Pool) -> Result<(), ConfigError> {
        self.push_pin(SimTime::ZERO, RANK_SEED, Pin::Seed);
        self.push_pin(SimTime::ZERO, RANK_SAMPLE, Pin::Sample);
        loop {
            // A shard's effective front includes envelopes parked in the
            // router for it — they are future events it cannot see yet.
            let fronts: Vec<Option<SimTime>> = (0..self.fronts.len())
                .map(|i| min_time(self.fronts[i], self.router.pending_min_time(i)))
                .collect();
            let next_pin = self.pins.keys().next().map(|k| k.0);
            match plan_round(&fronts, next_pin, self.lookahead) {
                Round::Idle => break,
                Round::Pin(t) => {
                    if t > self.horizon_end {
                        break;
                    }
                    self.barrier.rounds += 1;
                    self.barrier.pin_rounds += 1;
                    let key = *self.pins.keys().next().expect("pin round implies a pin");
                    let pin = self.pins.remove(&key).expect("first pin present");
                    self.processed_total += 1;
                    if self.processed_total > self.budget {
                        return Err(self.budget_error(t));
                    }
                    self.exec_pin(pin, t, pool);
                }
                Round::Window { start, end } => {
                    if start > self.horizon_end {
                        break;
                    }
                    self.barrier.rounds += 1;
                    self.barrier.window_rounds += 1;
                    // Half-open [start, wend): one extra second past the
                    // horizon so events AT the horizon still fire, as the
                    // sequential engine's `run_until(horizon)` does.
                    let wend = end.min(self.horizon_end + SimDuration::from_secs(1));
                    let cap = self.budget.saturating_sub(self.processed_total) + 1;
                    let cmds = self.cmds_with(|_| Action::Window { end: wend, max_events: cap });
                    let reports = pool.round(cmds);
                    let mut truncated = false;
                    let mut sightings: Vec<Sighting> = Vec::new();
                    for (i, r) in reports.into_iter().enumerate() {
                        self.fronts[i] = r.front;
                        self.processed_total += r.processed;
                        truncated |= r.truncated;
                        if r.processed == 0 {
                            self.barrier.idle_shard_rounds += 1;
                        }
                        for env in r.outbox {
                            let dest = self.partition.shard_of(env.payload);
                            self.router.send(dest, env);
                        }
                        sightings.extend(r.sightings);
                    }
                    if truncated || self.processed_total > self.budget {
                        return Err(self.budget_error(start));
                    }
                    self.note_sightings(sightings, wend, pool);
                }
            }
        }
        Ok(())
    }

    fn exec_pin(&mut self, pin: Pin, t: SimTime, pool: &mut Pool) {
        match pin {
            Pin::Seed => {
                let shards = self.partition.shard_count();
                let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
                for _ in 0..self.config.initial_infections {
                    if let Some(p) = self.population.random_susceptible(&mut self.rng) {
                        // Infect the coordinator clone so later draws
                        // exclude this phone, as the sequential seeding
                        // loop does.
                        self.population.infect(p);
                        per_shard[self.partition.shard_of(p.0)].push(p.0);
                    }
                }
                let cmds = self.cmds_with(|i| Action::Seed {
                    phones: std::mem::take(&mut per_shard[i]),
                    now: t,
                });
                let reports = pool.round(cmds);
                self.absorb_pin_reports(reports);
            }
            Pin::Sample => {
                let cmds = self.cmds_with(|_| Action::Report);
                let reports = pool.round(cmds);
                let infected: usize = reports.iter().map(|r| r.infected).sum();
                let msgs: u64 = reports.iter().map(|r| r.messages_sent).sum();
                self.absorb_pin_reports(reports);
                self.series.push(infected as f64);
                self.traffic.push(msgs as f64);
                let next = t + self.config.sample_step;
                if next <= self.horizon_end {
                    self.push_pin(next, RANK_SAMPLE, Pin::Sample);
                }
            }
            Pin::ScanActive => {
                self.activation.scan_active_at = Some(t);
                pool.milestone(t, Milestone::ScanActive);
            }
            Pin::DetectionActive => {
                self.activation.detection_active_at = Some(t);
                pool.milestone(t, Milestone::DetectionActive);
            }
            Pin::RolloutStart => {
                self.activation.rollout_starts_at = Some(t);
                pool.milestone(t, Milestone::RolloutStart);
                self.build_rollout(t);
            }
            Pin::Wave(idx) => {
                let phones = Arc::clone(&self.patch_waves[idx]);
                let cmds = self.cmds_with(|_| Action::Wave { phones: Arc::clone(&phones), now: t });
                let reports = pool.round(cmds);
                self.absorb_pin_reports(reports);
            }
        }
    }

    /// Counts this round's sightings — in merged `(time, source, seq)`
    /// order, which is shard-count invariant — toward the detectability
    /// threshold. On crossing, `detected_at` is the crossing sighting's
    /// time, but the response can only *start* at the barrier that
    /// revealed it, so activation pins are floored at `wend`.
    fn note_sightings(&mut self, mut sightings: Vec<Sighting>, wend: SimTime, pool: &mut Pool) {
        if self.activation.detected_at.is_some() || sightings.is_empty() {
            return;
        }
        sightings.sort_unstable();
        for (st, _, _) in sightings {
            self.observed += 1;
            if self.observed >= self.config.detect_threshold {
                self.on_detected(st, wend, pool);
                break;
            }
        }
    }

    fn on_detected(&mut self, t_detect: SimTime, wend: SimTime, pool: &mut Pool) {
        self.activation.detected_at = Some(t_detect);
        // Fired at the window end: every event the probe has already
        // seen has `time < wend`, so the milestone keeps its stream
        // monotone.
        pool.milestone(wend, Milestone::Detected);
        if let Some(s) = self.config.response.signature_scan {
            self.pin_at_least(t_detect + s.activation_delay, wend, RANK_SCAN, Pin::ScanActive);
        }
        if let Some(d) = self.config.response.detection {
            self.pin_at_least(
                t_detect + d.analysis_period,
                wend,
                RANK_DETECTION,
                Pin::DetectionActive,
            );
        }
        if let Some(imm) = self.config.response.immunization {
            self.pin_at_least(
                t_detect + imm.development_time,
                wend,
                RANK_ROLLOUT,
                Pin::RolloutStart,
            );
        }
    }

    /// Mirror of the sequential rollout scheduler: same arrival draws
    /// (from the coordinator stream), same coalescing into one wave per
    /// distinct offset, same emission order within a wave.
    fn build_rollout(&mut self, t: SimTime) {
        let imm = self.config.response.immunization.expect("rollout without immunization");
        let rollout_secs = imm.rollout_duration.as_secs();
        let n = self.population.len();
        let mut arrivals: Vec<(u64, u32)> = Vec::with_capacity(n);
        match imm.order {
            crate::response::RolloutOrder::Uniform => {
                for id in 0..n {
                    let offset =
                        if rollout_secs == 0 { 0 } else { self.rng.random_range(0..=rollout_secs) };
                    arrivals.push((offset, id as u32));
                }
            }
            crate::response::RolloutOrder::HubsFirst => {
                let mut by_degree: Vec<usize> = (0..n).collect();
                by_degree
                    .sort_by_key(|&i| std::cmp::Reverse(self.population.degree(PhoneId::from(i))));
                for (rank, id) in by_degree.into_iter().enumerate() {
                    let offset = if n <= 1 || rollout_secs == 0 {
                        0
                    } else {
                        rollout_secs * rank as u64 / (n as u64 - 1)
                    };
                    arrivals.push((offset, id as u32));
                }
            }
        }
        let mut wave_for: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut waves: Vec<Vec<u32>> = Vec::new();
        for (offset, id) in arrivals {
            match wave_for.entry(offset) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    waves[*e.get() as usize].push(id);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let idx = u32::try_from(waves.len()).expect("wave count fits u32");
                    e.insert(idx);
                    waves.push(vec![id]);
                    let wt = t + SimDuration::from_secs(offset);
                    // Waves past the horizon stay in the table (index
                    // stability) but get no pin — the legacy engine's
                    // never-fired wave events.
                    if wt <= self.horizon_end {
                        self.push_pin(wt, RANK_WAVE, Pin::Wave(idx as usize));
                    }
                }
            }
        }
        self.patch_waves = waves.into_iter().map(Arc::new).collect();
    }
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

fn add_stats(a: &mut RunStats, b: &RunStats) {
    a.messages_sent += b.messages_sent;
    a.invalid_dials += b.invalid_dials;
    a.deliveries += b.deliveries;
    a.blocked_by_scan += b.blocked_by_scan;
    a.blocked_by_detection += b.blocked_by_detection;
    a.blocked_by_blacklist += b.blocked_by_blacklist;
    a.reads += b.reads;
    a.acceptances += b.acceptances;
    a.throttled_phones += b.throttled_phones;
    a.blacklisted_phones += b.blacklisted_phones;
    a.bluetooth_offers += b.bluetooth_offers;
    a.bluetooth_acceptances += b.bluetooth_acceptances;
    a.legitimate_messages += b.legitimate_messages;
    a.piggyback_sends += b.piggyback_sends;
    a.false_positive_throttles += b.false_positive_throttles;
    a.inbox_dropped += b.inbox_dropped;
}

/// Runs one replication of `config` under `seed`, sharded `shards` ways.
///
/// The trajectory depends only on `(config, seed)` — identical for every
/// shard count, executor and FEL backend (see the module docs for the
/// contract and for which configurations are shardable).
///
/// # Errors
///
/// Rejects unshardable configurations ([`reject_unshardable`]), a zero
/// shard count, a probe combined with the explicit threaded executor,
/// topology generation failures, and event-budget overruns.
pub fn run_scenario_sharded(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    shards: usize,
    probe: Option<Box<dyn SimProbe>>,
    mode: ShardMode,
) -> Result<ShardOutcome, ConfigError> {
    if shards == 0 {
        return Err(ConfigError::invalid("engine.shards", "shard count must be at least 1"));
    }
    reject_unshardable(config)?;
    let lookahead = Lookahead::new(config.behavior.read_delay.minimum())
        .map_err(|e| ConfigError::invalid("behavior.read_delay", e.to_string()))?;

    let resolved = match mode {
        ShardMode::Auto => {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            if probe.is_some() || shards == 1 || cores == 1 {
                ShardMode::Inline
            } else {
                ShardMode::Threads
            }
        }
        m => m,
    };
    if resolved == ShardMode::Threads && probe.is_some() {
        return Err(ConfigError::invalid(
            "engine.shards",
            "probed runs need the inline shard executor (probe hooks form one ordered stream)",
        ));
    }

    let topo_seed = derive_stream_seed(seed, 0, crate::run::TOPOLOGY_STREAM);
    let (graph, mut topo_rng) = match cache {
        Some(cache) => cache.get_or_generate(&config.population.topology, topo_seed)?,
        None => {
            let mut rng = StdRng::seed_from_u64(topo_seed);
            let graph = config
                .population
                .topology
                .generate_csr(&mut rng)
                .map_err(|e| ConfigError::invalid("population.topology", e.to_string()))?;
            (Arc::new(graph), rng)
        }
    };
    let population =
        Population::from_csr(graph.clone(), config.population.vulnerable_fraction, &mut topo_rng);
    let partition = Arc::new(Partition::edge_cut(&graph, shards));
    let shared = Arc::new(config.clone());

    let workers: Vec<ShardWorker> = (0..shards)
        .map(|i| {
            ShardWorker::new(
                i,
                Arc::clone(&shared),
                Arc::clone(&partition),
                population.clone(),
                fel,
                seed,
            )
        })
        .collect();
    let mut pool = match resolved {
        ShardMode::Inline => Pool::Inline { workers, probe },
        ShardMode::Threads => Pool::spawn_threads(workers),
        ShardMode::Auto => unreachable!("mode resolved above"),
    };

    let budget = config.event_budget.unwrap_or(DEFAULT_EVENT_BUDGET);
    let mut coord = Coordinator {
        config: shared,
        partition: Arc::clone(&partition),
        population,
        rng: StdRng::seed_from_u64(derive_stream_seed(seed, 0, COORD_STREAM)),
        router: ShardRouter::new(shards),
        pins: BTreeMap::new(),
        uniq: 0,
        fronts: vec![None; shards],
        activation: ActivationTimes::default(),
        series: TimeSeries::new(config.sample_step.as_hours_f64()),
        traffic: TimeSeries::new(config.sample_step.as_hours_f64()),
        observed: 0,
        patch_waves: Vec::new(),
        barrier: BarrierStats::default(),
        processed_total: 0,
        budget,
        horizon_end: SimTime::ZERO + config.horizon,
        lookahead,
        seed,
    };
    coord.run(&mut pool)?;

    // Flush any still-parked envelopes (reads past the horizon — the
    // legacy engine's never-fired FEL entries) so the cross-shard flow
    // books balance, then collect the final reports.
    let final_cmds = coord.cmds_with(|_| Action::Finish);
    let (finals, probe_out) = pool.finish(final_cmds);

    let mut stats = RunStats::default();
    let mut final_infected = 0usize;
    let mut resident = 0usize;
    let mut peak_events_sum = 0usize;
    let mut peak_bytes_sum = 0usize;
    let mut lanes = Vec::with_capacity(shards);
    for f in &finals {
        add_stats(&mut stats, &f.stats);
        final_infected += f.infected;
        resident += f.resident_state_bytes;
        peak_events_sum += f.peak_len;
        peak_bytes_sum += f.peak_event_bytes;
        lanes.push(ShardLane {
            events: f.events,
            peak_len: f.peak_len,
            peak_event_bytes: f.peak_event_bytes,
            messages_out: f.messages_out,
            messages_in: f.messages_in,
        });
    }
    let barrier = BarrierStats { cross_shard_messages: coord.router.routed(), ..coord.barrier };
    let telemetry = ShardTelemetry {
        shards,
        cut_edges: partition.cut_edges(),
        lookahead: lookahead.get(),
        barrier,
        lanes,
    };
    let metrics = SimMetrics {
        events_processed: coord.processed_total,
        peak_pending_events: peak_events_sum,
        peak_event_bytes: peak_bytes_sum,
    };
    // Pins fire before worker events that share their timestamp, so a
    // send or infection landing at exactly the horizon (day-boundary
    // quota resets make this common) posts *after* the final sample
    // pin. Patch the last sample to the end-of-run totals so the series
    // end at the reported final state, as the sequential engine's
    // insertion-ordered FEL does. Identical arithmetic for every shard
    // count, so shard-count invariance is preserved.
    let close = |series: TimeSeries, total: f64| {
        let mut values = series.values().to_vec();
        let step = series.step_hours();
        if let Some(last) = values.last_mut() {
            *last = total;
        }
        TimeSeries::from_values(step, values)
    };
    let series = close(coord.series, final_infected as f64);
    let traffic = close(coord.traffic, stats.messages_sent as f64);
    let result = RunResult {
        series,
        traffic,
        final_infected,
        stats,
        activation: coord.activation,
        gateway_peak_delay: None,
        resident_state_bytes: resident,
        probe: probe_out,
    };
    Ok(ShardOutcome { result, metrics, telemetry })
}

// ---------------------------------------------------------------------
// Observability and the configured entry point
// ---------------------------------------------------------------------

/// Process-wide counters mirroring each sharded replication's barrier
/// and cross-shard traffic into the metrics registry (the per-run
/// numbers still travel in [`ShardTelemetry`]).
fn shard_metrics() -> &'static (
    mpvsim_obs::Counter,
    mpvsim_obs::Counter,
    mpvsim_obs::Counter,
    mpvsim_obs::Counter,
    mpvsim_obs::Counter,
) {
    static METRICS: std::sync::OnceLock<(
        mpvsim_obs::Counter,
        mpvsim_obs::Counter,
        mpvsim_obs::Counter,
        mpvsim_obs::Counter,
        mpvsim_obs::Counter,
    )> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mpvsim_obs::metrics::global();
        let rounds_help = "Sharded-engine barrier rounds by kind";
        (
            reg.counter("mpvsim_shard_events_total", "Events processed by sharded-engine workers"),
            reg.counter_with("mpvsim_shard_rounds_total", rounds_help, &[("kind", "pin")]),
            reg.counter_with("mpvsim_shard_rounds_total", rounds_help, &[("kind", "window")]),
            reg.counter_with(
                "mpvsim_shard_idle_waits_total",
                "Shard-rounds in which a shard had no event to process (barrier waits)",
                &[],
            ),
            reg.counter(
                "mpvsim_shard_messages_total",
                "Cross-shard envelopes routed through the time-window barrier",
            ),
        )
    })
}

/// Mirrors one run's [`ShardTelemetry`] into the global metrics registry.
pub fn record_shard_telemetry(t: &ShardTelemetry) {
    let (events, pin_rounds, window_rounds, idle_waits, messages) = shard_metrics();
    events.add(t.lanes.iter().map(|l| l.events).sum());
    pin_rounds.add(t.barrier.pin_rounds);
    window_rounds.add(t.barrier.window_rounds);
    idle_waits.add(t.barrier.idle_shard_rounds);
    messages.add(t.barrier.cross_shard_messages);
}

/// The sharded counterpart of [`crate::run_scenario_configured`]:
/// validates the scenario, builds the [`ProbeKind`] probe, runs the
/// replication `shards` ways, and mirrors the barrier telemetry into
/// the metrics registry.
///
/// # Errors
///
/// Everything [`run_scenario_sharded`] rejects, plus ordinary scenario
/// validation failures.
pub fn run_scenario_sharded_configured(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    shards: usize,
    probe: crate::probe::ProbeKind,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    config.validate()?;
    let outcome = run_scenario_sharded(
        config,
        seed,
        fel,
        cache,
        shards,
        probe.build(config),
        ShardMode::Auto,
    )?;
    record_shard_telemetry(&outcome.telemetry);
    Ok((outcome.result, outcome.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::response::{
        Blacklist, DetectionAlgorithm, Immunization, Monitoring, RolloutOrder, SignatureScan,
        UserEducation,
    };
    use crate::virus::{SendQuota, TargetingStrategy, VirusProfile};
    use mpvsim_des::DelaySpec;
    use mpvsim_topology::GraphSpec;

    /// A small, fast-spreading, fully-shardable scenario: positive-min
    /// read delay (the lookahead), no dormancy, unlimited quota.
    fn shardable_config(phones: usize) -> ScenarioConfig {
        let mut virus = VirusProfile::virus1();
        virus.send_gap =
            DelaySpec::shifted_exp(SimDuration::from_mins(2), SimDuration::from_mins(20));
        virus.dormancy = SimDuration::ZERO;
        virus.global_day_bursts = false;
        virus.quota = SendQuota::unlimited();
        let mut cfg = ScenarioConfig::baseline(virus);
        cfg.population.topology = GraphSpec::power_law(phones, 8.0);
        cfg.behavior.read_delay =
            DelaySpec::shifted_exp(SimDuration::from_mins(5), SimDuration::from_mins(30));
        cfg.horizon = SimDuration::from_days(3);
        cfg.detect_threshold = 5;
        cfg.initial_infections = 5;
        cfg
    }

    /// Layers every shardable response mechanism on, so the invariance
    /// tests cover detection merge, activation pins and patch waves.
    fn with_full_response(mut cfg: ScenarioConfig) -> ScenarioConfig {
        cfg.response.signature_scan =
            Some(SignatureScan { activation_delay: SimDuration::from_hours(2) });
        cfg.response.detection =
            Some(DetectionAlgorithm { accuracy: 0.8, analysis_period: SimDuration::from_hours(4) });
        cfg.response.education = Some(UserEducation { acceptance_scale: 0.9 });
        cfg.response.immunization = Some(Immunization {
            development_time: SimDuration::from_hours(6),
            rollout_duration: SimDuration::from_hours(12),
            order: RolloutOrder::Uniform,
        });
        cfg.response.monitoring = Some(Monitoring {
            window: SimDuration::from_hours(1),
            threshold: 20,
            forced_wait: SimDuration::from_hours(1),
        });
        cfg.response.blacklist = Some(Blacklist { threshold: 50 });
        cfg
    }

    fn run(cfg: &ScenarioConfig, seed: u64, shards: usize, mode: ShardMode) -> ShardOutcome {
        run_scenario_sharded(cfg, seed, FelKind::default(), None, shards, None, mode)
            .expect("sharded run succeeds")
    }

    type Digest = (Vec<f64>, Vec<f64>, usize, RunStats, ActivationTimes);

    fn digest(r: &RunResult) -> Digest {
        (
            r.series.values().to_vec(),
            r.traffic.values().to_vec(),
            r.final_infected,
            r.stats,
            r.activation,
        )
    }

    #[test]
    fn trajectory_is_shard_count_invariant() {
        let cfg = with_full_response(shardable_config(200));
        for seed in [1u64, 7] {
            let base = run(&cfg, seed, 1, ShardMode::Auto);
            assert!(base.result.final_infected > 1, "epidemic must spread for a meaningful test");
            for shards in [2usize, 3, 8] {
                let out = run(&cfg, seed, shards, ShardMode::Auto);
                assert_eq!(
                    digest(&out.result),
                    digest(&base.result),
                    "shards={shards} seed={seed} diverged from shards=1"
                );
                out.telemetry.check_flow().expect("cross-shard flow conserved");
                assert!(
                    out.telemetry.barrier.cross_shard_messages > 0,
                    "a spread-out epidemic must cross shard boundaries"
                );
                assert_eq!(out.metrics.events_processed, base.metrics.events_processed);
            }
        }
    }

    #[test]
    fn random_dialing_and_reboot_quota_are_invariant() {
        let mut cfg = shardable_config(150);
        cfg.virus.targeting = TargetingStrategy::RandomDialing { valid_fraction: 0.4 };
        cfg.virus.quota = SendQuota::per_reboot(5, SimDuration::from_hours(2));
        let base = run(&cfg, 11, 1, ShardMode::Auto);
        for shards in [2usize, 8] {
            let out = run(&cfg, 11, shards, ShardMode::Auto);
            assert_eq!(digest(&out.result), digest(&base.result));
        }
    }

    #[test]
    fn inline_and_threaded_executors_agree() {
        let cfg = with_full_response(shardable_config(120));
        let inline = run(&cfg, 3, 4, ShardMode::Inline);
        let threads = run(&cfg, 3, 4, ShardMode::Threads);
        assert_eq!(digest(&inline.result), digest(&threads.result));
        assert_eq!(inline.telemetry.barrier, threads.telemetry.barrier);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let cfg = with_full_response(shardable_config(100));
        let a = run(&cfg, 5, 3, ShardMode::Auto);
        let b = run(&cfg, 5, 3, ShardMode::Auto);
        assert_eq!(digest(&a.result), digest(&b.result));
        assert_eq!(a.telemetry, b.telemetry);
    }

    #[test]
    fn more_shards_than_phones_is_equivalent() {
        let mut cfg = shardable_config(5);
        cfg.population.topology = GraphSpec::ring(5, 2);
        let base = run(&cfg, 2, 1, ShardMode::Auto);
        let wide = run(&cfg, 2, 8, ShardMode::Auto);
        assert_eq!(digest(&wide.result), digest(&base.result));
        assert_eq!(wide.telemetry.lanes.len(), 8);
    }

    #[test]
    fn zero_minimum_read_delay_is_rejected() {
        // The paper-default exponential read delay has minimum zero:
        // no lookahead, so the barrier could never advance.
        let cfg = ScenarioConfig::baseline(VirusProfile::virus1());
        let err = run_scenario_sharded(&cfg, 1, FelKind::default(), None, 2, None, ShardMode::Auto)
            .expect_err("zero lookahead must be rejected");
        assert!(err.to_string().contains("read_delay"), "unexpected error: {err}");
    }

    #[test]
    fn unshardable_features_are_rejected() {
        let base = shardable_config(50);

        let bt = ScenarioConfig::baseline(VirusProfile::bluetooth_worm());
        assert!(reject_unshardable(&bt).is_err(), "bluetooth must be rejected");

        let mut inbox = base.clone();
        inbox.inbox_cap = Some(4);
        assert!(reject_unshardable(&inbox).is_err(), "inbox cap must be rejected");

        let mut gw = base.clone();
        gw.gateway_capacity_per_hour = Some(1000);
        assert!(reject_unshardable(&gw).is_err(), "gateway capacity must be rejected");

        let mut legit = base.clone();
        legit.behavior.legitimate_mms =
            Some(DelaySpec::shifted_exp(SimDuration::from_hours(1), SimDuration::from_hours(4)));
        assert!(reject_unshardable(&legit).is_err(), "legitimate traffic must be rejected");

        let mut piggy = base.clone();
        piggy.virus.piggyback = true;
        assert!(reject_unshardable(&piggy).is_err(), "piggyback must be rejected");

        assert!(reject_unshardable(&base).is_ok());
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        let cfg = shardable_config(20);
        assert!(run_scenario_sharded(&cfg, 1, FelKind::default(), None, 0, None, ShardMode::Auto,)
            .is_err());
    }

    #[test]
    fn event_budget_overrun_is_a_structured_error() {
        let mut cfg = shardable_config(100);
        cfg.event_budget = Some(10);
        let err = run_scenario_sharded(&cfg, 1, FelKind::default(), None, 2, None, ShardMode::Auto)
            .expect_err("tiny budget must overflow");
        assert!(err.to_string().contains("event budget"), "unexpected error: {err}");
    }

    #[test]
    fn threaded_executor_rejects_a_probe() {
        #[derive(Debug)]
        struct Null;
        impl SimProbe for Null {}
        let cfg = shardable_config(30);
        let err = run_scenario_sharded(
            &cfg,
            1,
            FelKind::default(),
            None,
            2,
            Some(Box::new(Null)),
            ShardMode::Threads,
        )
        .expect_err("threads + probe must be rejected");
        assert!(err.to_string().contains("inline"), "unexpected error: {err}");
    }
}
