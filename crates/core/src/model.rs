//! The event-driven epidemic model: §2's attack process plus §3's response
//! mechanisms, executed on the `mpvsim-des` engine.
//!
//! ## Event flow
//!
//! ```text
//! Seed ──▶ infect ──▶ SendAttempt ──(quota ok)──▶ gateway ──▶ ReadMessage ──▶ accept? ──▶ infect …
//!            │             ▲  └─(quota hit)─ wait for Reboot / next day    (per recipient)
//!            └─ Reboot loop┘
//! Sample fires every `sample_step` and appends the infected count.
//! Detectability (gateway sees `detect_threshold` infected messages)
//! schedules ScanActive / DetectionActive / RolloutStart;
//! RolloutStart coalesces patch arrivals into one PatchWave event per
//! distinct arrival instant (the model keeps a wave table mapping each
//! event to the phones it patches).
//! ```
//!
//! All stochastic draws go through the engine-owned RNG, so one
//! `(ScenarioConfig, seed)` pair determines the trajectory exactly.

use rand::RngExt;

use mpvsim_des::random::bernoulli;
use mpvsim_des::{Context, Model, SimDuration, SimTime};
use mpvsim_mobility::MobilityField;
use mpvsim_phonenet::{
    AddressSpace, BufferPool, Gateway, Inboxes, PhoneId, Population, TransitQueue,
};
use mpvsim_stats::TimeSeries;

use crate::behavior::AcceptanceModel;
use crate::config::ScenarioConfig;
use crate::probe::{BlockCause, InfectionCause, Milestone, SimProbe};
use crate::response::ActivationTimes;
use crate::virus::TargetingStrategy;

/// The model's event alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Infect the initial phone(s) and start the observation clock.
    Seed,
    /// An infected phone tries to send its next infected message.
    SendAttempt(PhoneId),
    /// A phone reboots, resetting its per-reboot send quota.
    Reboot(PhoneId),
    /// The user of this phone reads one pending infected message and
    /// decides whether to accept the attachment.
    ReadMessage(PhoneId),
    /// The gateway signature scan goes live.
    ScanActive,
    /// The gateway detection algorithm finishes its analysis period.
    DetectionActive,
    /// Patch development finishes; the rollout begins.
    RolloutStart,
    /// The immunization patch reaches every phone in one arrival wave
    /// (all phones sharing one distinct arrival instant, coalesced into a
    /// single event; the payload indexes the model's wave table).
    PatchWave(u32),
    /// Periodic infection-count sample.
    Sample,
    /// Advance the mobility field and run Bluetooth proximity transfers
    /// (only scheduled when the scenario has a mobility model and the
    /// virus a Bluetooth vector).
    MobilityTick,
    /// This phone's user sends one legitimate MMS (only scheduled when
    /// legitimate traffic is configured).
    LegitimateSend(PhoneId),
}

/// Message-flow counters for one replication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Messages emitted by infected phones (including invalid dials).
    pub messages_sent: u64,
    /// Random dials that hit an unassigned number.
    pub invalid_dials: u64,
    /// Per-recipient deliveries that reached an inbox.
    pub deliveries: u64,
    /// Messages dropped by the signature scan.
    pub blocked_by_scan: u64,
    /// Messages dropped by the detection algorithm.
    pub blocked_by_detection: u64,
    /// Messages dropped because the sender crossed the blacklist
    /// threshold.
    pub blocked_by_blacklist: u64,
    /// Infected messages read by users.
    pub reads: u64,
    /// Attachments accepted (whether or not they caused a new infection).
    pub acceptances: u64,
    /// Phones flagged by the monitoring mechanism.
    pub throttled_phones: u64,
    /// Phones blacklisted.
    pub blacklisted_phones: u64,
    /// Bluetooth transfer prompts shown to users.
    pub bluetooth_offers: u64,
    /// Bluetooth transfers accepted.
    pub bluetooth_acceptances: u64,
    /// Legitimate MMS messages sent (when legitimate traffic is modelled).
    pub legitimate_messages: u64,
    /// Virus messages emitted by piggybacking on legitimate traffic.
    pub piggyback_sends: u64,
    /// Monitoring flags raised against phones that were NOT infected
    /// (false positives; only possible with legitimate traffic).
    pub false_positive_throttles: u64,
    /// Deliveries refused by the bounded inbox admission cap (always 0
    /// when no `inbox_cap` is configured).
    pub inbox_dropped: u64,
}

/// Per-phone sending-side state (only meaningful once infected).
#[derive(Debug, Clone, Copy)]
struct SenderState {
    /// Cyclic cursor into the contact list.
    cursor: usize,
    /// Messages sent in the current 24-hour period.
    sent_in_day: u32,
    /// Start of the current 24-hour period (aligned to infection time).
    day_epoch_start: SimTime,
    /// Messages sent since the last reboot.
    sent_since_reboot: u32,
    /// The per-reboot quota is exhausted; sending resumes at the next
    /// reboot.
    awaiting_reboot: bool,
    /// A `SendAttempt` is already pending for this phone (guards against
    /// duplicate send chains).
    send_scheduled: bool,
    /// Earliest instant the next virus message may leave this phone
    /// (enforces the minimum inter-message gap for piggyback sends).
    next_allowed: SimTime,
}

impl SenderState {
    fn new() -> Self {
        SenderState {
            cursor: 0,
            sent_in_day: 0,
            day_epoch_start: SimTime::ZERO,
            sent_since_reboot: 0,
            awaiting_reboot: false,
            send_scheduled: false,
            next_allowed: SimTime::ZERO,
        }
    }
}

/// The complete simulation state for one replication.
#[derive(Debug)]
pub struct EpidemicModel {
    config: ScenarioConfig,
    population: Population,
    gateway: Gateway,
    address_space: Option<AddressSpace>,
    /// Education-adjusted acceptance curve.
    acceptance: AcceptanceModel,
    senders: Vec<SenderState>,
    activation: ActivationTimes,
    series: TimeSeries,
    /// Cumulative virus messages sent, on the same sampling grid as
    /// `series` — the "extra network congestion due to the virus-related
    /// traffic" the paper's introduction motivates.
    traffic_series: TimeSeries,
    stats: RunStats,
    mobility: Option<MobilityField>,
    inboxes: Inboxes,
    transit: Option<TransitQueue>,
    /// Patch-arrival waves built at rollout start: one entry per distinct
    /// arrival instant holding the phones patched at that instant, in the
    /// order the uncoalesced schedule would have patched them.
    /// [`Event::PatchWave`] indexes this table; a fired wave is drained.
    patch_waves: Vec<Vec<u32>>,
    /// Reusable scratch buffer for the recipients of the MMS currently
    /// being assembled — one allocation for the whole run instead of a
    /// fresh `Vec` per send.
    recipient_buf: Vec<PhoneId>,
    /// Reusable scratch buffer for the Bluetooth transfer offers
    /// (`(source, target)` pairs) of the mobility tick being processed.
    bt_offers: Vec<(PhoneId, PhoneId)>,
    /// Optional in-simulation probe (see [`crate::probe`]). `None` in
    /// every ordinary run: the disabled path costs one never-taken
    /// branch per hook site.
    probe: Option<Box<dyn SimProbe>>,
}

/// A phone's rolling quota day: 24 hours.
const DAY: SimDuration = SimDuration::from_hours(24);

/// Why a send attempt did or didn't produce a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    /// A message left the phone (possibly to be dropped at the gateway).
    Sent,
    /// The per-day quota is exhausted; sending may resume at the instant.
    DailyQuota(SimTime),
    /// The per-reboot quota is exhausted; sending resumes at the next
    /// reboot.
    RebootQuota,
    /// The phone has an empty contact list — nothing to target, ever.
    NoTargets,
    /// The phone cannot propagate (healthy, silenced or blacklisted).
    CannotPropagate,
}

impl EpidemicModel {
    /// Builds the model over an already-constructed population.
    ///
    /// (The population — topology plus vulnerability designation — is
    /// generated from its own random stream by [`crate::run_scenario`] so
    /// that structural and dynamic randomness are independent.)
    pub fn new(config: ScenarioConfig, population: Population) -> Self {
        Self::with_mobility(config, population, None)
    }

    /// Builds the model with a pre-spawned mobility field (required when
    /// the virus has a Bluetooth vector; see [`crate::run_scenario`]).
    ///
    /// # Panics
    ///
    /// Panics if the virus has a Bluetooth vector but `mobility` is
    /// `None` — [`crate::config::ScenarioConfig::validate`] catches this
    /// earlier with a proper error.
    pub fn with_mobility(
        config: ScenarioConfig,
        population: Population,
        mobility: Option<MobilityField>,
    ) -> Self {
        Self::build(config, population, mobility, None)
    }

    /// Like [`EpidemicModel::with_mobility`], but drawing the gateway and
    /// inbox state arrays from `pool` (recycled allocations). The built
    /// model is bit-identical to the fresh one; return the buffers with
    /// [`EpidemicModel::recycle_buffers`] when the replication ends.
    pub fn with_mobility_pooled(
        config: ScenarioConfig,
        population: Population,
        mobility: Option<MobilityField>,
        pool: &mut BufferPool,
    ) -> Self {
        Self::build(config, population, mobility, Some(pool))
    }

    fn build(
        config: ScenarioConfig,
        population: Population,
        mobility: Option<MobilityField>,
        pool: Option<&mut BufferPool>,
    ) -> Self {
        assert!(
            config.virus.bluetooth.is_none() || mobility.is_some(),
            "Bluetooth vector requires a mobility field"
        );
        let monitor_window =
            config.response.monitoring.map(|m| m.window).unwrap_or(SimDuration::from_hours(24));
        // The monitoring mechanism only ever asks `count > threshold`, so
        // threshold + 1 ring slots per phone decide it exactly; without
        // monitoring nobody reads the window and no slab is needed.
        let ring_capacity = match config.response.monitoring {
            Some(mn) => mn.threshold.saturating_add(1),
            None => 0,
        };
        let n = population.len();
        let (gateway, inboxes) = match pool {
            Some(pool) => (
                Gateway::with_capacity_pooled(n, monitor_window, ring_capacity, pool),
                Inboxes::with_cap_pooled(n, config.inbox_cap, pool),
            ),
            None => (
                Gateway::with_capacity(n, monitor_window, ring_capacity),
                Inboxes::with_cap(n, config.inbox_cap),
            ),
        };
        let address_space = match config.virus.targeting {
            TargetingStrategy::RandomDialing { valid_fraction } => Some(AddressSpace::new(
                u32::try_from(population.len()).expect("population fits u32"),
                valid_fraction,
            )),
            TargetingStrategy::ContactList => None,
        };
        let education_scale = config.response.education.map(|e| e.acceptance_scale).unwrap_or(1.0);
        let acceptance = config.behavior.acceptance.scaled(education_scale);
        let senders = vec![SenderState::new(); population.len()];
        let series = TimeSeries::new(config.sample_step.as_hours_f64());
        let traffic_series = TimeSeries::new(config.sample_step.as_hours_f64());
        let transit = config.gateway_capacity_per_hour.map(TransitQueue::per_hour);
        EpidemicModel {
            config,
            population,
            gateway,
            address_space,
            acceptance,
            senders,
            activation: ActivationTimes::default(),
            series,
            traffic_series,
            stats: RunStats::default(),
            mobility,
            inboxes,
            transit,
            patch_waves: Vec::new(),
            recipient_buf: Vec::new(),
            bt_offers: Vec::new(),
            probe: None,
        }
    }

    /// Returns the model's pooled state arrays (population, gateway,
    /// inboxes) to `pool` for the next replication.
    pub fn recycle_buffers(self, pool: &mut BufferPool) {
        self.population.recycle(pool);
        self.gateway.recycle(pool);
        self.inboxes.recycle(pool);
    }

    /// Resident bytes of the population-proportional model state: the
    /// packed phone-state arrays, the shared CSR topology, the inbox
    /// pending array and the gateway rings. Event-heap memory is
    /// reported separately (see
    /// [`mpvsim_des::SimMetrics::peak_event_bytes`]).
    pub fn resident_state_bytes(&self) -> usize {
        self.population.resident_bytes()
            + self.inboxes.resident_bytes()
            + self.gateway.resident_bytes()
    }

    /// Attaches a probe (replacing any existing one). Probes observe the
    /// run through read-only hooks — see the determinism contract in
    /// [`crate::probe`].
    pub fn set_probe(&mut self, probe: Box<dyn SimProbe>) {
        self.probe = Some(probe);
    }

    /// Detaches the probe, typically after a run to extract its output
    /// via [`SimProbe::into_output`].
    pub fn take_probe(&mut self) -> Option<Box<dyn SimProbe>> {
        self.probe.take()
    }

    /// The gateway transit queue, when finite capacity is configured.
    pub fn transit_queue(&self) -> Option<&TransitQueue> {
        self.transit.as_ref()
    }

    /// Inbox bookkeeping: delivered-but-unread messages per phone.
    pub fn inboxes(&self) -> &Inboxes {
        &self.inboxes
    }

    /// Current number of infected phones.
    pub fn infected_count(&self) -> usize {
        self.population.infected_count()
    }

    /// The sampled infection-count series so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Cumulative virus-message count on the sampling grid: the
    /// provider-side traffic load the virus adds to the MMS network.
    pub fn traffic_series(&self) -> &TimeSeries {
        &self.traffic_series
    }

    /// Message-flow counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Response-mechanism activation instants (resolved at run time).
    pub fn activation(&self) -> &ActivationTimes {
        &self.activation
    }

    /// The population (for post-run inspection).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The scenario this model runs.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Infection & sending machinery
    // ------------------------------------------------------------------

    /// Handles a (possibly) new infection of `phone` at `ctx.now()`.
    fn on_infection(
        &mut self,
        phone: PhoneId,
        cause: InfectionCause,
        ctx: &mut Context<'_, Event>,
    ) {
        if !self.population.infect(phone) {
            return; // not susceptible (immunized / already infected / resistant)
        }
        let now = ctx.now();
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_infection(now, phone, cause);
        }
        let sender = &mut self.senders[phone.index()];
        *sender = SenderState::new();
        sender.day_epoch_start = now;

        if !self.config.virus.mms_vector {
            return; // pure Bluetooth worm: no MMS machinery to start
        }
        if self.config.virus.piggyback {
            // Piggyback viruses have no schedule of their own: they ride
            // the phone's legitimate traffic (after the dormancy).
            let s = &mut self.senders[phone.index()];
            s.next_allowed = now + self.config.virus.dormancy;
            if self.config.virus.quota.per_reboot.is_some() {
                let reboot_in = self.config.virus.quota.reboot_interval.sample(ctx.rng());
                ctx.schedule_in(reboot_in, Event::Reboot(phone));
            }
            return;
        }

        // First propagation attempt: after dormancy + one inter-message
        // gap — or, for global-day-burst viruses (Virus 2), at the next
        // global 24-hour boundary (the seed, infected exactly at t = 0,
        // bursts immediately).
        let gap = self.config.virus.send_gap.sample(ctx.rng());
        if self.config.virus.global_day_bursts {
            let elapsed = now.as_secs() % DAY.as_secs();
            let wait = if elapsed == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_secs(DAY.as_secs() - elapsed)
            };
            ctx.schedule_in(wait + gap, Event::SendAttempt(phone));
        } else {
            ctx.schedule_in(self.config.virus.dormancy + gap, Event::SendAttempt(phone));
        }
        self.senders[phone.index()].send_scheduled = true;

        // Start the reboot cycle if the virus limits sends per reboot.
        if self.config.virus.quota.per_reboot.is_some() {
            let reboot_in = self.config.virus.quota.reboot_interval.sample(ctx.rng());
            ctx.schedule_in(reboot_in, Event::Reboot(phone));
        }
    }

    fn on_send_attempt(&mut self, phone: PhoneId, ctx: &mut Context<'_, Event>) {
        self.senders[phone.index()].send_scheduled = false;
        match self.try_send(phone, ctx) {
            SendOutcome::CannotPropagate | SendOutcome::NoTargets => {}
            SendOutcome::DailyQuota(resume) => {
                let sender = &mut self.senders[phone.index()];
                sender.send_scheduled = true;
                ctx.schedule_at(resume, Event::SendAttempt(phone));
            }
            SendOutcome::RebootQuota => {
                self.senders[phone.index()].awaiting_reboot = true;
            }
            SendOutcome::Sent => {
                // Schedule the next attempt (unless the blacklist just
                // cut the phone off).
                if self.population.phone(phone).can_propagate() {
                    let mut gap = self.config.virus.send_gap.sample(ctx.rng());
                    if let Some(mn) = self.config.response.monitoring {
                        if self.population.phone(phone).is_throttled() {
                            gap = gap.max(mn.forced_wait);
                            if let Some(p) = self.probe.as_deref_mut() {
                                p.on_throttle_wait(ctx.now(), phone, mn.forced_wait);
                            }
                        }
                    }
                    let sender = &mut self.senders[phone.index()];
                    sender.send_scheduled = true;
                    ctx.schedule_in(gap, Event::SendAttempt(phone));
                }
            }
        }
    }

    /// Attempts to emit one infected message from `phone` right now:
    /// quota accounting, target selection, and the gateway pipeline.
    /// Scheduling the *next* attempt is the caller's business.
    fn try_send(&mut self, phone: PhoneId, ctx: &mut Context<'_, Event>) -> SendOutcome {
        if !self.population.phone(phone).can_propagate() {
            return SendOutcome::CannotPropagate; // silenced / blacklisted / spurious
        }
        let now = ctx.now();

        // Roll the phone's quota day forward. Global-burst viruses align
        // quota periods to global 24-hour boundaries; the others to the
        // phone's own infection instant.
        {
            let sender = &mut self.senders[phone.index()];
            if self.config.virus.global_day_bursts {
                let boundary = SimTime::from_secs(now.as_secs() - now.as_secs() % DAY.as_secs());
                if boundary > sender.day_epoch_start {
                    sender.day_epoch_start = boundary;
                    sender.sent_in_day = 0;
                }
            } else {
                while now >= sender.day_epoch_start + DAY {
                    sender.day_epoch_start += DAY;
                    sender.sent_in_day = 0;
                }
            }
        }

        // Per-day quota: resume exactly at the next day boundary (this is
        // what makes Virus 2's curve step-like).
        if let Some(limit) = self.config.virus.quota.per_day {
            let sender = &self.senders[phone.index()];
            if sender.sent_in_day >= limit {
                return SendOutcome::DailyQuota(sender.day_epoch_start + DAY);
            }
        }

        // Per-reboot quota: sending resumes when the phone next reboots.
        if let Some(limit) = self.config.virus.quota.per_reboot {
            if self.senders[phone.index()].sent_since_reboot >= limit {
                return SendOutcome::RebootQuota;
            }
        }

        // Pick targets into the reusable recipient buffer (no per-send
        // allocation). An invalid random dial produces no message (the
        // number is unassigned) but still counts as a send attempt
        // everywhere the provider can see it.
        let have_message = match self.config.virus.targeting {
            TargetingStrategy::ContactList => {
                let contacts = self.population.contacts(phone);
                if contacts.is_empty() {
                    return SendOutcome::NoTargets; // isolated phone
                }
                let len = contacts.len();
                let k = (self.config.virus.recipients_per_message as usize).min(len);
                let sender = &mut self.senders[phone.index()];
                let start = sender.cursor % len;
                sender.cursor = (start + k) % len;
                self.recipient_buf.clear();
                self.recipient_buf.extend((0..k).map(|i| PhoneId(contacts[(start + i) % len])));
                true
            }
            TargetingStrategy::RandomDialing { .. } => {
                let space = self.address_space.expect("address space built for random dialing");
                match space.dial_random(ctx.rng()) {
                    Some(target) => {
                        self.recipient_buf.clear();
                        self.recipient_buf.push(target);
                        true
                    }
                    None => {
                        self.stats.invalid_dials += 1;
                        false
                    }
                }
            }
        };

        // The message leaves the phone: it counts against quotas and is
        // visible to the provider whether or not the dialed number exists.
        {
            let sender = &mut self.senders[phone.index()];
            sender.sent_in_day += 1;
            sender.sent_since_reboot += 1;
        }
        self.stats.messages_sent += 1;
        self.senders[phone.index()].next_allowed = now + self.config.virus.send_gap.minimum();
        if let Some(p) = self.probe.as_deref_mut() {
            let fanout = if have_message { self.recipient_buf.len() as u32 } else { 0 };
            p.on_message_sent(now, phone, fanout);
        }

        // Detach the buffer from `self` for the duration of the gateway
        // call (which needs `&mut self`), then put it back for reuse.
        let recipients = std::mem::take(&mut self.recipient_buf);
        let _delivered =
            self.gateway_process(phone, have_message.then_some(recipients.as_slice()), ctx);
        self.recipient_buf = recipients;
        SendOutcome::Sent
    }

    /// Piggyback hook: an infected phone just sent or received a
    /// legitimate MMS; a piggybacking virus rides it if the minimum
    /// inter-message gap has elapsed.
    fn maybe_piggyback(&mut self, phone: PhoneId, ctx: &mut Context<'_, Event>) {
        if !self.config.virus.piggyback {
            return;
        }
        if !self.population.phone(phone).is_infected() {
            return;
        }
        if ctx.now() < self.senders[phone.index()].next_allowed {
            return;
        }
        if self.try_send(phone, ctx) == SendOutcome::Sent {
            self.stats.piggyback_sends += 1;
        }
    }

    /// One legitimate MMS leaves `phone`: it is visible to the
    /// monitoring counters (which watch *all* outgoing traffic), gives a
    /// piggybacking virus a ride, and lands at a random contact (whose
    /// own piggybacking virus may send an infected reply).
    fn on_legitimate_send(&mut self, phone: PhoneId, ctx: &mut Context<'_, Event>) {
        let now = ctx.now();
        self.stats.legitimate_messages += 1;
        self.note_outgoing_for_monitoring(phone, now);
        if let Some(q) = self.transit.as_mut() {
            q.enqueue(now); // legitimate copies share the same gateway
        }

        let contacts = self.population.contacts(phone);
        let recipient = if contacts.is_empty() {
            None
        } else {
            Some(PhoneId(contacts[ctx.rng().random_range(0..contacts.len())]))
        };

        self.maybe_piggyback(phone, ctx);
        if let Some(r) = recipient {
            self.maybe_piggyback(r, ctx);
        }

        // Next legitimate message; a throttled phone's traffic is spaced
        // by the forced wait like everything else it sends.
        let spec = self.config.behavior.legitimate_mms.expect("scheduled only when configured");
        let mut gap = spec.sample(ctx.rng());
        if let Some(mn) = self.config.response.monitoring {
            if self.population.phone(phone).is_throttled() {
                gap = gap.max(mn.forced_wait);
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_throttle_wait(ctx.now(), phone, mn.forced_wait);
                }
            }
        }
        ctx.schedule_in(gap, Event::LegitimateSend(phone));
    }

    /// Counts one outgoing message (virus or legitimate) toward the
    /// monitoring window and flags the phone if it overflows.
    fn note_outgoing_for_monitoring(&mut self, phone: PhoneId, now: SimTime) {
        let in_window = self.gateway.record_outgoing(phone, now);
        if let Some(mn) = self.config.response.monitoring {
            if in_window > mn.threshold as usize && !self.population.phone(phone).is_throttled() {
                self.population.phone_mut(phone).throttle();
                self.stats.throttled_phones += 1;
                let false_positive = !self.population.phone(phone).is_infected();
                if false_positive {
                    self.stats.false_positive_throttles += 1;
                }
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_throttled(now, phone, false_positive);
                }
            }
        }
    }

    /// Runs the provider-side pipeline for one outgoing infected message,
    /// given its recipient list (`None` = an invalid-dial attempt that the
    /// gateway still observes). Returns whether the message was delivered
    /// to its recipients.
    fn gateway_process(
        &mut self,
        sender: PhoneId,
        recipients: Option<&[PhoneId]>,
        ctx: &mut Context<'_, Event>,
    ) -> bool {
        let now = ctx.now();

        // Monitoring: count every outgoing message (a multi-recipient MMS
        // counts once); flag the phone when the window overflows.
        self.note_outgoing_for_monitoring(sender, now);

        // Blacklisting: cumulative suspected-infected count. Invalid
        // dials (empty recipient list) still count — the gateway saw the
        // attempt.
        let suspected = self.gateway.record_suspected(sender);
        if let Some(b) = self.config.response.blacklist {
            if suspected > b.threshold {
                if !self.population.phone(sender).is_blacklisted() {
                    self.population.phone_mut(sender).blacklist();
                    self.stats.blacklisted_phones += 1;
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.on_blacklisted(now, sender);
                    }
                }
                self.stats.blocked_by_blacklist += 1;
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_message_blocked(now, sender, BlockCause::Blacklist);
                }
                return false;
            }
        }

        // Detectability clock.
        self.record_virus_sighting(now, ctx);

        // Signature scan: once live, every infected message is recognized.
        if let Some(at) = self.activation.scan_active_at {
            if now >= at {
                self.stats.blocked_by_scan += 1;
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_message_blocked(now, sender, BlockCause::Scan);
                }
                return false;
            }
        }

        // Detection algorithm: probabilistic per message (the whole
        // fan-out is one message — either recognized or not).
        if let Some(d) = self.config.response.detection {
            if let Some(at) = self.activation.detection_active_at {
                if now >= at && bernoulli(ctx.rng(), d.accuracy) {
                    self.stats.blocked_by_detection += 1;
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.on_message_blocked(now, sender, BlockCause::Detection);
                    }
                    return false;
                }
            }
        }

        // Delivery: each recipient's user reads the message after their
        // own read delay.
        let Some(recipients) = recipients else {
            return false; // unassigned number: nothing to deliver
        };
        for &r in recipients {
            // Bounded admission: a full inbox tail-drops the copy before
            // any delivery bookkeeping, scheduling, or RNG draw happens,
            // so capped and uncapped runs agree on everything up to the
            // first drop — and runs without a cap are bit-identical.
            if self.inboxes.try_deliver(r).is_none() {
                self.stats.inbox_dropped += 1;
                continue;
            }
            self.stats.deliveries += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                p.on_message_delivered(now, sender, r);
            }
            // Finite gateway capacity: each recipient copy waits for a
            // transit slot before the read clock starts.
            let transit_ready = match self.transit.as_mut() {
                Some(q) => q.enqueue(now),
                None => now,
            };
            let read_in = self.config.behavior.read_delay.sample(ctx.rng());
            ctx.schedule_at(transit_ready + read_in, Event::ReadMessage(r));
        }
        true
    }

    /// One more virus sighting reached the provider — an infected MMS in
    /// gateway transit, or a user-reported Bluetooth transfer prompt.
    /// Starts the detectability-clocked mechanisms once the configured
    /// threshold is crossed.
    fn record_virus_sighting(&mut self, now: SimTime, ctx: &mut Context<'_, Event>) {
        let observed = self.gateway.record_infected_observed(1);
        if self.activation.detected_at.is_none() && observed >= self.config.detect_threshold {
            self.on_detected(now, ctx);
        }
    }

    /// The provider has now seen enough infected traffic: start every
    /// detectability-clocked mechanism's timer.
    fn on_detected(&mut self, now: SimTime, ctx: &mut Context<'_, Event>) {
        self.activation.detected_at = Some(now);
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_milestone(now, Milestone::Detected);
        }
        if let Some(s) = self.config.response.signature_scan {
            ctx.schedule_in(s.activation_delay, Event::ScanActive);
        }
        if let Some(d) = self.config.response.detection {
            ctx.schedule_in(d.analysis_period, Event::DetectionActive);
        }
        if let Some(imm) = self.config.response.immunization {
            ctx.schedule_in(imm.development_time, Event::RolloutStart);
        }
    }

    fn on_read_message(&mut self, phone: PhoneId, ctx: &mut Context<'_, Event>) {
        self.stats.reads += 1;
        self.inboxes.read(phone);
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_message_read(ctx.now(), phone);
        }
        let n = self.population.phone_mut(phone).record_infected_message();
        let p = self.acceptance.prob_accept(n);
        if bernoulli(ctx.rng(), p) {
            self.stats.acceptances += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                p.on_message_accepted(ctx.now(), phone);
            }
            self.on_infection(phone, InfectionCause::Mms, ctx);
        }
    }

    fn on_reboot(&mut self, phone: PhoneId, ctx: &mut Context<'_, Event>) {
        if !self.population.phone(phone).can_propagate() {
            return; // the reboot cycle dies with the propagation
        }
        let sender = &mut self.senders[phone.index()];
        sender.sent_since_reboot = 0;
        if sender.awaiting_reboot && !sender.send_scheduled {
            sender.awaiting_reboot = false;
            sender.send_scheduled = true;
            ctx.schedule_in(SimDuration::ZERO, Event::SendAttempt(phone));
        } else {
            sender.awaiting_reboot = false;
        }
        let next = self.config.virus.quota.reboot_interval.sample(ctx.rng());
        ctx.schedule_in(next, Event::Reboot(phone));
    }

    fn on_rollout_start(&mut self, ctx: &mut Context<'_, Event>) {
        let imm = self.config.response.immunization.expect("rollout without immunization");
        self.activation.rollout_starts_at = Some(ctx.now());
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_milestone(ctx.now(), Milestone::RolloutStart);
        }
        let rollout_secs = imm.rollout_duration.as_secs();
        let n = self.population.len();

        // Build the per-phone arrival offsets exactly as the uncoalesced
        // schedule did (same RNG draws, same emission order), …
        let mut arrivals: Vec<(u64, u32)> = Vec::with_capacity(n);
        match imm.order {
            crate::response::RolloutOrder::Uniform => {
                for id in 0..n {
                    let offset = if rollout_secs == 0 {
                        0
                    } else {
                        ctx.rng().random_range(0..=rollout_secs)
                    };
                    arrivals.push((offset, id as u32));
                }
            }
            crate::response::RolloutOrder::HubsFirst => {
                // Patch in decreasing contact-list size, evenly spaced
                // over the window: the super-spreaders are protected (or
                // silenced) first.
                let mut by_degree: Vec<usize> = (0..n).collect();
                by_degree
                    .sort_by_key(|&i| std::cmp::Reverse(self.population.degree(PhoneId::from(i))));
                for (rank, id) in by_degree.into_iter().enumerate() {
                    let offset = if n <= 1 || rollout_secs == 0 {
                        0
                    } else {
                        rollout_secs * rank as u64 / (n as u64 - 1)
                    };
                    arrivals.push((offset, id as u32));
                }
            }
        }

        // … then coalesce phones sharing an arrival instant into one
        // wave event each, so the FEL holds one entry per distinct
        // instant instead of one per phone. Waves fire in `(time, seq)`
        // order and apply their phones in emission order, which is
        // exactly the order the per-phone burst would have fired in —
        // `apply_patch` draws no RNG and schedules nothing, so the
        // trajectory is unchanged.
        self.patch_waves.clear();
        let mut wave_for: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (offset, id) in arrivals {
            match wave_for.entry(offset) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.patch_waves[*e.get() as usize].push(id);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let idx = u32::try_from(self.patch_waves.len()).expect("wave count fits u32");
                    e.insert(idx);
                    self.patch_waves.push(vec![id]);
                    ctx.schedule_in(SimDuration::from_secs(offset), Event::PatchWave(idx));
                }
            }
        }
    }

    fn on_patch_wave(&mut self, wave: u32, ctx: &mut Context<'_, Event>) {
        let phones = std::mem::take(&mut self.patch_waves[wave as usize]);
        let now = ctx.now();
        for id in phones {
            let p = PhoneId(id);
            let was_infected = self.population.phone(p).is_infected();
            self.population.phone_mut(p).apply_patch();
            if let Some(probe) = self.probe.as_deref_mut() {
                probe.on_patch_applied(now, p, was_infected);
            }
        }
    }

    fn on_sample(&mut self, ctx: &mut Context<'_, Event>) {
        self.series.push(self.population.infected_count() as f64);
        self.traffic_series.push(self.stats.messages_sent as f64);
        let next = ctx.now() + self.config.sample_step;
        if next <= SimTime::ZERO + self.config.horizon {
            ctx.schedule_at(next, Event::Sample);
        }
    }

    fn on_seed(&mut self, ctx: &mut Context<'_, Event>) {
        for _ in 0..self.config.initial_infections {
            if let Some(seed) = self.population.random_susceptible(ctx.rng()) {
                self.on_infection(seed, InfectionCause::Seed, ctx);
            }
        }
        if self.mobility.is_some() && self.config.virus.bluetooth.is_some() {
            let tick = self.config.mobility.expect("validated with mobility").tick;
            ctx.schedule_in(tick, Event::MobilityTick);
        }
        if let Some(spec) = self.config.behavior.legitimate_mms {
            for id in 0..self.population.len() {
                let first = spec.sample(ctx.rng());
                ctx.schedule_in(first, Event::LegitimateSend(PhoneId::from(id)));
            }
        }
    }

    /// One mobility tick: everyone moves, then every propagating
    /// infected phone tries Bluetooth transfers to phones in radio
    /// range. Bluetooth bypasses the MMS gateways, so only the
    /// phone-resident defenses apply: a silencing patch stops the
    /// transfers, education lowers acceptance — but blacklisting and
    /// monitoring (MMS-service-level) do not.
    fn on_mobility_tick(&mut self, ctx: &mut Context<'_, Event>) {
        let bt = self.config.virus.bluetooth.expect("tick only scheduled with a BT vector");
        let tick = self.config.mobility.expect("validated with mobility").tick;
        {
            let field = self.mobility.as_mut().expect("tick only scheduled with mobility");
            field.step(tick.as_secs_f64(), ctx.rng());
        }
        // Reuse the per-model offers buffer across ticks; it is detached
        // from `self` while the acceptance loop below needs `&mut self`.
        let mut offers = std::mem::take(&mut self.bt_offers);
        offers.clear();
        let field = self.mobility.as_ref().expect("mobility present");
        for (a, b) in field.contacts_within(bt.radius) {
            let pa = PhoneId::from(a);
            let pb = PhoneId::from(b);
            for (src, dst) in [(pa, pb), (pb, pa)] {
                let sender = self.population.phone(src);
                if sender.is_infected()
                    && !sender.is_silenced()
                    && bernoulli(ctx.rng(), bt.transfer_probability)
                {
                    offers.push((src, dst));
                }
            }
        }
        let now = ctx.now();
        for &(src, dst) in &offers {
            self.stats.bluetooth_offers += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                p.on_bluetooth_offer(now, src, dst);
            }
            // Bluetooth bypasses the gateways, but transfer prompts are
            // user-visible; treat each as a virus sighting reaching the
            // provider (customer reports / AV telemetry), so the
            // detectability clock can start even for a pure BT worm.
            self.record_virus_sighting(now, ctx);
            let n = self.population.phone_mut(dst).record_infected_message();
            if bernoulli(ctx.rng(), self.acceptance.prob_accept(n)) {
                self.stats.bluetooth_acceptances += 1;
                self.on_infection(dst, InfectionCause::Bluetooth { from: src }, ctx);
            }
        }
        self.bt_offers = offers;
        let next = ctx.now() + tick;
        if next <= SimTime::ZERO + self.config.horizon {
            ctx.schedule_at(next, Event::MobilityTick);
        }
    }
}

impl Model for EpidemicModel {
    type Event = Event;

    fn handle(&mut self, event: Event, ctx: &mut Context<'_, Event>) {
        match event {
            Event::Seed => self.on_seed(ctx),
            Event::SendAttempt(p) => self.on_send_attempt(p, ctx),
            Event::Reboot(p) => self.on_reboot(p, ctx),
            Event::ReadMessage(p) => self.on_read_message(p, ctx),
            Event::ScanActive => {
                self.activation.scan_active_at = Some(ctx.now());
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_milestone(ctx.now(), Milestone::ScanActive);
                }
            }
            Event::DetectionActive => {
                self.activation.detection_active_at = Some(ctx.now());
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_milestone(ctx.now(), Milestone::DetectionActive);
                }
            }
            Event::RolloutStart => self.on_rollout_start(ctx),
            Event::PatchWave(w) => self.on_patch_wave(w, ctx),
            Event::Sample => self.on_sample(ctx),
            Event::MobilityTick => self.on_mobility_tick(ctx),
            Event::LegitimateSend(p) => self.on_legitimate_send(p, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopulationConfig;
    use crate::response::{
        Blacklist, DetectionAlgorithm, Immunization, Monitoring, ResponseConfig, SignatureScan,
        UserEducation,
    };
    use crate::virus::{SendQuota, VirusProfile};
    use mpvsim_des::{DelaySpec, Simulation};
    use mpvsim_topology::GraphSpec;

    /// A small, fast scenario: complete graph, everyone vulnerable,
    /// instant reads, aggressive contact-list virus.
    fn tiny_config() -> ScenarioConfig {
        let mut c = ScenarioConfig::baseline(VirusProfile {
            name: "test-virus".to_owned(),
            targeting: TargetingStrategy::ContactList,
            send_gap: DelaySpec::constant(SimDuration::from_mins(1)),
            recipients_per_message: 1,
            quota: SendQuota::unlimited(),
            dormancy: SimDuration::ZERO,
            global_day_bursts: false,
            mms_vector: true,
            bluetooth: None,
            piggyback: false,
        });
        c.population =
            PopulationConfig { topology: GraphSpec::complete(20), vulnerable_fraction: 1.0 };
        c.behavior.read_delay = DelaySpec::constant(SimDuration::from_secs(1));
        c.horizon = SimDuration::from_hours(48);
        c
    }

    fn build(config: &ScenarioConfig, seed: u64) -> Simulation<EpidemicModel> {
        let mut topo_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x70_70);
        let graph = config.population.topology.generate(&mut topo_rng).expect("valid topology");
        let pop =
            Population::from_graph(&graph, config.population.vulnerable_fraction, &mut topo_rng);
        let mobility = config.mobility.map(|mc| {
            mpvsim_mobility::MobilityField::new(mc.arena(), pop.len(), mc.waypoint, &mut topo_rng)
        });
        let model = EpidemicModel::with_mobility(config.clone(), pop, mobility);
        let mut sim = Simulation::new(model, seed);
        sim.schedule(SimTime::ZERO, Event::Seed);
        sim.schedule(SimTime::ZERO, Event::Sample);
        sim
    }

    fn run(config: &ScenarioConfig, seed: u64) -> EpidemicModel {
        let mut sim = build(config, seed);
        sim.run_until(SimTime::ZERO + config.horizon);
        sim.into_model()
    }

    #[test]
    fn baseline_infection_spreads() {
        let m = run(&tiny_config(), 1);
        assert!(m.infected_count() > 1, "virus never spread");
        assert!(m.stats().messages_sent > 0);
        assert!(m.stats().deliveries > 0);
        assert!(m.stats().reads > 0);
    }

    #[test]
    fn sample_series_has_expected_grid() {
        let m = run(&tiny_config(), 2);
        // Horizon 48 h, hourly samples from t = 0 inclusive: 49 points.
        assert_eq!(m.series().len(), 49);
        // Infection counts are non-decreasing (no recovery in the model).
        let vals = m.series().values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]), "infection count decreased");
    }

    #[test]
    fn infection_count_bounded_by_vulnerable_population() {
        let m = run(&tiny_config(), 3);
        assert!(m.infected_count() <= 20);
    }

    #[test]
    fn not_vulnerable_phones_never_infected() {
        let mut c = tiny_config();
        c.population.vulnerable_fraction = 0.5;
        let m = run(&c, 4);
        assert!(m.infected_count() <= 10, "only 10 phones are vulnerable");
    }

    #[test]
    fn determinism_same_seed_same_everything() {
        let c = tiny_config();
        let a = run(&c, 42);
        let b = run(&c, 42);
        assert_eq!(a.series().values(), b.series().values());
        assert_eq!(a.stats(), b.stats());
        let d = run(&c, 43);
        // Different seed: overwhelmingly likely to differ somewhere.
        assert!(
            a.series().values() != d.series().values() || a.stats() != d.stats(),
            "different seeds produced identical runs"
        );
    }

    #[test]
    fn signature_scan_halts_new_deliveries_after_activation() {
        let mut c = tiny_config();
        c.detect_threshold = 1;
        c.response = ResponseConfig::none()
            .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_mins(5) });
        let m = run(&c, 5);
        assert!(m.activation().detected_at.is_some(), "virus never detected");
        assert!(m.activation().scan_active_at.is_some(), "scan never activated");
        assert!(m.stats().blocked_by_scan > 0, "scan blocked nothing");
        // Against the no-response baseline the spread must be reduced.
        let baseline = run(&tiny_config(), 5);
        assert!(
            m.infected_count() < baseline.infected_count(),
            "scan {} !< baseline {}",
            m.infected_count(),
            baseline.infected_count()
        );
    }

    #[test]
    fn perfect_detection_blocks_everything_after_training() {
        let mut c = tiny_config();
        c.detect_threshold = 1;
        c.response = ResponseConfig::none().with_detection(DetectionAlgorithm {
            accuracy: 1.0,
            analysis_period: SimDuration::from_mins(10),
        });
        let m = run(&c, 6);
        assert!(m.stats().blocked_by_detection > 0);
        assert!(m.activation().detection_active_at.is_some());
    }

    #[test]
    fn zero_accuracy_detection_blocks_nothing() {
        let mut c = tiny_config();
        c.detect_threshold = 1;
        c.response = ResponseConfig::none().with_detection(DetectionAlgorithm {
            accuracy: 0.0,
            analysis_period: SimDuration::from_mins(10),
        });
        let m = run(&c, 7);
        assert_eq!(m.stats().blocked_by_detection, 0);
    }

    #[test]
    fn education_zero_scale_stops_everything_beyond_seed() {
        let mut c = tiny_config();
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        let m = run(&c, 8);
        assert_eq!(m.infected_count(), 1, "only the seed should be infected");
        assert_eq!(m.stats().acceptances, 0);
    }

    #[test]
    fn immunization_immunizes_and_silences() {
        let mut c = tiny_config();
        c.detect_threshold = 1;
        c.response = ResponseConfig::none().with_immunization(Immunization::uniform(
            SimDuration::from_mins(30),
            SimDuration::from_mins(10),
        ));
        let m = run(&c, 9);
        assert!(m.activation().rollout_starts_at.is_some(), "rollout never started");
        // After the rollout every non-infected phone is immunized.
        let immunized = m.population().immunized_count();
        assert_eq!(immunized + m.infected_count(), 20, "all phones patched or infected");
        // Infected phones are silenced.
        for p in m.population().iter().filter(|p| p.is_infected()) {
            assert!(p.is_silenced());
        }
        // And the epidemic stopped short of the baseline.
        let baseline = run(&tiny_config(), 9);
        assert!(m.infected_count() <= baseline.infected_count());
    }

    #[test]
    fn blacklist_caps_messages_per_phone() {
        let mut c = tiny_config();
        c.response = ResponseConfig::none().with_blacklist(Blacklist { threshold: 3 });
        let m = run(&c, 10);
        assert!(m.stats().blacklisted_phones > 0, "nobody blacklisted");
        assert!(m.stats().blocked_by_blacklist > 0);
        // No phone can have delivered more than `threshold` messages, so
        // deliveries are bounded by threshold × phones.
        assert!(m.stats().messages_sent <= (3 + 1) * 20 + 20);
    }

    #[test]
    fn monitoring_throttles_fast_senders() {
        let mut c = tiny_config();
        // The test virus sends every minute = 60/h; a 1 h window with
        // threshold 5 flags it quickly.
        c.response = ResponseConfig::none().with_monitoring(Monitoring {
            window: SimDuration::from_hours(1),
            threshold: 5,
            forced_wait: SimDuration::from_hours(2),
        });
        let m = run(&c, 11);
        assert!(m.stats().throttled_phones > 0, "nobody throttled");
        // With a 2 h forced wait, a throttled phone sends ≤ ~25 messages
        // over the 48 h horizon instead of ~2880.
        let baseline = run(&tiny_config(), 11);
        assert!(
            m.stats().messages_sent < baseline.stats().messages_sent / 4,
            "throttling barely reduced volume: {} vs {}",
            m.stats().messages_sent,
            baseline.stats().messages_sent
        );
    }

    #[test]
    fn per_day_quota_caps_daily_sends() {
        let mut c = tiny_config();
        c.virus.quota = SendQuota::per_day(5);
        c.horizon = SimDuration::from_hours(23); // stay inside every phone's first quota day
        let m = run(&c, 12);
        // Seed phone plus any infected phones each send ≤ 5 in 24 h.
        let phones_that_sent = m.infected_count() as u64;
        assert!(
            m.stats().messages_sent <= phones_that_sent * 5,
            "{} messages from {} phones exceeds the quota",
            m.stats().messages_sent,
            phones_that_sent
        );
    }

    #[test]
    fn per_reboot_quota_blocks_until_reboot() {
        let mut c = tiny_config();
        // 2 messages per reboot, reboot exactly every 6 h.
        c.virus.quota = SendQuota {
            per_day: None,
            per_reboot: Some(2),
            reboot_interval: DelaySpec::constant(SimDuration::from_hours(6)),
        };
        c.horizon = SimDuration::from_hours(24);
        // Keep it to one sender so the arithmetic is exact: nothing else
        // gets infected.
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        let m = run(&c, 13);
        // Reboots at 6/12/18/24 h: epochs [0,6),[6,12),[12,18),[18,24),{24}.
        // 2 messages per epoch → at most 10 by the horizon.
        assert!(
            (4..=10).contains(&m.stats().messages_sent),
            "unexpected send count {}",
            m.stats().messages_sent
        );
    }

    #[test]
    fn random_dialing_registers_invalid_attempts() {
        let mut c = tiny_config();
        c.virus.targeting = TargetingStrategy::RandomDialing { valid_fraction: 0.5 };
        c.horizon = SimDuration::from_hours(12);
        let m = run(&c, 14);
        assert!(m.stats().invalid_dials > 0, "with 50% validity some dials must fail");
        assert!(m.stats().deliveries > 0, "and some must connect");
        assert!(
            m.stats().messages_sent >= m.stats().invalid_dials + m.stats().deliveries,
            "every delivery and invalid dial is a sent message"
        );
    }

    #[test]
    fn zero_valid_fraction_never_delivers_but_still_counts() {
        let mut c = tiny_config();
        c.virus.targeting = TargetingStrategy::RandomDialing { valid_fraction: 0.0 };
        c.horizon = SimDuration::from_hours(6);
        let m = run(&c, 15);
        assert_eq!(m.stats().deliveries, 0);
        assert!(m.stats().invalid_dials > 0);
        assert_eq!(m.infected_count(), 1, "only the seed");
    }

    #[test]
    fn dormancy_delays_first_send() {
        let mut c = tiny_config();
        c.virus.dormancy = SimDuration::from_hours(10);
        c.horizon = SimDuration::from_hours(9);
        let m = run(&c, 16);
        assert_eq!(m.stats().messages_sent, 0, "dormant virus sent before waking");
        c.horizon = SimDuration::from_hours(14);
        let m = run(&c, 16);
        assert!(m.stats().messages_sent > 0, "virus should wake after dormancy");
    }

    #[test]
    fn blacklisted_seed_stops_completely() {
        let mut c = tiny_config();
        c.response = ResponseConfig::none()
            .with_blacklist(Blacklist { threshold: 1 })
            .with_education(UserEducation { acceptance_scale: 0.0 });
        let m = run(&c, 17);
        // Threshold 1: first message delivered, second drops and
        // blacklists; nothing after.
        assert_eq!(m.stats().messages_sent, 2);
        assert_eq!(m.stats().blocked_by_blacklist, 1);
        assert_eq!(m.stats().blacklisted_phones, 1);
    }

    #[test]
    fn detectability_threshold_delays_mechanism_clock() {
        let mut c = tiny_config();
        c.detect_threshold = 100_000; // far beyond one phone's 48 h output
        c.response = ResponseConfig::none()
            .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_mins(1) })
            .with_education(UserEducation { acceptance_scale: 0.0 });
        let m = run(&c, 18);
        assert!(m.activation().detected_at.is_none());
        assert_eq!(m.stats().blocked_by_scan, 0);
    }

    #[test]
    fn multi_recipient_message_counts_once_but_delivers_many() {
        let mut c = tiny_config();
        c.virus.recipients_per_message = 100; // clamped to the 19 contacts
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        c.horizon = SimDuration::from_hours(1);
        let m = run(&c, 19);
        assert!(m.stats().messages_sent > 0);
        assert_eq!(
            m.stats().deliveries,
            m.stats().messages_sent * 19,
            "each message fans out to the whole contact list"
        );
    }

    #[test]
    fn contact_cursor_cycles_through_whole_list() {
        // 1 recipient per message over a 20-node complete graph: after 19
        // sends every other phone has received exactly one offer.
        let mut c = tiny_config();
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        // Sends fire at minutes 1..=19; reads one second later. Stop
        // after the last read but before the 20th send.
        c.horizon = SimDuration::from_secs(19 * 60 + 30);
        let m = run(&c, 20);
        assert_eq!(m.stats().messages_sent, 19);
        let offered: Vec<u32> = m
            .population()
            .iter()
            .filter(|p| !p.is_infected())
            .map(|p| p.infected_msgs_received())
            .collect();
        assert!(
            offered.iter().all(|&n| n == 1),
            "cyclic targeting must offer each contact exactly once: {offered:?}"
        );
    }

    #[test]
    fn inbox_balances_deliveries_and_reads() {
        let mut c = tiny_config();
        // Slow reads: most deliveries are still unread at the horizon.
        c.behavior.read_delay = DelaySpec::constant(SimDuration::from_hours(6));
        c.horizon = SimDuration::from_hours(3);
        let m = run(&c, 40);
        let ib = m.inboxes();
        assert_eq!(ib.total_delivered(), m.stats().deliveries);
        assert_eq!(ib.total_read(), m.stats().reads);
        assert_eq!(ib.total_pending(), ib.total_delivered() - ib.total_read());
        assert!(ib.total_pending() > 0, "6 h reads over a 3 h horizon must leave a backlog");
    }

    #[test]
    fn inbox_drains_when_reads_are_fast() {
        let mut c = tiny_config();
        c.horizon = SimDuration::from_hours(2);
        let m = run(&c, 41);
        let ib = m.inboxes();
        // 1 s reads: at most the last second's deliveries are unread.
        assert!(
            ib.total_pending() <= 2,
            "fast reads should leave ≤ 2 pending, got {}",
            ib.total_pending()
        );
        assert!(ib.peak_pending() >= 1);
    }

    #[test]
    fn hubs_first_rollout_patches_high_degree_phones_first() {
        // A star-ish topology: phone 0 is the hub.
        let mut c = tiny_config();
        c.population = PopulationConfig {
            topology: GraphSpec::power_law_with_exponent(40, 6.0, 2.0),
            vulnerable_fraction: 1.0,
        };
        c.detect_threshold = 1;
        c.response = ResponseConfig::none().with_immunization(Immunization::hubs_first(
            SimDuration::from_mins(10),
            SimDuration::from_hours(8),
        ));
        // Freeze the epidemic so only patch order matters.
        c.response.education = Some(UserEducation { acceptance_scale: 0.0 });
        c.horizon = SimDuration::from_hours(5); // rollout still in progress
        let m = run(&c, 60);
        // Among non-infected phones, every immunized phone must have
        // degree ≥ every still-susceptible phone (hubs went first).
        let immunized_min = m
            .population()
            .iter()
            .filter(|p| p.health() == mpvsim_phonenet::Health::Immunized)
            .map(|p| m.population().degree(p.id()))
            .min();
        let susceptible_max = m
            .population()
            .iter()
            .filter(|p| p.is_susceptible())
            .map(|p| m.population().degree(p.id()))
            .max();
        if let (Some(lo), Some(hi)) = (immunized_min, susceptible_max) {
            assert!(
                lo >= hi,
                "hubs-first violated: immunized min degree {lo} < susceptible max degree {hi}"
            );
        }
    }

    #[test]
    fn hubs_first_contains_at_least_as_well_as_uniform() {
        let mk = |order_hubs: bool| {
            let mut c = tiny_config();
            c.population = PopulationConfig {
                topology: GraphSpec::power_law_with_exponent(60, 8.0, 2.0),
                vulnerable_fraction: 1.0,
            };
            c.detect_threshold = 3;
            let imm = if order_hubs {
                Immunization::hubs_first(SimDuration::from_mins(30), SimDuration::from_hours(12))
            } else {
                Immunization::uniform(SimDuration::from_mins(30), SimDuration::from_hours(12))
            };
            c.response = ResponseConfig::none().with_immunization(imm);
            c.horizon = SimDuration::from_hours(24);
            c
        };
        // Averaged over a few seeds to suppress noise.
        let mean = |hubs: bool| -> f64 {
            (0..6).map(|s| run(&mk(hubs), 70 + s).infected_count() as f64).sum::<f64>() / 6.0
        };
        let uniform = mean(false);
        let hubs = mean(true);
        assert!(
            hubs <= uniform + 1.0,
            "hubs-first ({hubs:.1}) should not lose to uniform ({uniform:.1}) on a power-law graph"
        );
    }

    // ------------------------------------------------------------------
    // Gateway congestion (extension)
    // ------------------------------------------------------------------

    #[test]
    fn finite_gateway_capacity_delays_and_slows_the_virus() {
        let mut c = tiny_config();
        c.horizon = SimDuration::from_hours(6);
        let unthrottled = run(&c, 80);

        let mut congested = c.clone();
        congested.gateway_capacity_per_hour = Some(30); // 2 min per message
        let m = run(&congested, 80);
        let q = m.transit_queue().expect("queue configured");
        assert!(q.served() > 0);
        assert!(
            q.peak_delay() > SimDuration::from_mins(2),
            "a 1-msg/min virus against a 30-msg/h gateway must build backlog"
        );
        assert!(
            m.infected_count() <= unthrottled.infected_count(),
            "congestion cannot speed the virus up"
        );
    }

    #[test]
    fn generous_capacity_changes_nothing_much() {
        let mut c = tiny_config();
        c.horizon = SimDuration::from_hours(4);
        c.gateway_capacity_per_hour = Some(3600);
        let m = run(&c, 81);
        let q = m.transit_queue().unwrap();
        assert!(
            q.peak_delay() <= SimDuration::from_secs(30),
            "one virus against a 1 s service time should never queue: {}",
            q.peak_delay()
        );
    }

    #[test]
    fn infinite_capacity_is_the_default() {
        let m = run(&tiny_config(), 82);
        assert!(m.transit_queue().is_none(), "the paper's assumption is the default");
    }

    // ------------------------------------------------------------------
    // Legitimate traffic & piggyback (extensions)
    // ------------------------------------------------------------------

    #[test]
    fn legitimate_traffic_flows_without_infecting() {
        let mut c = tiny_config();
        c.behavior.legitimate_mms = Some(DelaySpec::constant(SimDuration::from_hours(2)));
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        c.horizon = SimDuration::from_hours(10);
        let m = run(&c, 50);
        // 20 phones × ~5 legit messages over 10 h.
        assert!(
            (80..=120).contains(&m.stats().legitimate_messages),
            "unexpected legit volume {}",
            m.stats().legitimate_messages
        );
        assert_eq!(m.infected_count(), 1, "legitimate traffic must not infect");
    }

    #[test]
    fn monitoring_false_positives_only_with_legit_traffic() {
        // Heavy legitimate chatter + a hair-trigger monitor.
        let mut c = tiny_config();
        c.behavior.legitimate_mms = Some(DelaySpec::constant(SimDuration::from_mins(10)));
        c.response = ResponseConfig::none()
            .with_monitoring(Monitoring {
                window: SimDuration::from_hours(1),
                threshold: 3,
                forced_wait: SimDuration::from_mins(30),
            })
            .with_education(UserEducation { acceptance_scale: 0.0 });
        c.horizon = SimDuration::from_hours(6);
        let m = run(&c, 51);
        assert!(
            m.stats().false_positive_throttles > 0,
            "6 legit msgs/h against a threshold of 3 must flag innocents"
        );
        // Every false positive is a throttle of a non-infected phone.
        assert!(m.stats().false_positive_throttles <= m.stats().throttled_phones);

        // Without legitimate traffic the same monitor flags nobody
        // (education pins the outbreak to the seed, which sends 1/min —
        // the seed is a true positive, not a false one).
        let mut quiet = c.clone();
        quiet.behavior.legitimate_mms = None;
        let m = run(&quiet, 51);
        assert_eq!(m.stats().false_positive_throttles, 0);
    }

    #[test]
    fn piggyback_virus_rides_legitimate_traffic() {
        let mut c = tiny_config();
        c.virus.piggyback = true;
        c.virus.send_gap = DelaySpec::constant(SimDuration::from_mins(30));
        c.behavior.legitimate_mms = Some(DelaySpec::constant(SimDuration::from_hours(1)));
        c.horizon = SimDuration::from_hours(24);
        let m = run(&c, 52);
        assert!(m.stats().piggyback_sends > 0, "piggyback virus never rode a message");
        assert_eq!(
            m.stats().messages_sent,
            m.stats().piggyback_sends,
            "a piggyback virus has no schedule of its own"
        );
        assert!(m.infected_count() > 1, "piggyback virus should still spread");
    }

    #[test]
    fn piggyback_virus_without_legit_traffic_is_inert() {
        let mut c = tiny_config();
        c.virus.piggyback = true;
        c.horizon = SimDuration::from_hours(24);
        let m = run(&c, 53);
        assert_eq!(m.stats().messages_sent, 0, "nothing to ride on");
        assert_eq!(m.infected_count(), 1);
    }

    #[test]
    fn piggyback_respects_min_gap() {
        let mut c = tiny_config();
        c.virus.piggyback = true;
        c.virus.send_gap = DelaySpec::constant(SimDuration::from_hours(100)); // one shot
        c.behavior.legitimate_mms = Some(DelaySpec::constant(SimDuration::from_mins(5)));
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        c.horizon = SimDuration::from_hours(12);
        let m = run(&c, 54);
        assert_eq!(
            m.stats().messages_sent,
            1,
            "a 100 h minimum gap allows exactly one piggyback send in 12 h"
        );
    }

    // ------------------------------------------------------------------
    // Bluetooth vector (paper §6 extension)
    // ------------------------------------------------------------------

    use crate::config::MobilityConfig;
    use crate::virus::BluetoothVector;

    /// A dense little plaza where Bluetooth contacts are frequent.
    fn bluetooth_config() -> ScenarioConfig {
        let mut c = ScenarioConfig::baseline(VirusProfile::bluetooth_worm());
        c.population =
            PopulationConfig { topology: GraphSpec::complete(30), vulnerable_fraction: 1.0 };
        c.mobility = Some(MobilityConfig {
            arena_width: 120.0,
            arena_height: 120.0,
            ..MobilityConfig::downtown()
        });
        c.virus.bluetooth = Some(BluetoothVector { radius: 15.0, transfer_probability: 0.5 });
        c.horizon = SimDuration::from_hours(12);
        c
    }

    #[test]
    fn pure_bluetooth_worm_spreads_without_mms() {
        let m = run(&bluetooth_config(), 30);
        assert!(m.infected_count() > 3, "BT worm never spread: {}", m.infected_count());
        assert_eq!(m.stats().messages_sent, 0, "pure BT worm must not send MMS");
        assert!(m.stats().bluetooth_offers > 0);
        assert!(m.stats().bluetooth_acceptances > 0);
    }

    #[test]
    fn bluetooth_ignores_gateway_mechanisms() {
        // Scan active from the very first moment cannot see Bluetooth.
        let mut c = bluetooth_config();
        c.detect_threshold = 0; // gateway clock would fire instantly — but sees nothing
        c.response = ResponseConfig::none()
            .with_signature_scan(SignatureScan { activation_delay: SimDuration::ZERO });
        let with_scan = run(&c, 31);
        let baseline = run(&bluetooth_config(), 31);
        assert_eq!(
            with_scan.infected_count(),
            baseline.infected_count(),
            "a gateway scan cannot touch proximity transfers"
        );
        assert_eq!(with_scan.stats().blocked_by_scan, 0);
    }

    #[test]
    fn blacklist_cannot_stop_a_hybrid_worm() {
        // The hybrid worm's MMS vector is cut off after two messages per
        // phone, but its Bluetooth vector keeps going.
        let mut c = bluetooth_config();
        c.virus = VirusProfile {
            bluetooth: Some(BluetoothVector { radius: 15.0, transfer_probability: 0.5 }),
            ..VirusProfile::virus3()
        };
        c.response = ResponseConfig::none().with_blacklist(Blacklist { threshold: 1 });
        let m = run(&c, 32);
        assert!(m.stats().blacklisted_phones > 0, "MMS vector should trip the blacklist");
        assert!(
            m.stats().bluetooth_acceptances > 0,
            "Bluetooth transfers must continue after blacklisting"
        );
    }

    #[test]
    fn silencing_patch_stops_bluetooth_too() {
        let mut c = bluetooth_config();
        // Give the gateway something to clock on: a hybrid worm.
        c.virus = VirusProfile {
            bluetooth: Some(BluetoothVector { radius: 15.0, transfer_probability: 0.5 }),
            ..VirusProfile::virus3()
        };
        c.detect_threshold = 1;
        c.response = ResponseConfig::none().with_immunization(Immunization::uniform(
            SimDuration::from_mins(30),
            SimDuration::from_mins(10),
        ));
        let m = run(&c, 33);
        // After the rollout, every phone is immunized or silenced; the
        // infection count can no longer move.
        let baseline = run(
            &{
                let mut b = c.clone();
                b.response = ResponseConfig::none();
                b
            },
            33,
        );
        assert!(
            m.infected_count() < baseline.infected_count(),
            "patch should contain the hybrid worm: {} vs {}",
            m.infected_count(),
            baseline.infected_count()
        );
        for p in m.population().iter().filter(|p| p.is_infected()) {
            assert!(p.is_silenced());
        }
    }

    #[test]
    fn education_applies_to_bluetooth_offers() {
        let mut c = bluetooth_config();
        c.response = ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.0 });
        let m = run(&c, 34);
        assert_eq!(m.infected_count(), 1, "nobody accepts: only the seed stays infected");
        assert!(m.stats().bluetooth_offers > 0, "offers still happen");
        assert_eq!(m.stats().bluetooth_acceptances, 0);
    }

    #[test]
    fn bluetooth_without_mobility_is_rejected() {
        let mut c = bluetooth_config();
        c.mobility = None;
        assert!(c.validate().is_err());
    }

    #[test]
    fn pure_bluetooth_worm_is_detectable_and_patchable() {
        // A sparser arena so the worm needs hours, leaving the patch
        // time to land mid-outbreak.
        let sparse = |mut c: ScenarioConfig| {
            c.mobility = Some(MobilityConfig {
                arena_width: 400.0,
                arena_height: 400.0,
                ..MobilityConfig::downtown()
            });
            c
        };
        let mut c = sparse(bluetooth_config());
        c.detect_threshold = 3;
        c.response = ResponseConfig::none().with_immunization(Immunization::uniform(
            SimDuration::from_mins(30),
            SimDuration::from_mins(10),
        ));
        let m = run(&c, 36);
        assert!(m.activation().detected_at.is_some(), "BT sightings must start the clock");
        assert!(m.activation().rollout_starts_at.is_some());
        let baseline = run(&sparse(bluetooth_config()), 36);
        assert!(
            m.infected_count() < baseline.infected_count(),
            "a prompt patch must contain the BT worm: {} vs {}",
            m.infected_count(),
            baseline.infected_count()
        );
    }

    #[test]
    fn sparser_arena_slows_bluetooth_spread() {
        let dense = run(&bluetooth_config(), 35).infected_count();
        let mut sparse_cfg = bluetooth_config();
        sparse_cfg.mobility = Some(MobilityConfig {
            arena_width: 1200.0,
            arena_height: 1200.0,
            ..MobilityConfig::downtown()
        });
        let sparse = run(&sparse_cfg, 35).infected_count();
        assert!(
            sparse < dense,
            "100x the area should slow proximity spread: sparse {sparse} vs dense {dense}"
        );
    }
}
