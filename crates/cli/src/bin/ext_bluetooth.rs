//! Deprecated shim: forwards to `mpvsim study ext_bluetooth`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("ext_bluetooth");
}
