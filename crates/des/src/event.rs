//! The future-event list: a priority queue with a deterministic total order.
//!
//! Events are ordered by `(time, sequence-number)`. The sequence number is
//! assigned at scheduling time, so events scheduled for the same instant
//! fire in the order they were scheduled. This removes the main source of
//! nondeterminism in naive DES implementations (heap tie-breaking), which is
//! what makes replications reproducible.
//!
//! The storage behind the queue is pluggable: see [`crate::fel`] for the
//! [`FelKind`] selector and the binary-heap / calendar-queue backends. The
//! pop order is identical for every backend — the `(time, seq)` key is
//! unique and totally ordered — so the choice affects performance only,
//! never trajectories.

use crate::fel::{BinaryHeapFel, CalendarQueue, FelKind, FutureEventList, Scheduled};
use crate::time::SimTime;

/// Static dispatch over the available backends.
///
/// An enum (rather than `Box<dyn FutureEventList>`) keeps the hot path
/// monomorphized and the queue `Clone`.
#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(BinaryHeapFel<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Backend<E> {
    fn for_kind(kind: FelKind) -> Self {
        match kind {
            FelKind::BinaryHeap => Backend::Heap(BinaryHeapFel::new()),
            FelKind::Calendar => Backend::Calendar(CalendarQueue::new()),
            FelKind::CalendarTuned { bucket_width_secs, bucket_count } => {
                Backend::Calendar(CalendarQueue::with_params(bucket_width_secs, bucket_count))
            }
        }
    }

    fn insert(&mut self, item: Scheduled<E>) {
        match self {
            Backend::Heap(h) => h.insert(item),
            Backend::Calendar(c) => c.insert(item),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            Backend::Heap(h) => h.pop(),
            Backend::Calendar(c) => c.pop(),
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Backend::Heap(h) => h.peek(),
            Backend::Calendar(c) => c.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(c) => c.clear(),
        }
    }
}

/// A future-event list ordered by `(time, scheduling order)`.
///
/// ```rust
/// use mpvsim_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(5), "a");
/// q.schedule(SimTime::from_secs(10), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// The default backend is a binary heap; [`EventQueue::with_kind`] selects
/// the calendar queue (see [`FelKind`]). Pop order is backend-independent.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    kind: FelKind,
    next_seq: u64,
    scheduled_total: u64,
    peak_len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (binary-heap) backend.
    pub fn new() -> Self {
        Self::with_kind(FelKind::default())
    }

    /// Creates an empty queue on the given backend.
    pub fn with_kind(kind: FelKind) -> Self {
        EventQueue {
            backend: Backend::for_kind(kind),
            kind,
            next_seq: 0,
            scheduled_total: 0,
            peak_len: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> FelKind {
        self.kind
    }

    /// Rebuilds this queue on a different backend, preserving all pending
    /// events (with their original sequence numbers) and the lifetime
    /// counters.
    pub fn into_kind(mut self, kind: FelKind) -> Self {
        let mut backend = Backend::for_kind(kind);
        while let Some(item) = self.backend.pop() {
            backend.insert(item);
        }
        EventQueue {
            backend,
            kind,
            next_seq: self.next_seq,
            scheduled_total: self.scheduled_total,
            peak_len: self.peak_len,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.backend.insert(Scheduled { time, seq, event });
        self.peak_len = self.peak_len.max(self.backend.len());
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.backend.pop().map(|s| (s.time, s.event))
    }

    /// The firing time of the earliest pending event.
    ///
    /// Takes `&mut self` because the calendar backend advances its bucket
    /// cursor lazily; the pending set is not modified.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.backend.peek().map(|(t, _)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    ///
    /// This counter is cumulative across [`EventQueue::clear`]: it reports
    /// lifetime workload, not the size of the current pending set.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// The largest number of events that were ever pending at once (the
    /// future-event list's high-water mark, a proxy for the run's working
    /// memory). Reset by [`EventQueue::clear`].
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Resident bytes of event payload at the pending high-water mark:
    /// [`EventQueue::peak_len`] × the size of one scheduled entry
    /// (`(time, seq, event)`). Backend bookkeeping (heap/bucket overhead)
    /// is excluded, so the figure is backend-independent and directly
    /// comparable across FEL kinds.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_len * std::mem::size_of::<Scheduled<E>>()
    }

    /// Discards all pending events and resets the high-water mark, so a
    /// reused queue reports the memory pressure of its *next* run rather
    /// than a stale peak. The lifetime [`EventQueue::scheduled_total`]
    /// counter is kept.
    pub fn clear(&mut self) {
        self.backend.clear();
        self.peak_len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Backends the shared tests run against. The tuned calendar uses a
    /// deliberately tiny wheel so wrap-around and overflow paths are hit
    /// even by small tests.
    const KINDS: [FelKind; 3] = [
        FelKind::BinaryHeap,
        FelKind::Calendar,
        FelKind::CalendarTuned { bucket_width_secs: 4, bucket_count: 8 },
    ];

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(30), 3u32);
            q.schedule(SimTime::from_secs(10), 1);
            q.schedule(SimTime::from_secs(20), 2);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn equal_times_fire_in_scheduling_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100u32 {
                q.schedule(SimTime::from_secs(7), i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime::from_secs(42), ());
            q.schedule(SimTime::from_secs(5), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)), "{kind:?}");
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(5));
        }
    }

    #[test]
    fn len_and_clear() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::ZERO, 1);
            q.schedule(SimTime::ZERO, 2);
            assert_eq!(q.len(), 2);
            assert!(!q.is_empty());
            q.clear();
            assert!(q.is_empty(), "{kind:?}");
            assert_eq!(q.scheduled_total(), 2, "lifetime counter survives clear");
        }
    }

    #[test]
    fn clear_resets_peak_len() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::ZERO, i);
        }
        assert_eq!(q.peak_len(), 5);
        q.clear();
        assert_eq!(q.peak_len(), 0, "peak must not leak across clear()");
        q.schedule(SimTime::ZERO, 0);
        assert_eq!(q.peak_len(), 1, "peak restarts from the post-clear run");
        assert_eq!(q.scheduled_total(), 6, "scheduled_total stays cumulative");
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.schedule(SimTime::ZERO, 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        // Draining does not lower the recorded peak.
        assert_eq!(q.peak_len(), 3);
        q.schedule(SimTime::ZERO, 4);
        assert_eq!(q.peak_len(), 3, "refilling below the peak keeps it");
        q.schedule(SimTime::ZERO, 5);
        q.schedule(SimTime::ZERO, 6);
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(10), "late");
            q.schedule(SimTime::from_secs(1), "early");
            assert_eq!(q.pop().unwrap().1, "early");
            // Schedule something earlier than the remaining event.
            q.schedule(SimTime::from_secs(5), "middle");
            assert_eq!(q.pop().unwrap().1, "middle", "{kind:?}");
            assert_eq!(q.pop().unwrap().1, "late");
        }
    }

    #[test]
    fn into_kind_preserves_pending_events_and_counters() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(9), "b");
        q.schedule(SimTime::from_secs(9), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.pop();
        let mut q = q.into_kind(FelKind::Calendar);
        assert_eq!(q.kind(), FelKind::Calendar);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 3);
        // Ties scheduled before the switch still fire in scheduling order.
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), "c")));
        // New events keep the sequence counter going.
        q.schedule(SimTime::from_secs(9), "d");
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), "d")));
    }

    proptest! {
        /// Popping always yields a non-decreasing sequence of times, and
        /// within a time, preserves scheduling order — on every backend.
        #[test]
        fn prop_total_order(
            times in proptest::collection::vec(0u64..1000, 1..200),
            kind_idx in 0usize..KINDS.len(),
        ) {
            let mut q = EventQueue::with_kind(KINDS[kind_idx]);
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time went backwards");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated at equal time");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Every scheduled event is popped exactly once — on every backend.
        #[test]
        fn prop_conservation(
            times in proptest::collection::vec(0u64..50, 0..100),
            kind_idx in 0usize..KINDS.len(),
        ) {
            let mut q = EventQueue::with_kind(KINDS[kind_idx]);
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, idx)) = q.pop() {
                prop_assert!(!seen[idx], "event popped twice");
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "event lost");
        }
    }
}
