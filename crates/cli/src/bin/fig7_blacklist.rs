//! Regenerates Figure 7: blacklisting thresholds (Virus 3).
fn main() {
    mpvsim_cli::figure_main(
        "Figure 7 — Blacklisting: Varying the Activation Threshold (Virus 3)",
        mpvsim_core::figures::fig7_blacklist,
    );
}
