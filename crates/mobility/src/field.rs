//! The assembled mobility field: a population of random-waypoint walkers
//! with proximity-contact extraction.

use rand::Rng;

use crate::arena::{Arena, Point};
use crate::grid::SpatialGrid;
use crate::waypoint::{RandomWaypoint, WaypointParams};

/// A population of moving nodes. Node indices align with the phone
/// indices of the epidemic model that drives the field.
#[derive(Debug, Clone)]
pub struct MobilityField {
    arena: Arena,
    params: WaypointParams,
    walkers: Vec<RandomWaypoint>,
    positions: Vec<Point>,
}

impl MobilityField {
    /// Spawns `n` walkers at random positions.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    pub fn new<R: Rng + ?Sized>(
        arena: Arena,
        n: usize,
        params: WaypointParams,
        rng: &mut R,
    ) -> Self {
        params.validate().expect("waypoint parameters must be valid");
        let walkers: Vec<RandomWaypoint> =
            (0..n).map(|_| RandomWaypoint::spawn(&arena, &params, rng)).collect();
        let positions = walkers.iter().map(|w| w.position()).collect();
        MobilityField { arena, params, walkers, positions }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// True when the field has no nodes.
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// The arena the nodes move in.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Current position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Advances every walker by `dt` seconds.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) {
        for (w, p) in self.walkers.iter_mut().zip(&mut self.positions) {
            w.advance(&self.arena, &self.params, dt, rng);
            *p = w.position();
        }
    }

    /// All unordered pairs of nodes currently within `radius` meters of
    /// each other.
    pub fn contacts_within(&self, radius: f64) -> Vec<(usize, usize)> {
        if self.positions.is_empty() {
            return Vec::new();
        }
        SpatialGrid::build(&self.arena, &self.positions, radius).all_pairs(&self.positions)
    }

    /// The nodes within `radius` meters of node `i` (excluding `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors_of(&self, i: usize, radius: f64) -> Vec<usize> {
        SpatialGrid::build(&self.arena, &self.positions, radius).within_radius(
            &self.positions,
            self.positions[i],
            Some(i),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field(n: usize, seed: u64) -> MobilityField {
        let arena = Arena::new(500.0, 500.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        MobilityField::new(arena, n, WaypointParams::pedestrian(), &mut rng)
    }

    #[test]
    fn spawn_positions_inside() {
        let f = field(200, 1);
        assert_eq!(f.len(), 200);
        assert!(!f.is_empty());
        for i in 0..f.len() {
            assert!(f.arena().contains(f.position(i)));
        }
    }

    #[test]
    fn step_moves_most_walkers() {
        let mut f = field(100, 2);
        let before: Vec<Point> = (0..100).map(|i| f.position(i)).collect();
        let mut rng = StdRng::seed_from_u64(3);
        f.step(60.0, &mut rng);
        let moved = (0..100).filter(|&i| before[i].distance(f.position(i)) > 1.0).count();
        assert!(moved > 50, "only {moved}/100 walkers moved in a minute");
        for i in 0..f.len() {
            assert!(f.arena().contains(f.position(i)));
        }
    }

    #[test]
    fn contacts_are_symmetric_within_radius() {
        let f = field(300, 4);
        let contacts = f.contacts_within(10.0);
        for (a, b) in contacts {
            assert!(a < b);
            assert!(f.position(a).distance(f.position(b)) <= 10.0);
        }
    }

    #[test]
    fn neighbors_agree_with_contacts() {
        let f = field(150, 5);
        let contacts = f.contacts_within(15.0);
        for (a, b) in contacts {
            assert!(f.neighbors_of(a, 15.0).contains(&b));
            assert!(f.neighbors_of(b, 15.0).contains(&a));
        }
    }

    #[test]
    fn empty_field() {
        let f = field(0, 6);
        assert!(f.is_empty());
        assert!(f.contacts_within(10.0).is_empty());
    }

    #[test]
    fn contact_rate_grows_with_density() {
        // Same arena, more nodes ⇒ more proximity pairs.
        let sparse = field(50, 7).contacts_within(10.0).len();
        let dense = field(500, 7).contacts_within(10.0).len();
        assert!(dense > sparse, "dense {dense} should exceed sparse {sparse}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = field(50, 8);
        let mut b = field(50, 8);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        a.step(30.0, &mut ra);
        b.step(30.0, &mut rb);
        for i in 0..50 {
            assert_eq!(a.position(i), b.position(i));
        }
    }
}
