//! Replication runner: executes N independently seeded replications of an
//! experiment and collects their results, serially or across threads.
//!
//! The paper reports expected infection trajectories; we estimate them by
//! averaging replications. Each replication receives a seed derived from
//! `(master_seed, rep)` (see [`crate::seed`]) so results are identical
//! whether run serially or in parallel — the rep index, not the thread
//! schedule, determines every stream.
//!
//! Two axes of variants:
//!
//! * **Fallible** (`try_*`): the replication body returns `Result<T, E>`,
//!   and a per-seed failure propagates as `Err` instead of panicking a
//!   worker thread. The returned error is deterministic: it is the error
//!   of the lowest-indexed failing replication, regardless of thread
//!   count or scheduling.
//! * **Streaming** ([`try_run_replications_sink`]): results are handed to
//!   a sink **in replication order as they become available**, instead of
//!   being collected into a `Vec`. This is what lets experiment
//!   aggregation run online, holding O(series length) memory rather than
//!   O(reps × series length).
//!
//! The infallible `Vec`-collecting functions are thin wrappers over the
//! fallible streaming core, so every variant shares one scheduling
//! implementation.

use std::collections::BTreeMap;
use std::convert::Infallible;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam::channel;
use crossbeam::thread;

use crate::seed::derive_seed;

/// Runs `reps` replications serially.
///
/// `body` receives `(replication_index, derived_seed)` and returns that
/// replication's result. Results are returned in replication order.
///
/// ```rust
/// let results = mpvsim_des::run_replications(3, 42, |rep, seed| (rep, seed));
/// assert_eq!(results.len(), 3);
/// assert_eq!(results[1].0, 1);
/// ```
pub fn run_replications<T, F>(reps: u64, master_seed: u64, mut body: F) -> Vec<T>
where
    F: FnMut(u64, u64) -> T,
{
    let result: Result<Vec<T>, Infallible> =
        try_run_replications(reps, master_seed, |rep, seed| Ok(body(rep, seed)));
    match result {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Runs `reps` replications serially with a fallible body.
///
/// Stops at — and returns — the first error; replications after the
/// failing one never run.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing replication.
pub fn try_run_replications<T, E, F>(reps: u64, master_seed: u64, mut body: F) -> Result<Vec<T>, E>
where
    F: FnMut(u64, u64) -> Result<T, E>,
{
    (0..reps).map(|rep| body(rep, derive_seed(master_seed, rep))).collect()
}

/// Runs `reps` replications across up to `threads` worker threads.
///
/// Results are returned in replication order regardless of which thread ran
/// which replication, and each replication's seed depends only on
/// `(master_seed, rep)`, so the output is identical to
/// [`run_replications`] with the same arguments.
///
/// # Panics
///
/// Panics if `threads == 0` or if a worker thread panics.
pub fn run_replications_parallel<T, F>(
    reps: u64,
    master_seed: u64,
    threads: usize,
    body: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let result: Result<Vec<T>, Infallible> =
        try_run_replications_parallel(reps, master_seed, threads, |rep, seed| Ok(body(rep, seed)));
    match result {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Runs `reps` fallible replications across up to `threads` worker
/// threads, collecting results in replication order.
///
/// On failure, in-flight replications finish and are discarded, no new
/// ones start, and the error of the lowest-indexed failing replication is
/// returned — the same error [`try_run_replications`] would have
/// returned, so callers observe identical behavior at every thread count.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing replication.
///
/// # Panics
///
/// Panics if `threads == 0` or if a worker thread panics.
pub fn try_run_replications_parallel<T, E, F>(
    reps: u64,
    master_seed: u64,
    threads: usize,
    body: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(u64, u64) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(reps as usize);
    try_run_replications_sink(reps, master_seed, threads, body, |_rep, value| {
        out.push(value);
    })?;
    Ok(out)
}

/// The streaming core: runs `reps` fallible replications across up to
/// `threads` workers and hands each result to `sink` **in replication
/// order**, as soon as it and all lower-indexed results are available.
///
/// The sink runs on the calling thread; out-of-order completions are held
/// in a reorder buffer whose size is bounded by thread skew, so memory
/// stays O(threads) results instead of O(reps).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing replication. The sink
/// receives a prefix (possibly empty) of the replication sequence in that
/// case; on `Ok(())` it has received all `reps` results exactly once, in
/// order.
///
/// # Panics
///
/// Panics if `threads == 0` or if a worker thread panics.
pub fn try_run_replications_sink<T, E, F, S>(
    reps: u64,
    master_seed: u64,
    threads: usize,
    body: F,
    mut sink: S,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(u64, u64) -> Result<T, E> + Sync,
    S: FnMut(u64, T),
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || reps <= 1 {
        for rep in 0..reps {
            let value = body(rep, derive_seed(master_seed, rep))?;
            sink(rep, value);
        }
        return Ok(());
    }

    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = channel::unbounded::<(u64, Result<T, E>)>();

    thread::scope(|scope| {
        for _ in 0..threads.min(reps as usize) {
            let tx = tx.clone();
            let body = &body;
            let next = &next;
            let stop = &stop;
            scope.spawn(move |_| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let rep = next.fetch_add(1, Ordering::Relaxed);
                if rep >= reps {
                    break;
                }
                let result = body(rep, derive_seed(master_seed, rep));
                if result.is_err() {
                    stop.store(true, Ordering::Relaxed);
                }
                if tx.send((rep, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Drain on this thread, releasing results to the sink in
        // replication order. Claims are handed out monotonically, so by
        // the time any replication fails, every lower-indexed one has
        // already been claimed and will complete — taking the minimum
        // failing index therefore yields the same error as a serial run.
        let mut pending: BTreeMap<u64, T> = BTreeMap::new();
        let mut next_emit: u64 = 0;
        let mut first_error: Option<(u64, E)> = None;
        for (rep, result) in rx {
            match result {
                Ok(value) => {
                    if first_error.is_none() {
                        pending.insert(rep, value);
                        while let Some(value) = pending.remove(&next_emit) {
                            sink(next_emit, value);
                            next_emit += 1;
                        }
                    }
                }
                Err(e) => {
                    pending.clear();
                    match first_error {
                        Some((failed_rep, _)) if failed_rep <= rep => {}
                        _ => first_error = Some((rep, e)),
                    }
                }
            }
        }
        match first_error {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    })
    .expect("replication worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runs_all_reps_in_order() {
        let results = run_replications(5, 7, |rep, _seed| rep * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn seeds_depend_only_on_master_and_rep() {
        let a = run_replications(4, 1, |_, seed| seed);
        let b = run_replications(4, 1, |_, seed| seed);
        let c = run_replications(4, 2, |_, seed| seed);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_replications(17, 99, |rep, seed| (rep, seed, rep + seed));
        let parallel = run_replications_parallel(17, 99, 4, |rep, seed| (rep, seed, rep + seed));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_single_thread_matches_serial() {
        let serial = run_replications(5, 3, |rep, seed| rep ^ seed);
        let parallel = run_replications_parallel(5, 3, 1, |rep, seed| rep ^ seed);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_reps_is_empty() {
        let results: Vec<u64> = run_replications(0, 1, |_, s| s);
        assert!(results.is_empty());
        let results: Vec<u64> = run_replications_parallel(0, 1, 4, |_, s| s);
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = run_replications_parallel(1, 1, 0, |_, s| s);
    }

    #[test]
    fn more_threads_than_reps_is_fine() {
        let results = run_replications_parallel(2, 5, 16, |rep, _| rep);
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn sink_receives_results_in_replication_order() {
        for threads in [1usize, 2, 8] {
            let mut seen: Vec<u64> = Vec::new();
            try_run_replications_sink::<_, Infallible, _, _>(
                20,
                3,
                threads,
                |rep, _seed| Ok(rep * 10),
                |rep, value| {
                    assert_eq!(value, rep * 10);
                    seen.push(rep);
                },
            )
            .unwrap();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn try_serial_stops_at_first_error() {
        let mut ran: Vec<u64> = Vec::new();
        let result: Result<Vec<u64>, String> = try_run_replications(10, 1, |rep, _seed| {
            ran.push(rep);
            if rep == 3 {
                Err(format!("rep {rep} failed"))
            } else {
                Ok(rep)
            }
        });
        assert_eq!(result.unwrap_err(), "rep 3 failed");
        assert_eq!(ran, vec![0, 1, 2, 3], "later replications must not run");
    }

    #[test]
    fn try_parallel_reports_lowest_failing_rep_at_any_thread_count() {
        for threads in [1usize, 2, 4, 16] {
            let result: Result<Vec<u64>, String> =
                try_run_replications_parallel(32, 9, threads, |rep, _seed| {
                    if rep == 5 || rep == 20 {
                        Err(format!("rep {rep} failed"))
                    } else {
                        Ok(rep)
                    }
                });
            assert_eq!(result.unwrap_err(), "rep 5 failed", "threads = {threads}");
        }
    }

    #[test]
    fn try_parallel_success_matches_serial() {
        let serial: Result<Vec<u64>, String> =
            try_run_replications(12, 4, |rep, seed| Ok(rep.wrapping_mul(seed)));
        let parallel: Result<Vec<u64>, String> =
            try_run_replications_parallel(12, 4, 3, |rep, seed| Ok(rep.wrapping_mul(seed)));
        assert_eq!(serial.unwrap(), parallel.unwrap());
    }

    #[test]
    fn failure_stops_handing_out_new_replications() {
        use std::sync::atomic::AtomicU64;
        // With an early failure and many replications, the stop flag must
        // keep the runner from executing the whole batch. Thread timing
        // makes the exact count nondeterministic; a generous bound still
        // catches a runner that ignores the flag entirely.
        let executed = AtomicU64::new(0);
        let result: Result<Vec<u64>, &'static str> =
            try_run_replications_parallel(10_000, 1, 2, |rep, _seed| {
                executed.fetch_add(1, Ordering::Relaxed);
                if rep == 0 {
                    Err("boom")
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    Ok(rep)
                }
            });
        assert_eq!(result.unwrap_err(), "boom");
        assert!(
            executed.load(Ordering::Relaxed) < 5_000,
            "stop flag ignored: {} replications ran",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn sink_on_error_received_prefix_only() {
        let mut seen: Vec<u64> = Vec::new();
        let result: Result<(), &'static str> = try_run_replications_sink(
            16,
            2,
            4,
            |rep, _seed| if rep == 7 { Err("nope") } else { Ok(rep) },
            |rep, value| {
                assert_eq!(rep, value);
                seen.push(rep);
            },
        );
        assert_eq!(result.unwrap_err(), "nope");
        // Whatever arrived is an in-order prefix of 0..7.
        assert!(seen.len() <= 7);
        assert_eq!(seen, (0..seen.len() as u64).collect::<Vec<_>>());
    }
}
