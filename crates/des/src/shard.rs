//! Primitives for conservative, sharded (intra-replication) simulation.
//!
//! A sharded run partitions the model's state across `k` shards, each
//! owning a shard-local future-event list ([`ShardQueue`]), and advances
//! all shards in lockstep *rounds* planned by [`plan_round`]:
//!
//! * **Pin rounds** execute one globally-ordered event (seeding, sample
//!   grid ticks, response-mechanism activations) on the coordinator
//!   before any shard may pass it.
//! * **Window rounds** open a half-open time window `[start, end)` in
//!   which every shard may process its local events independently,
//!   because the conservative [`Lookahead`] guarantees no cross-shard
//!   message can arrive inside the window: a message sent at time `t`
//!   is delivered no earlier than `t + lookahead`, and `end` never
//!   exceeds `start + lookahead`.
//!
//! Cross-shard messages travel through a [`ShardRouter`]: per-pair FIFO
//! channels drained at each barrier in ascending `(time, source, seq)`
//! order, which makes the merged delivery order — and therefore the
//! whole trajectory — independent of the shard count and of worker
//! scheduling. The window grid itself is also shard-count invariant:
//! the window start is the *global* minimum pending-event time, a
//! property of the event set, not of how it is partitioned.
//!
//! This module is model-agnostic: it knows nothing about phones or
//! viruses. `mpvsim-core` builds the sharded epidemic engine on top of
//! these pieces and derives the lookahead from the scenario's minimum
//! message read delay.

use std::cmp::Ordering;

use crate::fel::{BinaryHeapFel, CalendarQueue, FelKind, FutureEventList, Scheduled};
use crate::time::{SimDuration, SimTime};

/// The conservative synchronization horizon: a strictly positive lower
/// bound on the delay between a cross-shard send and its delivery.
///
/// A zero lookahead would force zero-width windows — the barrier could
/// never let any shard advance — so [`Lookahead::new`] rejects it with
/// the structured [`ZeroLookaheadError`] (surfaced one level up as a
/// scenario `ConfigError`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookahead(SimDuration);

impl Lookahead {
    /// Validates `min_latency` as a lookahead; rejects zero.
    pub fn new(min_latency: SimDuration) -> Result<Self, ZeroLookaheadError> {
        if min_latency == SimDuration::ZERO {
            Err(ZeroLookaheadError)
        } else {
            Ok(Lookahead(min_latency))
        }
    }

    /// The lookahead duration (always > 0).
    pub fn get(self) -> SimDuration {
        self.0
    }
}

/// Structured rejection of a zero lookahead (see [`Lookahead::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroLookaheadError;

impl std::fmt::Display for ZeroLookaheadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conservative sharding requires a strictly positive lookahead: \
             the minimum cross-shard message latency is zero, so no time \
             window could ever be opened"
        )
    }
}

impl std::error::Error for ZeroLookaheadError {}

/// What the coordinator should do next, as planned by [`plan_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Round {
    /// Execute the globally-ordered pinned event at this time before
    /// opening any window. Shard-local events *at* the pin time run
    /// after the pin (in the window that follows).
    Pin(SimTime),
    /// Open the half-open window `[start, end)`: every shard processes
    /// its local events with `time < end`, then hits the barrier.
    Window {
        /// Global minimum pending-event time.
        start: SimTime,
        /// Exclusive end: `min(start + lookahead, next pin)`.
        end: SimTime,
    },
    /// No pending events and no pins: the simulation is exhausted.
    Idle,
}

/// Plans the next lockstep round from the per-shard event fronts.
///
/// `fronts` holds each shard's next local event time (`None` for a
/// shard with an empty queue — an empty shard never blocks the round,
/// so a round with work on *any* shard always makes progress and the
/// barrier cannot deadlock). `next_pin` is the earliest pending
/// globally-ordered event, if any.
///
/// The rules, in order:
/// 1. No fronts and no pin → [`Round::Idle`].
/// 2. Pin at `p` with `p <= start` (or no local events) → [`Round::Pin`].
/// 3. Otherwise → [`Round::Window`] with `start` = the global minimum
///    front and `end = min(start + lookahead, p)`.
///
/// Because `start` is the global minimum over all pending events and
/// the pin schedule is global, the resulting round sequence depends
/// only on the event set and pins — not on the shard count.
pub fn plan_round(
    fronts: &[Option<SimTime>],
    next_pin: Option<SimTime>,
    lookahead: Lookahead,
) -> Round {
    let start = fronts.iter().filter_map(|f| *f).min();
    match (start, next_pin) {
        (None, None) => Round::Idle,
        (None, Some(p)) => Round::Pin(p),
        (Some(s), Some(p)) if p <= s => Round::Pin(p),
        (Some(s), pin) => {
            let mut end = s + lookahead.get();
            if let Some(p) = pin {
                end = end.min(p);
            }
            Round::Window { start: s, end }
        }
    }
}

/// A cross-shard message in flight: the payload plus the deterministic
/// merge key `(time, source, seq)`.
///
/// `source` is a stable global identifier of the sending entity (the
/// sender's phone id in the epidemic model) and `seq` is the sender's
/// running send count, so two envelopes never compare equal unless they
/// are the same send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Delivery time at the destination shard (≥ send time + lookahead).
    pub time: SimTime,
    /// Global id of the sending entity.
    pub source: u64,
    /// Per-source running sequence number.
    pub seq: u64,
    /// The message payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// The deterministic merge key.
    #[inline]
    pub fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.source, self.seq)
    }
}

impl<M: Eq> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M: Eq> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Per-pair deterministic FIFO channels for cross-shard messages.
///
/// Each sending shard appends envelopes in its own (deterministic)
/// processing order; at a barrier the coordinator drains every
/// destination's inbox sorted by `(time, source, seq)`, so the merged
/// order is a pure function of the envelopes themselves.
#[derive(Debug)]
pub struct ShardRouter<M> {
    inboxes: Vec<Vec<Envelope<M>>>,
    routed: u64,
    delivered: u64,
}

impl<M> ShardRouter<M> {
    /// A router for `shards` destinations.
    pub fn new(shards: usize) -> Self {
        ShardRouter { inboxes: (0..shards).map(|_| Vec::new()).collect(), routed: 0, delivered: 0 }
    }

    /// Enqueues `envelope` for destination shard `dest`.
    pub fn send(&mut self, dest: usize, envelope: Envelope<M>) {
        self.routed += 1;
        self.inboxes[dest].push(envelope);
    }

    /// Drains destination `dest`'s inbox in `(time, source, seq)` order.
    pub fn drain(&mut self, dest: usize) -> Vec<Envelope<M>> {
        let mut batch = std::mem::take(&mut self.inboxes[dest]);
        batch.sort_by_key(Envelope::key);
        self.delivered += batch.len() as u64;
        batch
    }

    /// Envelopes accepted by [`ShardRouter::send`] so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Envelopes handed out by [`ShardRouter::drain`] so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Envelopes currently waiting in inboxes.
    pub fn in_flight(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum()
    }

    /// The earliest delivery time waiting for destination `dest`, if any
    /// — the barrier planner folds this into the shard's event front.
    pub fn pending_min_time(&self, dest: usize) -> Option<SimTime> {
        self.inboxes[dest].iter().map(|e| e.time).min()
    }
}

/// Counters for one sharded run's synchronization behaviour, merged
/// into the observability registry by the engine layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BarrierStats {
    /// Total lockstep rounds (pins + windows).
    pub rounds: u64,
    /// Rounds that executed a globally-pinned event.
    pub pin_rounds: u64,
    /// Rounds that opened a time window.
    pub window_rounds: u64,
    /// Shard-rounds in which a shard reached the barrier with no local
    /// event inside the window (it waited on the others).
    pub idle_shard_rounds: u64,
    /// Envelopes routed across shards.
    pub cross_shard_messages: u64,
}

/// A shard-local future-event list with *caller-supplied* ordering keys.
///
/// Unlike [`EventQueue`](crate::EventQueue), which assigns sequence
/// numbers in scheduling order (an order that would differ between
/// shard layouts), `ShardQueue` lets the model supply a canonical key
/// per event so the pop order at equal times is a function of the event
/// itself. Ties on `(time, key)` must only occur between interchangeable
/// events — the epidemic model's canonical key guarantees that.
///
/// Like `EventQueue` it tracks `scheduled_total` (cumulative across
/// [`ShardQueue::clear`]) and `peak_len` (reset by `clear`) so per-shard
/// peaks can be summed and compared against the sequential engine's
/// global peak in the memory-bounds tests.
#[derive(Debug)]
pub struct ShardQueue<E> {
    backend: Backend<E>,
    scheduled_total: u64,
    peak_len: usize,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeapFel<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Backend<E> {
    fn as_fel(&mut self) -> &mut dyn FutureEventList<E> {
        match self {
            Backend::Heap(h) => h,
            Backend::Calendar(c) => c,
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }
}

impl<E> ShardQueue<E> {
    /// An empty queue over the given backend kind.
    pub fn with_kind(kind: FelKind) -> Self {
        let backend = match kind {
            FelKind::BinaryHeap => Backend::Heap(BinaryHeapFel::new()),
            FelKind::Calendar => Backend::Calendar(CalendarQueue::new()),
            FelKind::CalendarTuned { bucket_width_secs, bucket_count } => {
                Backend::Calendar(CalendarQueue::with_params(bucket_width_secs, bucket_count))
            }
        };
        ShardQueue { backend, scheduled_total: 0, peak_len: 0 }
    }

    /// Schedules `event` at `time` under the canonical `key`.
    pub fn schedule(&mut self, time: SimTime, key: u64, event: E) {
        self.backend.as_fel().insert(Scheduled { time, seq: key, event });
        self.scheduled_total += 1;
        let len = self.backend.len();
        if len > self.peak_len {
            self.peak_len = len;
        }
    }

    /// Removes and returns the earliest `(time, key, event)` triple.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.backend.as_fel().pop().map(|s| (s.time, s.seq, s.event))
    }

    /// The time of the event [`ShardQueue::pop`] would return.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.backend.as_fel().peek().map(|(t, _)| t)
    }

    /// The `(time, key)` pair of the event [`ShardQueue::pop`] would
    /// return — the merged-order executor compares these across shards.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.backend.as_fel().peek()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events and resets the peak; the cumulative
    /// `scheduled_total` is preserved so reuse across replications keeps
    /// a meaningful schedule count.
    pub fn clear(&mut self) {
        self.backend.as_fel().clear();
        self.peak_len = 0;
    }

    /// Cumulative number of events ever scheduled (across `clear`s).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// High-water mark of the pending set since the last `clear`.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// The peak pending set expressed in bytes of event storage
    /// (`peak_len × size_of::<Scheduled<E>>()`), matching the accounting
    /// of [`EventQueue::peak_resident_bytes`](crate::EventQueue).
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_len * std::mem::size_of::<Scheduled<E>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn zero_lookahead_is_rejected_with_structured_error() {
        let err = Lookahead::new(SimDuration::ZERO).unwrap_err();
        assert_eq!(err, ZeroLookaheadError);
        let msg = err.to_string();
        assert!(msg.contains("strictly positive lookahead"), "got: {msg}");
        assert!(Lookahead::new(SimDuration::from_secs(1)).is_ok());
    }

    #[test]
    fn same_timestamp_envelopes_drain_in_source_then_seq_order() {
        let mut router: ShardRouter<&'static str> = ShardRouter::new(2);
        // Shard workers push in arbitrary (per-worker) order; all four
        // envelopes share one timestamp.
        router.send(1, Envelope { time: t(60), source: 7, seq: 1, payload: "b7" });
        router.send(1, Envelope { time: t(60), source: 3, seq: 2, payload: "a3-second" });
        router.send(1, Envelope { time: t(60), source: 3, seq: 1, payload: "a3-first" });
        router.send(1, Envelope { time: t(60), source: 7, seq: 0, payload: "a7" });
        let order: Vec<&str> = router.drain(1).into_iter().map(|e| e.payload).collect();
        assert_eq!(order, vec!["a3-first", "a3-second", "a7", "b7"]);
        assert_eq!(router.routed(), 4);
        assert_eq!(router.delivered(), 4);
        assert_eq!(router.in_flight(), 0);
    }

    #[test]
    fn fifo_per_pair_is_preserved_across_times() {
        let mut router: ShardRouter<u32> = ShardRouter::new(3);
        router.send(2, Envelope { time: t(120), source: 1, seq: 1, payload: 20 });
        router.send(2, Envelope { time: t(60), source: 1, seq: 0, payload: 10 });
        router.send(0, Envelope { time: t(30), source: 5, seq: 0, payload: 99 });
        assert_eq!(router.in_flight(), 3);
        let d2: Vec<u32> = router.drain(2).into_iter().map(|e| e.payload).collect();
        assert_eq!(d2, vec![10, 20]);
        let d0: Vec<u32> = router.drain(0).into_iter().map(|e| e.payload).collect();
        assert_eq!(d0, vec![99]);
        assert!(router.drain(1).is_empty());
    }

    #[test]
    fn empty_shard_round_does_not_block_planning() {
        let la = Lookahead::new(SimDuration::from_secs(30)).unwrap();
        // One shard idle, one with work: the window opens anyway.
        let round = plan_round(&[Some(t(100)), None], None, la);
        assert_eq!(round, Round::Window { start: t(100), end: t(130) });
        // All shards idle but a pin remains: the pin fires.
        assert_eq!(plan_round(&[None, None], Some(t(500)), la), Round::Pin(t(500)));
        // Nothing anywhere: the run is over.
        assert_eq!(plan_round(&[None, None], None, la), Round::Idle);
    }

    #[test]
    fn empty_shard_loop_terminates() {
        // Drive a two-shard loop where shard 1 never has events; each
        // window consumes shard 0's front. Termination proves the
        // barrier cannot deadlock on an empty shard.
        let la = Lookahead::new(SimDuration::from_secs(10)).unwrap();
        let mut q: ShardQueue<u8> = ShardQueue::with_kind(FelKind::BinaryHeap);
        q.schedule(t(5), 0, 0);
        q.schedule(t(12), 0, 1);
        q.schedule(t(40), 0, 2);
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 100, "barrier loop failed to terminate");
            match plan_round(&[q.peek_time(), None], None, la) {
                Round::Idle => break,
                Round::Pin(_) => unreachable!("no pins scheduled"),
                Round::Window { end, .. } => {
                    while q.peek_time().is_some_and(|ft| ft < end) {
                        q.pop();
                    }
                }
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pin_at_or_before_front_runs_first() {
        let la = Lookahead::new(SimDuration::from_secs(60)).unwrap();
        // Pin strictly before the front.
        assert_eq!(plan_round(&[Some(t(100))], Some(t(50)), la), Round::Pin(t(50)));
        // Pin exactly at the front: the pin still runs first (the fixed
        // rule that makes the grid shard-count invariant).
        assert_eq!(plan_round(&[Some(t(100))], Some(t(100)), la), Round::Pin(t(100)));
        // Pin inside the would-be window truncates it.
        assert_eq!(
            plan_round(&[Some(t(100))], Some(t(130)), la),
            Round::Window { start: t(100), end: t(130) }
        );
        // Pin beyond the window leaves it at full lookahead width.
        assert_eq!(
            plan_round(&[Some(t(100))], Some(t(500)), la),
            Round::Window { start: t(100), end: t(160) }
        );
    }

    #[test]
    fn shard_queue_orders_by_time_then_key_on_both_backends() {
        for kind in [FelKind::BinaryHeap, FelKind::Calendar] {
            let mut q: ShardQueue<&'static str> = ShardQueue::with_kind(kind);
            q.schedule(t(10), 5, "t10-k5");
            q.schedule(t(10), 2, "t10-k2");
            q.schedule(t(3), 9, "t3-k9");
            q.schedule(t(10), 7, "t10-k7");
            let mut order = Vec::new();
            while let Some((_, _, e)) = q.pop() {
                order.push(e);
            }
            assert_eq!(order, vec!["t3-k9", "t10-k2", "t10-k5", "t10-k7"]);
        }
    }

    #[test]
    fn shard_queue_clear_resets_peak_but_keeps_total() {
        let mut q: ShardQueue<u32> = ShardQueue::with_kind(FelKind::BinaryHeap);
        q.schedule(t(1), 0, 1);
        q.schedule(t(2), 1, 2);
        q.schedule(t(3), 2, 3);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.scheduled_total(), 3);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 0);
        assert_eq!(q.scheduled_total(), 3);
        q.schedule(t(9), 0, 4);
        assert_eq!(q.peak_len(), 1);
        assert_eq!(q.scheduled_total(), 4);
        assert_eq!(q.peak_resident_bytes(), std::mem::size_of::<Scheduled<u32>>());
    }
}
