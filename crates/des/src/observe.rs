//! Experiment observability: lifecycle hooks with runtime telemetry.
//!
//! The replication runner is deliberately silent — determinism demands
//! that nothing about the schedule depends on wall time — but large
//! sweeps are opaque without *some* signal. This module separates the two
//! concerns: the engine records cheap counters ([`crate::SimMetrics`]),
//! and an [`ExperimentObserver`] attached to an experiment receives them
//! together with wall-clock timings as replications start and finish.
//! Observers are strictly read-only: they can never influence seeds,
//! event order, or aggregation, so attaching one cannot change results.
//!
//! Three sinks are provided:
//!
//! * [`NoopObserver`] — the default; every hook is a no-op.
//! * [`ProgressObserver`] — a human progress reporter on stderr.
//! * [`JsonlObserver`] — one JSON line per replication plus an experiment
//!   summary line, for machine consumption (see the field list on
//!   [`JsonlObserver`]).
//!
//! [`FanoutObserver`] combines several sinks, and [`ObserverHandle`] is
//! the cheaply clonable form the experiment APIs carry around.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::engine::SimMetrics;

/// Telemetry for one finished replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationMetrics {
    /// Replication index within the experiment.
    pub rep: u64,
    /// The derived seed the replication ran with.
    pub seed: u64,
    /// Wall-clock time the replication took.
    pub wall: Duration,
    /// Engine counters (events processed, event-heap high-water mark).
    pub sim: SimMetrics,
}

impl ReplicationMetrics {
    /// Events processed per wall-clock second (0 when the run was too
    /// fast to time).
    pub fn events_per_sec(&self) -> f64 {
        events_per_sec(self.sim.events_processed, self.wall)
    }
}

/// Telemetry for a finished experiment (all replications).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentMetrics {
    /// Replications that completed.
    pub reps: u64,
    /// Wall-clock time of the whole experiment.
    pub wall: Duration,
    /// Total events processed across all replications.
    pub events_processed: u64,
    /// Highest pending-event count any replication reached (the max of
    /// the per-replication [`SimMetrics::peak_pending_events`] values).
    pub peak_pending_events: usize,
    /// Resident event-payload bytes at that peak (the max of the
    /// per-replication [`SimMetrics::peak_event_bytes`] values).
    pub peak_event_bytes: usize,
}

impl ExperimentMetrics {
    /// Aggregate events processed per wall-clock second (0 when the
    /// experiment was too fast to time).
    pub fn events_per_sec(&self) -> f64 {
        events_per_sec(self.events_processed, self.wall)
    }
}

fn events_per_sec(events: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    }
}

/// Log target of the engine-level events this module emits.
const LOG_TARGET: &str = "mpvsim_des";

/// Registry handles for the engine-level metrics, looked up once.
struct EngineMetrics {
    replications: mpvsim_obs::Counter,
    events: mpvsim_obs::Counter,
    replication_seconds: mpvsim_obs::Histogram,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: std::sync::OnceLock<EngineMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mpvsim_obs::metrics::global();
        EngineMetrics {
            replications: reg.counter("mpvsim_replications_total", "DES replications completed"),
            events: reg.counter(
                "mpvsim_sim_events_total",
                "Simulation events processed across all replications",
            ),
            replication_seconds: reg.histogram(
                "mpvsim_replication_seconds",
                "Wall-clock time of one DES replication",
                &mpvsim_obs::metrics::default_latency_buckets(),
            ),
        }
    })
}

/// Records one finished replication into the global metrics registry
/// (replication count, event count, wall-time histogram) and emits a
/// trace-level log line. Called by the experiment runners for every
/// replication; recording is a few relaxed atomic ops and the log line
/// is fast-rejected unless `MPVSIM_LOG` asks for `trace`.
pub fn record_replication(m: &ReplicationMetrics) {
    let metrics = engine_metrics();
    metrics.replications.inc();
    metrics.events.add(m.sim.events_processed);
    metrics.replication_seconds.observe_duration(m.wall);
    if mpvsim_obs::log::enabled(mpvsim_obs::Level::Trace, LOG_TARGET) {
        mpvsim_obs::log::trace(
            LOG_TARGET,
            "replication",
            &[
                ("rep", m.rep.into()),
                ("seed", m.seed.into()),
                ("events", m.sim.events_processed.into()),
                ("wall_ms", (m.wall.as_secs_f64() * 1e3).into()),
                ("events_per_sec", m.events_per_sec().into()),
            ],
        );
    }
}

/// Records a finished experiment: a debug-level log line with the
/// aggregate events/s. The per-replication counters were already
/// recorded by [`record_replication`], so this only logs.
pub fn record_experiment(m: &ExperimentMetrics) {
    mpvsim_obs::log::debug(
        LOG_TARGET,
        "experiment",
        &[
            ("reps", m.reps.into()),
            ("events", m.events_processed.into()),
            ("wall_ms", (m.wall.as_secs_f64() * 1e3).into()),
            ("events_per_sec", m.events_per_sec().into()),
            ("peak_pending_events", m.peak_pending_events.into()),
            ("peak_event_bytes", m.peak_event_bytes.into()),
        ],
    );
}

/// Lifecycle hooks for a replicated experiment.
///
/// Hooks may be called from worker threads (`on_replication_start`) and
/// from the result-draining thread (`on_replication_finish`, in
/// replication order), so implementations must be `Send + Sync`. All
/// methods default to no-ops; implement only what the sink needs.
///
/// Observers receive telemetry but return nothing: the experiment's
/// numerical output is bit-identical with or without an observer.
pub trait ExperimentObserver: Send + Sync {
    /// The experiment is about to run `reps` replications (for adaptive
    /// experiments this is the maximum; fewer may run).
    fn on_experiment_start(&self, reps: u64) {
        let _ = reps;
    }

    /// Replication `rep` is starting on some worker with `seed`.
    fn on_replication_start(&self, rep: u64, seed: u64) {
        let _ = (rep, seed);
    }

    /// A replication finished; delivered in replication order.
    fn on_replication_finish(&self, metrics: &ReplicationMetrics) {
        let _ = metrics;
    }

    /// Every replication finished (not called when the experiment errors).
    fn on_experiment_finish(&self, metrics: &ExperimentMetrics) {
        let _ = metrics;
    }
}

/// The default observer: ignores every hook.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ExperimentObserver for NoopObserver {}

/// A cheaply clonable, shareable handle to an observer.
///
/// Experiment plans and option structs carry this instead of a bare
/// `Arc<dyn ExperimentObserver>` so they stay `Clone` + `Debug` and
/// default to [`NoopObserver`].
#[derive(Clone)]
pub struct ObserverHandle(Arc<dyn ExperimentObserver>);

impl ObserverHandle {
    /// Wraps an observer.
    pub fn new(observer: impl ExperimentObserver + 'static) -> Self {
        ObserverHandle(Arc::new(observer))
    }

    /// Wraps an already-shared observer.
    pub fn from_arc(observer: Arc<dyn ExperimentObserver>) -> Self {
        ObserverHandle(observer)
    }

    /// The do-nothing handle.
    pub fn noop() -> Self {
        ObserverHandle::new(NoopObserver)
    }

    /// The underlying shared observer.
    pub fn shared(&self) -> Arc<dyn ExperimentObserver> {
        Arc::clone(&self.0)
    }
}

impl Default for ObserverHandle {
    fn default() -> Self {
        ObserverHandle::noop()
    }
}

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ObserverHandle(..)")
    }
}

impl std::ops::Deref for ObserverHandle {
    type Target = dyn ExperimentObserver;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// Forwards every hook to each wrapped observer, in order.
#[derive(Default)]
pub struct FanoutObserver {
    sinks: Vec<Arc<dyn ExperimentObserver>>,
}

impl FanoutObserver {
    /// An empty fan-out (equivalent to [`NoopObserver`]).
    pub fn new() -> Self {
        FanoutObserver::default()
    }

    /// Adds a sink, builder-style.
    pub fn with(mut self, observer: impl ExperimentObserver + 'static) -> Self {
        self.sinks.push(Arc::new(observer));
        self
    }

    /// Number of wrapped sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ExperimentObserver for FanoutObserver {
    fn on_experiment_start(&self, reps: u64) {
        for s in &self.sinks {
            s.on_experiment_start(reps);
        }
    }

    fn on_replication_start(&self, rep: u64, seed: u64) {
        for s in &self.sinks {
            s.on_replication_start(rep, seed);
        }
    }

    fn on_replication_finish(&self, metrics: &ReplicationMetrics) {
        for s in &self.sinks {
            s.on_replication_finish(metrics);
        }
    }

    fn on_experiment_finish(&self, metrics: &ExperimentMetrics) {
        for s in &self.sinks {
            s.on_experiment_finish(metrics);
        }
    }
}

/// Human progress reporting on stderr: one line per finished replication
/// and a closing summary. Reuse across consecutive experiments is fine —
/// each `on_experiment_start` resets the counters.
#[derive(Debug, Default)]
pub struct ProgressObserver {
    total: AtomicU64,
    done: AtomicU64,
}

impl ProgressObserver {
    /// A fresh progress reporter.
    pub fn new() -> Self {
        ProgressObserver::default()
    }
}

impl ExperimentObserver for ProgressObserver {
    fn on_experiment_start(&self, reps: u64) {
        self.total.store(reps, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        eprintln!("[mpvsim] starting {reps} replications");
    }

    fn on_replication_finish(&self, m: &ReplicationMetrics) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed);
        eprintln!(
            "[mpvsim] rep {rep} (seed {seed}): {events} events in {ms:.1} ms \
             ({eps:.0} ev/s, peak heap {peak}) [{done}/{total}]",
            rep = m.rep,
            seed = m.seed,
            events = m.sim.events_processed,
            ms = m.wall.as_secs_f64() * 1e3,
            eps = m.events_per_sec(),
            peak = m.sim.peak_pending_events,
        );
    }

    fn on_experiment_finish(&self, m: &ExperimentMetrics) {
        eprintln!(
            "[mpvsim] done: {reps} replications, {events} events in {secs:.2} s ({eps:.0} ev/s)",
            reps = m.reps,
            events = m.events_processed,
            secs = m.wall.as_secs_f64(),
            eps = m.events_per_sec(),
        );
    }
}

/// Machine-readable metrics: one JSON object per line (JSONL).
///
/// Per replication:
///
/// ```json
/// {"type":"replication","rep":0,"seed":42,"wall_ms":12.345,
///  "events_processed":9876,"peak_pending_events":120,"peak_event_bytes":5760,
///  "events_per_sec":800000.0}
/// ```
///
/// and one summary line per experiment:
///
/// ```json
/// {"type":"experiment","reps":10,"wall_ms":123.456,
///  "events_processed":98760,"peak_pending_events":120,"peak_event_bytes":5760,
///  "events_per_sec":800000.0}
/// ```
///
/// The schema is flat and numeric, so the lines are emitted without a
/// JSON library; I/O errors are reported once on stderr and otherwise
/// ignored (telemetry must never abort an experiment). Buffered lines
/// are flushed on `on_experiment_finish` *and* on drop, so a run that
/// errors out mid-experiment still leaves its replication lines on disk.
pub struct JsonlObserver {
    out: Mutex<BufWriter<File>>,
}

impl JsonlObserver {
    /// Creates (truncating) the metrics file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlObserver { out: Mutex::new(BufWriter::new(file)) })
    }

    fn write_line(&self, line: fmt::Arguments<'_>) {
        let mut out = self.out.lock();
        if let Err(e) = out.write_fmt(format_args!("{line}\n")) {
            mpvsim_obs::log::error(
                LOG_TARGET,
                "metrics write failed",
                &[("error", e.to_string().into())],
            );
        }
    }

    fn flush(&self) {
        if let Err(e) = self.out.lock().flush() {
            mpvsim_obs::log::error(
                LOG_TARGET,
                "metrics flush failed",
                &[("error", e.to_string().into())],
            );
        }
    }
}

impl Drop for JsonlObserver {
    fn drop(&mut self) {
        // An aborted experiment never reaches `on_experiment_finish`;
        // without this, every line still in the BufWriter would be lost
        // (BufWriter's own drop flushes, but swallows errors silently).
        self.flush();
    }
}

impl fmt::Debug for JsonlObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonlObserver(..)")
    }
}

impl ExperimentObserver for JsonlObserver {
    fn on_replication_finish(&self, m: &ReplicationMetrics) {
        self.write_line(format_args!(
            "{{\"type\":\"replication\",\"rep\":{rep},\"seed\":{seed},\"wall_ms\":{ms:.3},\
             \"events_processed\":{events},\"peak_pending_events\":{peak},\
             \"peak_event_bytes\":{bytes},\"events_per_sec\":{eps:.3}}}",
            rep = m.rep,
            seed = m.seed,
            ms = m.wall.as_secs_f64() * 1e3,
            events = m.sim.events_processed,
            peak = m.sim.peak_pending_events,
            bytes = m.sim.peak_event_bytes,
            eps = m.events_per_sec(),
        ));
    }

    fn on_experiment_finish(&self, m: &ExperimentMetrics) {
        self.write_line(format_args!(
            "{{\"type\":\"experiment\",\"reps\":{reps},\"wall_ms\":{ms:.3},\
             \"events_processed\":{events},\"peak_pending_events\":{peak},\
             \"peak_event_bytes\":{bytes},\"events_per_sec\":{eps:.3}}}",
            reps = m.reps,
            ms = m.wall.as_secs_f64() * 1e3,
            events = m.events_processed,
            peak = m.peak_pending_events,
            bytes = m.peak_event_bytes,
            eps = m.events_per_sec(),
        ));
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn metrics(rep: u64) -> ReplicationMetrics {
        ReplicationMetrics {
            rep,
            seed: 1000 + rep,
            wall: Duration::from_millis(20),
            sim: SimMetrics {
                events_processed: 4000,
                peak_pending_events: 37,
                peak_event_bytes: 37 * 40,
            },
        }
    }

    #[test]
    fn events_per_sec_guards_zero_wall() {
        let mut m = metrics(0);
        assert!((m.events_per_sec() - 200_000.0).abs() < 1e-6);
        m.wall = Duration::ZERO;
        assert_eq!(m.events_per_sec(), 0.0);
        let e = ExperimentMetrics {
            reps: 2,
            wall: Duration::ZERO,
            events_processed: 10,
            peak_pending_events: 5,
            peak_event_bytes: 200,
        };
        assert_eq!(e.events_per_sec(), 0.0);
    }

    #[test]
    fn noop_observer_accepts_all_hooks() {
        let o = NoopObserver;
        o.on_experiment_start(3);
        o.on_replication_start(0, 42);
        o.on_replication_finish(&metrics(0));
        o.on_experiment_finish(&ExperimentMetrics {
            reps: 3,
            wall: Duration::from_secs(1),
            events_processed: 12,
            peak_pending_events: 4,
            peak_event_bytes: 160,
        });
    }

    #[derive(Default)]
    struct Counting {
        starts: AtomicUsize,
        finishes: AtomicUsize,
    }

    impl ExperimentObserver for Counting {
        fn on_replication_start(&self, _rep: u64, _seed: u64) {
            self.starts.fetch_add(1, Ordering::Relaxed);
        }
        fn on_replication_finish(&self, _m: &ReplicationMetrics) {
            self.finishes.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        let a = Arc::new(Counting::default());
        let b = Arc::new(Counting::default());
        let mut fan = FanoutObserver::new();
        assert!(fan.is_empty());
        fan.sinks.push(a.clone());
        fan.sinks.push(b.clone());
        assert_eq!(fan.len(), 2);
        fan.on_replication_start(0, 7);
        fan.on_replication_finish(&metrics(0));
        for o in [&a, &b] {
            assert_eq!(o.starts.load(Ordering::Relaxed), 1);
            assert_eq!(o.finishes.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn observer_handle_defaults_to_noop_and_shares() {
        let h = ObserverHandle::default();
        h.on_experiment_start(1); // deref to the trait
        let counting = Arc::new(Counting::default());
        let h = ObserverHandle::from_arc(counting.clone());
        let shared = h.shared();
        shared.on_replication_start(0, 1);
        h.on_replication_start(1, 2);
        assert_eq!(counting.starts.load(Ordering::Relaxed), 2);
        assert!(format!("{h:?}").contains("ObserverHandle"));
    }

    #[test]
    fn jsonl_lines_are_valid_and_flat() {
        let dir = std::env::temp_dir().join("mpvsim-observe-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let o = JsonlObserver::create(&path).expect("create metrics file");
        o.on_experiment_start(2);
        o.on_replication_finish(&metrics(0));
        o.on_replication_finish(&metrics(1));
        o.on_experiment_finish(&ExperimentMetrics {
            reps: 2,
            wall: Duration::from_millis(50),
            events_processed: 8000,
            peak_pending_events: 37,
            peak_event_bytes: 37 * 40,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 replication lines + 1 summary: {text}");
        for line in &lines[..2] {
            assert!(line.starts_with("{\"type\":\"replication\""), "{line}");
            for key in [
                "\"rep\":",
                "\"seed\":",
                "\"wall_ms\":",
                "\"events_processed\":",
                "\"peak_event_bytes\":",
                "\"events_per_sec\":",
            ] {
                assert!(line.contains(key), "{line} missing {key}");
            }
            // Flat object: braces only at the ends, no nesting.
            assert!(line.ends_with('}'));
            assert_eq!(line.matches('{').count(), 1);
            assert_eq!(line.matches('}').count(), 1);
        }
        assert!(lines[2].starts_with("{\"type\":\"experiment\""), "{}", lines[2]);
        assert!(lines[2].contains("\"reps\":2"));
        assert!(lines[2].contains("\"peak_pending_events\":37"), "{}", lines[2]);
        assert!(lines[2].contains("\"peak_event_bytes\":1480"), "{}", lines[2]);
    }

    #[test]
    fn jsonl_drop_flushes_buffered_lines() {
        let dir = std::env::temp_dir().join("mpvsim-observe-drop-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("aborted.jsonl");
        {
            let o = JsonlObserver::create(&path).expect("create metrics file");
            o.on_replication_finish(&metrics(0));
            // Simulate an aborted experiment: `on_experiment_finish` is
            // never called; the observer is just dropped.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "buffered line lost on drop: {text:?}");
        assert!(text.starts_with("{\"type\":\"replication\""), "{text}");
    }
}
