//! Integration tests for the streaming experiment engine: the online
//! aggregate must be bit-identical to the batch path, observers must be
//! pure taps, `retain_runs(false)` must not change the statistics, and a
//! replication failure must surface as an error — never a panic — at any
//! thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;

use mpvsim::prelude::*;
use mpvsim::stats::aggregate::aggregate;
use mpvsim::stats::summary::Z_95;

const SEED: u64 = 20_07;

fn config(population: usize) -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
    c.population = PopulationConfig::paper_default(population);
    c.horizon = SimDuration::from_hours(8);
    c
}

// ---------------------------------------------------------------------
// OnlineAggregate vs batch aggregate
// ---------------------------------------------------------------------

/// A ragged pile of series sharing one step: each series has its own
/// length and values, so plateau extension is exercised constantly.
fn ragged_series() -> impl Strategy<Value = Vec<TimeSeries>> {
    prop::collection::vec(prop::collection::vec(-1.0e3f64..1.0e3, 1..24), 1..12)
        .prop_map(|rows| rows.into_iter().map(|v| TimeSeries::from_values(0.5, v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming one series at a time gives the exact bits of the batch
    /// call, on any ragged input.
    #[test]
    fn online_aggregate_matches_batch_on_ragged_series(series in ragged_series()) {
        let batch = aggregate(&series).expect("non-empty input");
        let mut online = OnlineAggregate::new();
        for s in &series {
            online.push(s);
        }
        let streamed = online.finalize().expect("non-empty input");
        prop_assert_eq!(batch, streamed);
    }

    /// The streamed mean/CI agree with an independent two-pass
    /// computation over the plateau-extended matrix, not just with the
    /// batch code path.
    #[test]
    fn online_aggregate_matches_a_two_pass_reference(series in ragged_series()) {
        let streamed = {
            let mut online = OnlineAggregate::new();
            for s in &series {
                online.push(s);
            }
            online.finalize().expect("non-empty input")
        };
        let len = series.iter().map(|s| s.len()).max().unwrap();
        for k in 0..len {
            // Plateau extension: a short series holds its final value.
            let column: Vec<f64> = series
                .iter()
                .map(|s| {
                    let vals = s.values();
                    vals[k.min(vals.len() - 1)]
                })
                .collect();
            let n = column.len() as f64;
            let mean: f64 = column.iter().sum::<f64>() / n;
            prop_assert!(
                (streamed.mean[k] - mean).abs() <= 1e-9 * (1.0 + mean.abs()),
                "mean at point {} diverged: {} vs reference {}",
                k, streamed.mean[k], mean
            );
            let var = if column.len() > 1 {
                column.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            let ci = Z_95 * (var / n).sqrt();
            prop_assert!(
                (streamed.ci95_half_width[k] - ci).abs() <= 1e-6 * (1.0 + ci.abs()),
                "ci at point {} diverged: {} vs reference {}",
                k, streamed.ci95_half_width[k], ci
            );
        }
    }
}

// ---------------------------------------------------------------------
// Observers are pure taps
// ---------------------------------------------------------------------

#[derive(Default)]
struct Recording {
    started: AtomicU64,
    finished: AtomicU64,
    finish_order: Mutex<Vec<u64>>,
    events: AtomicU64,
}

impl ExperimentObserver for Recording {
    fn on_replication_start(&self, _rep: u64, _seed: u64) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }

    fn on_replication_finish(&self, metrics: &ReplicationMetrics) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        self.finish_order.lock().unwrap().push(metrics.rep);
        self.events.fetch_add(metrics.sim.events_processed, Ordering::Relaxed);
    }
}

#[test]
fn results_are_bit_identical_with_and_without_an_observer_at_any_thread_count() {
    let c = config(150);
    let reference = ExperimentPlan::new(5)
        .master_seed(SEED)
        .engine(EngineOptions::new())
        .run(&c)
        .expect("valid");
    for threads in [1, 2, 4, 8] {
        let observed = ExperimentPlan::new(5)
            .master_seed(SEED)
            .engine(EngineOptions::new().with_threads(threads))
            .observer(Recording::default())
            .run(&c)
            .expect("valid");
        assert_eq!(reference.aggregate, observed.aggregate, "threads = {threads}");
        assert_eq!(reference.final_infected, observed.final_infected, "threads = {threads}");
        for (a, b) in reference.runs.iter().zip(&observed.runs) {
            assert_eq!(a.final_infected, b.final_infected);
            assert_eq!(a.series, b.series);
        }
    }
}

#[test]
fn observer_sees_every_replication_in_order_with_real_metrics() {
    let c = config(120);
    let recording = std::sync::Arc::new(Recording::default());
    let result = ExperimentPlan::new(6)
        .master_seed(SEED)
        .engine(EngineOptions::new().with_threads(3))
        .observer_handle(ObserverHandle::from_arc(recording.clone()))
        .run(&c)
        .expect("valid");
    assert_eq!(result.runs.len(), 6);
    assert_eq!(recording.started.load(Ordering::Relaxed), 6);
    assert_eq!(recording.finished.load(Ordering::Relaxed), 6);
    let order = recording.finish_order.lock().unwrap().clone();
    assert_eq!(order, vec![0, 1, 2, 3, 4, 5], "finish hooks fire in replication order");
    assert!(recording.events.load(Ordering::Relaxed) > 0, "an epidemic run must process events");
}

// ---------------------------------------------------------------------
// retain_runs(false)
// ---------------------------------------------------------------------

#[test]
fn discarding_runs_changes_nothing_but_the_runs_vec() {
    let c = config(150);
    let four = EngineOptions::new().with_threads(4);
    let kept = ExperimentPlan::new(5).master_seed(SEED).engine(four).run(&c).expect("valid");
    let streamed = ExperimentPlan::new(5)
        .master_seed(SEED)
        .engine(four)
        .retain_runs(false)
        .run(&c)
        .expect("valid");
    assert!(streamed.runs.is_empty(), "retain_runs(false) must not keep per-run results");
    assert_eq!(kept.runs.len(), 5);
    assert_eq!(kept.aggregate, streamed.aggregate);
    assert_eq!(kept.final_infected, streamed.final_infected);
}

// ---------------------------------------------------------------------
// Per-seed failure is an error, not a panic
// ---------------------------------------------------------------------

#[test]
fn an_exhausted_event_budget_is_reported_not_panicked_at_any_thread_count() {
    let mut c = config(150);
    c.event_budget = Some(50);
    let serial = ExperimentPlan::new(4)
        .master_seed(SEED)
        .engine(EngineOptions::new())
        .run(&c)
        .expect_err("50 events cannot cover an epidemic");
    for threads in [2, 4, 8] {
        let parallel = ExperimentPlan::new(4)
            .master_seed(SEED)
            .engine(EngineOptions::new().with_threads(threads))
            .run(&c)
            .expect_err("50 events cannot cover an epidemic");
        assert_eq!(serial, parallel, "the reported failure must not depend on thread count");
    }
}
