//! Integration tests for the beyond-the-paper extensions: legitimate
//! traffic & monitoring false positives, piggyback viruses, rollout
//! ordering, gateway congestion, and the Bluetooth vector — each at a
//! reduced scale.

use mpvsim::prelude::*;

const N: usize = 250;
const SEED: u64 = 909;

fn plan(reps: u64) -> ExperimentPlan {
    ExperimentPlan::new(reps).master_seed(SEED).engine(EngineOptions::new().with_threads(4))
}

fn reduced(virus: VirusProfile, horizon: SimDuration) -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(virus);
    c.population = PopulationConfig::paper_default(N);
    c.horizon = horizon;
    c
}

#[test]
fn false_positive_rate_decreases_with_threshold() {
    let arm = |threshold: u32| -> (f64, u64) {
        let mut c = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
        c.behavior = BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
        c.response = ResponseConfig::none().with_monitoring(Monitoring {
            window: SimDuration::from_hours(1),
            threshold,
            forced_wait: SimDuration::from_mins(30),
        });
        let e = plan(3).run(&c).expect("valid");
        let fp: u64 = e.runs.iter().map(|r| r.stats.false_positive_throttles).sum();
        (e.final_infected.mean, fp)
    };
    let (contained_strict, fp_strict) = arm(2);
    let (contained_loose, fp_loose) = arm(10);
    assert!(
        fp_strict > fp_loose,
        "a stricter threshold must flag more innocents: {fp_strict} vs {fp_loose}"
    );
    assert!(
        contained_strict <= contained_loose + 5.0,
        "a stricter threshold must contain at least as well"
    );
    assert_eq!(fp_loose, 0, "threshold 10/h should never flag ≈6-msgs/day users");
}

#[test]
fn legitimate_traffic_does_not_change_the_epidemic_without_monitoring() {
    // Legit messages carry no virus and (absent monitoring/congestion)
    // share no state with the epidemic — but they do consume RNG draws,
    // so compare statistically, not exactly.
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let mut chatty = base.clone();
    chatty.behavior = BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
    let quiet = plan(4).run(&base).expect("valid").final_infected.mean;
    let noisy = plan(4).run(&chatty).expect("valid").final_infected.mean;
    assert!(
        (quiet - noisy).abs() < 0.2 * quiet.max(1.0),
        "legitimate chatter should not shift the plateau: {quiet:.1} vs {noisy:.1}"
    );
}

#[test]
fn piggyback_virus4_behaves_like_the_rate_paced_substitution() {
    // The DESIGN.md substitution claim, at integration scale: both
    // semantics produce plateaus of the same order on the same horizon.
    let horizon = SimDuration::from_days(10);
    let mut rate_paced = reduced(VirusProfile::virus4(), horizon);
    rate_paced.behavior = BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
    let mut piggyback = reduced(VirusProfile::virus4_piggyback(), horizon);
    piggyback.behavior = BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));

    let a = plan(3).run(&rate_paced).expect("valid").final_infected.mean;
    let b = plan(3).run(&piggyback).expect("valid").final_infected.mean;
    assert!(a > 5.0 && b > 5.0, "both semantics must spread: {a:.1} vs {b:.1}");
    let ratio = a.max(b) / a.min(b).max(1.0);
    assert!(
        ratio < 4.0,
        "the two Virus 4 semantics should be the same order of magnitude: {a:.1} vs {b:.1}"
    );
}

#[test]
fn hubs_first_rollout_never_loses_to_uniform_on_power_law() {
    let horizon = SimDuration::from_days(7);
    let arm = |imm: Immunization| -> f64 {
        let c = reduced(VirusProfile::virus1(), horizon)
            .with_response(ResponseConfig::none().with_immunization(imm));
        plan(4).run(&c).expect("valid").final_infected.mean
    };
    let uniform =
        arm(Immunization::uniform(SimDuration::from_hours(24), SimDuration::from_hours(24)));
    let hubs =
        arm(Immunization::hubs_first(SimDuration::from_hours(24), SimDuration::from_hours(24)));
    assert!(
        hubs <= uniform * 1.25 + 3.0,
        "hubs-first ({hubs:.1}) should be competitive with uniform ({uniform:.1})"
    );
}

#[test]
fn congestion_builds_backlog_without_rescuing_the_population() {
    let base = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let mut congested = base.clone();
    congested.gateway_capacity_per_hour = Some(300);

    let free = plan(3).run(&base).expect("valid");
    let jammed = plan(3).run(&congested).expect("valid");

    let peak =
        jammed.runs.iter().filter_map(|r| r.gateway_peak_delay).max().expect("queue configured");
    assert!(
        peak > SimDuration::from_hours(1),
        "Virus 3 against 300 msgs/h must congest the gateway: peak {peak}"
    );
    assert!(free.runs.iter().all(|r| r.gateway_peak_delay.is_none()));
    // Congestion delays but does not durably protect.
    assert!(
        jammed.final_infected.mean > 0.5 * free.final_infected.mean,
        "congestion is not a defense: {:.1} vs {:.1}",
        jammed.final_infected.mean,
        free.final_infected.mean
    );
}

#[test]
fn gateway_capacity_validation() {
    let mut c = reduced(VirusProfile::virus1(), SimDuration::from_hours(2));
    c.gateway_capacity_per_hour = Some(0);
    assert!(c.validate().is_err());
    c.gateway_capacity_per_hour = Some(10_000);
    assert!(c.validate().is_err(), "sub-second service times unsupported");
    c.gateway_capacity_per_hour = Some(1200);
    assert!(c.validate().is_ok());
}

#[test]
fn bluetooth_worm_spreads_at_integration_scale() {
    let mut c = reduced(VirusProfile::bluetooth_worm(), SimDuration::from_hours(48));
    c.mobility = Some(MobilityConfig::downtown());
    let e = plan(3).run(&c).expect("valid");
    assert!(
        e.final_infected.mean > 10.0,
        "a 250-phone downtown should sustain the worm: {:.1}",
        e.final_infected.mean
    );
    for r in &e.runs {
        assert_eq!(r.stats.messages_sent, 0);
        assert!(r.stats.bluetooth_offers > 0);
    }
}

#[test]
fn adaptive_replication_reaches_a_reasonable_ci() {
    let c = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let adaptive = plan(40).run_adaptive(&c, 12.0, 3, 40).expect("valid");
    assert!(adaptive.result.runs.len() >= 3);
    if adaptive.converged {
        assert!(
            adaptive.result.final_infected.ci95_half_width <= 12.0 + 1e-9,
            "converged but CI half-width is {}",
            adaptive.result.final_infected.ci95_half_width
        );
    } else {
        assert_eq!(adaptive.result.runs.len(), 40, "must exhaust max_reps if not converged");
    }
}
