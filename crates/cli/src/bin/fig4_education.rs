//! Deprecated shim: forwards to `mpvsim study fig4_education`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig4_education");
}
