//! Replication-scoped buffer recycling.
//!
//! A sweep runs thousands of replications, and each one allocates the same
//! set of population-sized flat arrays (packed phone state, inbox depths,
//! gateway ring slabs). [`BufferPool`] keeps those allocations alive across
//! replications: a structure built `_pooled` takes its backing `Vec`s from
//! the pool (clear + resize, no fresh heap allocation once warm) and gives
//! them back with `recycle` when the replication ends. The reset is a bump:
//! `clear()` + `resize(len, fill)` rewinds the buffer without releasing its
//! capacity.
//!
//! The pool is plain data — keep one per worker thread (e.g. in a
//! `thread_local!`) and no synchronization is needed. Pooling is purely an
//! allocation strategy: a pooled structure is bit-identical to a freshly
//! allocated one, which is what lets the arena layout ride the validation
//! matrix as a variant axis.

/// A recycling pool of population-sized flat buffers, typed by element.
///
/// ```rust
/// use mpvsim_phonenet::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let v = pool.take_u32(4, 7);
/// assert_eq!(v, vec![7, 7, 7, 7]);
/// pool.recycle_u32(v);
/// let w = pool.take_u32(2, 0);
/// assert_eq!(w, vec![0, 0]); // reused allocation, rewound and refilled
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    u8s: Vec<Vec<u8>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
}

/// Buffers retained per element type; beyond this, recycled buffers are
/// simply dropped. One replication needs only a handful of arrays, so a
/// small bound caps worst-case pool residency.
const MAX_POOLED: usize = 16;

fn take<T: Copy>(pool: &mut Vec<Vec<T>>, len: usize, fill: T) -> Vec<T> {
    match pool.pop() {
        Some(mut v) => {
            v.clear();
            v.resize(len, fill);
            v
        }
        None => vec![fill; len],
    }
}

fn recycle<T>(pool: &mut Vec<Vec<T>>, v: Vec<T>) {
    if pool.len() < MAX_POOLED {
        pool.push(v);
    }
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a `Vec<u8>` of length `len` filled with `fill`, reusing a
    /// recycled allocation when one is available.
    pub fn take_u8(&mut self, len: usize, fill: u8) -> Vec<u8> {
        take(&mut self.u8s, len, fill)
    }

    /// Takes a `Vec<u32>` of length `len` filled with `fill`.
    pub fn take_u32(&mut self, len: usize, fill: u32) -> Vec<u32> {
        take(&mut self.u32s, len, fill)
    }

    /// Takes a `Vec<u64>` of length `len` filled with `fill`.
    pub fn take_u64(&mut self, len: usize, fill: u64) -> Vec<u64> {
        take(&mut self.u64s, len, fill)
    }

    /// Returns a `u8` buffer to the pool for reuse.
    pub fn recycle_u8(&mut self, v: Vec<u8>) {
        recycle(&mut self.u8s, v);
    }

    /// Returns a `u32` buffer to the pool for reuse.
    pub fn recycle_u32(&mut self, v: Vec<u32>) {
        recycle(&mut self.u32s, v);
    }

    /// Returns a `u64` buffer to the pool for reuse.
    pub fn recycle_u64(&mut self, v: Vec<u64>) {
        recycle(&mut self.u64s, v);
    }

    /// Number of buffers currently parked in the pool (all types).
    pub fn pooled_buffers(&self) -> usize {
        self.u8s.len() + self.u32s.len() + self.u64s.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_fills_and_sizes() {
        let mut pool = BufferPool::new();
        assert_eq!(pool.take_u8(3, 9), vec![9, 9, 9]);
        assert_eq!(pool.take_u64(2, 1), vec![1, 1]);
        assert_eq!(pool.pooled_buffers(), 0);
    }

    #[test]
    fn recycled_buffer_is_rewound_and_refilled() {
        let mut pool = BufferPool::new();
        let mut v = pool.take_u32(4, 5);
        v[2] = 99;
        let cap = v.capacity();
        pool.recycle_u32(v);
        assert_eq!(pool.pooled_buffers(), 1);
        let w = pool.take_u32(3, 0);
        assert_eq!(w, vec![0, 0, 0], "stale contents must not leak through");
        assert_eq!(w.capacity(), cap, "allocation was reused, not freed");
        assert_eq!(pool.pooled_buffers(), 0);
    }

    #[test]
    fn growth_past_recycled_capacity_works() {
        let mut pool = BufferPool::new();
        let small = pool.take_u8(2, 0);
        pool.recycle_u8(small);
        let v = pool.take_u8(100, 3);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|&b| b == 3));
    }

    #[test]
    fn pool_residency_is_bounded() {
        let mut pool = BufferPool::new();
        for _ in 0..(MAX_POOLED + 10) {
            pool.recycle_u32(vec![0; 8]);
        }
        assert_eq!(pool.pooled_buffers(), MAX_POOLED);
    }
}
