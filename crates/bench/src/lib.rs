//! Benchmark-only crate; see the `benches/` directory:
//!
//! * `engine` — event-queue and dispatch microbenchmarks;
//! * `topology` — graph generation/analysis at paper scale;
//! * `model` — per-virus replication cost and response-hook overhead;
//! * `figures` — one bench per paper figure / prose claim.
