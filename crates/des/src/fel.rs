//! Pluggable future-event-list backends.
//!
//! [`EventQueue`](crate::EventQueue) defines *what* a future-event list
//! does (a priority queue with the deterministic `(time, seq)` total
//! order); this module defines *how* the pending set is stored. Two
//! backends implement the [`FutureEventList`] trait:
//!
//! * [`BinaryHeapFel`] — `std::collections::BinaryHeap`, `O(log n)` per
//!   operation. Robust under any schedule shape; the default.
//! * [`CalendarQueue`] — a calendar (bucket) queue in the style of Brown
//!   (1988): a wheel of time buckets of fixed width, giving `O(1)`
//!   amortized schedule/pop when most pending events live a short,
//!   bounded horizon ahead of the clock — exactly the event mix of the
//!   epidemic model, whose send gaps, read delays and reboot cycles are
//!   minutes to hours.
//!
//! Backends are selected with [`FelKind`], from
//! [`Simulation::with_fel`](crate::Simulation::with_fel) or (one level
//! up) `ExperimentPlan::fel` in `mpvsim-core`. Every backend yields the
//! **bit-identical** pop sequence: keys `(time, seq)` are unique and
//! totally ordered, so any correct implementation pops them in the same
//! order, which keeps whole-model trajectories independent of the
//! backend choice (a property the test suite enforces with differential
//! tests).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event with its firing time and tie-breaking sequence number.
///
/// The pair `(time, seq)` is the event's key: unique (sequence numbers
/// are never reused) and totally ordered, which is what makes the pop
/// order — and therefore the whole trajectory — reproducible.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Firing time.
    pub time: SimTime,
    /// Tie-breaking sequence number, assigned in scheduling order.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> Scheduled<E> {
    /// The ordering key.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Which future-event-list backend an [`EventQueue`](crate::EventQueue)
/// (and everything built on it) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FelKind {
    /// `std::collections::BinaryHeap`; `O(log n)` per operation.
    #[default]
    BinaryHeap,
    /// Calendar queue with the default parameters
    /// ([`CalendarQueue::DEFAULT_BUCKET_WIDTH_SECS`],
    /// [`CalendarQueue::DEFAULT_BUCKET_COUNT`]).
    Calendar,
    /// Calendar queue with explicit parameters (see
    /// [`CalendarQueue::with_params`]).
    CalendarTuned {
        /// Width of one bucket, in simulated seconds (must be > 0).
        bucket_width_secs: u64,
        /// Number of buckets on the wheel (must be > 0).
        bucket_count: usize,
    },
}

impl FelKind {
    /// A short machine-readable name ("binary-heap" / "calendar"), used
    /// in benchmark reports.
    pub fn label(self) -> &'static str {
        match self {
            FelKind::BinaryHeap => "binary-heap",
            FelKind::Calendar | FelKind::CalendarTuned { .. } => "calendar",
        }
    }

    /// Parses the name a user passes on a command line (the inverse of
    /// [`FelKind::label`]); tuned calendar parameters are not
    /// expressible by name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "binary-heap" => Some(FelKind::BinaryHeap),
            "calendar" => Some(FelKind::Calendar),
            _ => None,
        }
    }
}

/// Storage strategy for the pending-event set.
///
/// Implementations must pop events in ascending `(time, seq)` order —
/// the order [`Ord`] gives [`Scheduled`] — for *any* interleaving of
/// inserts and pops, including inserts whose key is smaller than
/// already-popped keys (the engine never produces those, but property
/// tests do).
pub trait FutureEventList<E> {
    /// Adds `item` to the pending set.
    fn insert(&mut self, item: Scheduled<E>);

    /// Removes and returns the pending event with the smallest key.
    fn pop(&mut self) -> Option<Scheduled<E>>;

    /// The key of the event [`FutureEventList::pop`] would return.
    ///
    /// Takes `&mut self` because the calendar queue positions its bucket
    /// cursor lazily; the pending set is not changed.
    fn peek(&mut self) -> Option<(SimTime, u64)>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True when nothing is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events.
    fn clear(&mut self);
}

/// The classic heap-backed future-event list.
#[derive(Debug, Clone)]
pub struct BinaryHeapFel<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
}

impl<E> BinaryHeapFel<E> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        BinaryHeapFel { heap: BinaryHeap::new() }
    }
}

impl<E> Default for BinaryHeapFel<E> {
    fn default() -> Self {
        BinaryHeapFel::new()
    }
}

impl<E> FutureEventList<E> for BinaryHeapFel<E> {
    fn insert(&mut self, item: Scheduled<E>) {
        self.heap.push(Reverse(item));
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|Reverse(s)| s)
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(s)| s.key())
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A calendar (bucket) queue: a wheel of `bucket_count` buckets, each
/// covering `bucket_width_secs` of simulated time.
///
/// ## Layout
///
/// Time is divided into *days* (`day = time / bucket_width_secs`; the
/// name follows the calendar metaphor, not the model's 24-hour days).
/// The wheel covers the `bucket_count` days starting at the cursor's
/// day; day `d` maps to slot `d % bucket_count`, so within the window
/// each slot holds exactly one day's events:
///
/// * events in the window go straight into their slot (`O(1)`);
/// * events beyond the window wait in an **overflow** min-heap and
///   migrate onto the wheel as the cursor advances toward them;
/// * events *behind* the cursor's day (possible only under adversarial
///   schedules — the engine's clock never runs backwards) go to an
///   **early** min-heap that [`FutureEventList::pop`] checks first.
///
/// The cursor's own bucket is kept sorted in *descending* key order, so
/// the next event is always the last element: pops are `Vec::pop`, and
/// same-day inserts binary-search their position. Buckets ahead of the
/// cursor stay unsorted and are sorted once on entry. Popping therefore
/// costs `O(1)` amortized plus the (amortized sub-linear) empty-bucket
/// scan; scheduling costs `O(1)` for future buckets and `O(bucket
/// occupancy)` for the current one.
///
/// ## Choosing parameters
///
/// The defaults (64 s × 4096 buckets ≈ a 3-day window) suit the model:
/// nearly all pending events (sends, reads, samples, mobility ticks)
/// fire within minutes to hours, weekly reboot timers ride the overflow
/// heap. Rough guidance: pick `bucket_width_secs` near the median gap
/// between *now* and a newly scheduled event divided by the typical
/// pending count per bucket you can tolerate scanning, and make the
/// window (`width × count`) cover the bulk of scheduling horizons.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    slots: Vec<Vec<Scheduled<E>>>,
    /// Bucket width in simulated seconds.
    width: u64,
    /// Absolute day index (`time / width`) the cursor is on.
    cur_day: u64,
    /// Events currently stored on the wheel (in `slots`).
    wheel_len: usize,
    /// Events behind the cursor's day (adversarial schedules only).
    early: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Events at or beyond the window's end.
    overflow: BinaryHeap<Reverse<Scheduled<E>>>,
    len: usize,
}

impl<E> CalendarQueue<E> {
    /// Default bucket width: 64 simulated seconds.
    pub const DEFAULT_BUCKET_WIDTH_SECS: u64 = 64;
    /// Default wheel size: 4096 buckets (a ≈ 3-day window at the
    /// default width).
    pub const DEFAULT_BUCKET_COUNT: usize = 4096;

    /// Creates an empty queue with the default parameters.
    pub fn new() -> Self {
        Self::with_params(Self::DEFAULT_BUCKET_WIDTH_SECS, Self::DEFAULT_BUCKET_COUNT)
    }

    /// Creates an empty queue with `bucket_count` buckets of
    /// `bucket_width_secs` seconds each.
    ///
    /// # Panics
    ///
    /// Panics when either parameter is zero.
    pub fn with_params(bucket_width_secs: u64, bucket_count: usize) -> Self {
        assert!(bucket_width_secs > 0, "bucket width must be positive");
        assert!(bucket_count > 0, "need at least one bucket");
        CalendarQueue {
            slots: std::iter::repeat_with(Vec::new).take(bucket_count).collect(),
            width: bucket_width_secs,
            cur_day: 0,
            wheel_len: 0,
            early: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn day(&self, t: SimTime) -> u64 {
        t.as_secs() / self.width
    }

    #[inline]
    fn slot_of(&self, day: u64) -> usize {
        (day % self.slots.len() as u64) as usize
    }

    /// Pulls every overflow event whose day now falls inside the window.
    ///
    /// The overflow heap is keyed by `(time, seq)` and days are monotone
    /// in time, so once the top is out of the window the rest are too.
    fn migrate_overflow(&mut self) {
        let n = self.slots.len() as u64;
        while let Some(Reverse(top)) = self.overflow.peek() {
            let d = self.day(top.time);
            debug_assert!(d >= self.cur_day, "overflow event behind the cursor");
            if d - self.cur_day >= n {
                break;
            }
            let Some(Reverse(item)) = self.overflow.pop() else { unreachable!() };
            let slot = self.slot_of(d);
            self.slots[slot].push(item);
            self.wheel_len += 1;
        }
    }

    /// Moves the cursor to the wheel's earliest non-empty bucket and
    /// sorts it. Returns false when the wheel (and overflow) is drained.
    fn settle(&mut self) -> bool {
        loop {
            if !self.slots[self.slot_of(self.cur_day)].is_empty() {
                return true;
            }
            if self.wheel_len > 0 {
                // Some later day in the window holds events; step to it.
                self.cur_day += 1;
            } else {
                // Wheel empty: jump the window to the overflow's first
                // event (or report exhaustion).
                let Some(Reverse(top)) = self.overflow.peek() else {
                    return false;
                };
                self.cur_day = self.day(top.time);
            }
            self.migrate_overflow();
            let slot = self.slot_of(self.cur_day);
            // Descending by key: the next event to pop sits at the end.
            self.slots[slot].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<E> FutureEventList<E> for CalendarQueue<E> {
    fn insert(&mut self, item: Scheduled<E>) {
        self.len += 1;
        let d = self.day(item.time);
        if d < self.cur_day {
            self.early.push(Reverse(item));
            return;
        }
        if d - self.cur_day >= self.slots.len() as u64 {
            self.overflow.push(Reverse(item));
            return;
        }
        let slot = self.slot_of(d);
        if d == self.cur_day {
            // The cursor's bucket is sorted (descending); keep it so.
            let idx = self.slots[slot].partition_point(|s| s.key() > item.key());
            self.slots[slot].insert(idx, item);
        } else {
            self.slots[slot].push(item);
        }
        self.wheel_len += 1;
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let wheel_key = if self.settle() {
            self.slots[self.slot_of(self.cur_day)].last().map(Scheduled::key)
        } else {
            None
        };
        let early_key = self.early.peek().map(|Reverse(s)| s.key());
        let use_early = match (wheel_key, early_key) {
            (Some(w), Some(e)) => e < w,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        self.len -= 1;
        if use_early {
            self.early.pop().map(|Reverse(s)| s)
        } else {
            self.wheel_len -= 1;
            let slot = self.slot_of(self.cur_day);
            self.slots[slot].pop()
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        let wheel_key = if self.settle() {
            self.slots[self.slot_of(self.cur_day)].last().map(Scheduled::key)
        } else {
            None
        };
        let early_key = self.early.peek().map(|Reverse(s)| s.key());
        match (wheel_key, early_key) {
            (Some(w), Some(e)) => Some(if e < w { e } else { w }),
            (w, e) => w.or(e),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.early.clear();
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
        self.cur_day = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(time: u64, seq: u64) -> Scheduled<u64> {
        Scheduled { time: SimTime::from_secs(time), seq, event: seq }
    }

    /// Tiny wheel so every test exercises wrap-around, overflow
    /// migration and window jumps.
    fn tiny_calendar() -> CalendarQueue<u64> {
        CalendarQueue::with_params(4, 8)
    }

    #[test]
    fn calendar_pops_in_key_order() {
        let mut q = tiny_calendar();
        // Same bucket, different buckets, overflow, equal times.
        for (i, t) in [100u64, 3, 3, 50, 0, 7, 1000, 31, 32].iter().enumerate() {
            q.insert(item(*t, i as u64));
        }
        let mut keys = Vec::new();
        while let Some(s) = q.pop() {
            keys.push(s.key());
        }
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn calendar_handles_inserts_behind_the_cursor() {
        let mut q = tiny_calendar();
        q.insert(item(500, 0));
        assert_eq!(q.pop().unwrap().seq, 0); // cursor now far along
        q.insert(item(1, 1)); // behind the cursor: early heap
        q.insert(item(600, 2));
        assert_eq!(q.pop().unwrap().seq, 1, "past insert must pop first");
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_peek_matches_pop_and_preserves_len() {
        let mut q = tiny_calendar();
        assert_eq!(q.peek(), None);
        for (i, t) in [900u64, 4, 4, 200].iter().enumerate() {
            q.insert(item(*t, i as u64));
        }
        while !q.is_empty() {
            let before = q.len();
            let peeked = q.peek().unwrap();
            assert_eq!(q.len(), before, "peek must not consume");
            assert_eq!(q.pop().unwrap().key(), peeked);
        }
    }

    #[test]
    fn calendar_clear_resets() {
        let mut q = tiny_calendar();
        for t in [1u64, 100, 10_000] {
            q.insert(item(t, t));
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        q.insert(item(2, 9));
        assert_eq!(q.pop().unwrap().seq, 9, "queue must be reusable after clear");
    }

    #[test]
    fn same_timestamp_events_pop_in_scheduling_order() {
        // Many events at one instant: `(time, seq)` makes the tie-break
        // FIFO in scheduling order, on both backends.
        let mut heap = BinaryHeapFel::new();
        let mut cal = tiny_calendar();
        // Interleave the inserts of two instants to rule out accidental
        // insertion-order luck inside a bucket.
        for seq in 0u64..12 {
            let t = if seq % 2 == 0 { 40 } else { 8 };
            heap.insert(item(t, seq));
            cal.insert(item(t, seq));
        }
        let expected: Vec<(SimTime, u64)> = [
            (8u64, 1u64),
            (8, 3),
            (8, 5),
            (8, 7),
            (8, 9),
            (8, 11),
            (40, 0),
            (40, 2),
            (40, 4),
            (40, 6),
            (40, 8),
            (40, 10),
        ]
        .iter()
        .map(|&(t, s)| (SimTime::from_secs(t), s))
        .collect();
        let heap_keys: Vec<_> = std::iter::from_fn(|| heap.pop().map(|s| s.key())).collect();
        let cal_keys: Vec<_> = std::iter::from_fn(|| cal.pop().map(|s| s.key())).collect();
        assert_eq!(heap_keys, expected);
        assert_eq!(cal_keys, expected);
    }

    #[test]
    fn zero_delay_reschedules_pop_immediately_and_in_order() {
        // The model schedules zero-delay follow-ups (e.g. a message read
        // the instant it arrives). Popping an event and inserting a new
        // one at the *same* time must yield it next — before anything
        // later — even though the calendar cursor already sits on that
        // bucket, and repeatedly at the same instant.
        for backend in 0..2 {
            let mut q: Box<dyn FutureEventList<u64>> = if backend == 0 {
                Box::new(BinaryHeapFel::new())
            } else {
                Box::new(tiny_calendar())
            };
            q.insert(item(5, 0));
            q.insert(item(9, 1));
            let first = q.pop().unwrap();
            assert_eq!(first.key(), (SimTime::from_secs(5), 0));
            // Chain three zero-delay events at t = 5.
            for seq in 2u64..5 {
                q.insert(item(5, seq));
            }
            for seq in 2u64..5 {
                let s = q.pop().unwrap();
                assert_eq!(
                    s.key(),
                    (SimTime::from_secs(5), seq),
                    "zero-delay chain broke on backend {backend}"
                );
            }
            assert_eq!(q.pop().unwrap().key(), (SimTime::from_secs(9), 1));
            assert!(q.pop().is_none());
        }
    }

    /// Drives two backends through the same operation sequence and
    /// checks the pop streams are identical.
    fn differential(ops: &[Option<u64>], calendar: CalendarQueue<u64>) {
        let mut heap = BinaryHeapFel::new();
        let mut cal = calendar;
        let mut seq = 0u64;
        for op in ops {
            match op {
                Some(t) => {
                    heap.insert(item(*t, seq));
                    cal.insert(item(*t, seq));
                    seq += 1;
                }
                None => {
                    assert_eq!(heap.peek(), cal.peek(), "peek diverged");
                    let a = heap.pop().map(|s| s.key());
                    let b = cal.pop().map(|s| s.key());
                    assert_eq!(a, b, "pop diverged");
                }
            }
            assert_eq!(heap.len(), cal.len(), "len diverged");
        }
        // Drain both to the end.
        loop {
            let a = heap.pop().map(|s| s.key());
            let b = cal.pop().map(|s| s.key());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Any interleaving of schedule/pop yields the identical pop
        /// sequence from the binary-heap and calendar backends — with a
        /// wheel tiny enough that wrap, overflow and jumps all happen.
        #[test]
        fn prop_backends_agree(
            ops in proptest::collection::vec(
                proptest::option::weighted(0.6, 0u64..10_000), 0..400),
        ) {
            differential(&ops, CalendarQueue::with_params(4, 8));
        }

        /// Same, with sub-bucket times (many events per bucket) and a
        /// single-bucket wheel (everything overflows or collides).
        #[test]
        fn prop_backends_agree_degenerate(
            ops in proptest::collection::vec(
                proptest::option::weighted(0.6, 0u64..40), 0..200),
        ) {
            differential(&ops, CalendarQueue::with_params(16, 1));
        }
    }
}
