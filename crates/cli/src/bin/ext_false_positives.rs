//! Deprecated shim: forwards to `mpvsim study ext_false_positives`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("ext_false_positives");
}
