//! Deprecated shim: forwards to `mpvsim study combo`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("combo");
}
