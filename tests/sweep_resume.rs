//! Integration tests: the sweep store is a checkpoint, not a cache.
//!
//! An interrupted sweep that is resumed must leave the results directory
//! byte-identical to an uninterrupted run of the same spec — same
//! manifest, same cell files, same aggregates down to the last f64 bit.
//! That property is what lets a killed overnight sweep be restarted
//! without invalidating anything already on disk.

use std::fs;
use std::path::{Path, PathBuf};

use mpvsim::core::figures::FigureOptions;
use mpvsim::core::sweep::{resume_sweep, run_sweep, SweepOptions, SweepReport, SweepSpec};
use mpvsim::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpvsim-sweep-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_spec(name: &str) -> SweepSpec {
    let opts = FigureOptions { reps: 2, population: 120, ..FigureOptions::default() };
    let studies = [StudyId::from_name("fig7_blacklist").expect("registered")];
    SweepSpec::from_studies(name, &studies, &opts).expect("valid spec")
}

fn sweep_opts() -> SweepOptions {
    SweepOptions { cell_workers: 2, ..SweepOptions::default() }
}

fn aggregate_bits(report: &SweepReport) -> Vec<(String, Vec<u64>, Vec<u64>)> {
    report
        .cells
        .iter()
        .map(|c| {
            (
                c.id.clone(),
                c.aggregate.mean.iter().map(|x| x.to_bits()).collect(),
                c.aggregate.ci95_half_width.iter().map(|x| x.to_bits()).collect(),
            )
        })
        .collect()
}

/// Every file under `dir`, relative path → raw bytes, sorted by path.
fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("readable dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).expect("under root");
                out.push((
                    rel.to_string_lossy().into_owned(),
                    fs::read(&path).expect("readable file"),
                ));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn interrupted_then_resumed_sweep_is_byte_identical_to_uninterrupted() {
    let spec = small_spec("resume-parity");
    let dir_full = tmp_dir("full");
    let dir_cut = tmp_dir("cut");

    // Reference: one uninterrupted run.
    let full = run_sweep(&spec, &dir_full, &sweep_opts()).expect("sweep runs");
    assert_eq!(full.remaining, 0);
    assert_eq!(full.executed, spec.cells.len());

    // Interrupt after two cells (the in-process stand-in for a kill)...
    let cut = run_sweep(&spec, &dir_cut, &SweepOptions { max_cells: Some(2), ..sweep_opts() })
        .expect("sweep starts");
    assert_eq!(cut.executed, 2);
    assert!(cut.remaining > 0, "interruption should leave work behind");

    // ...then resume from the store alone (no spec in hand).
    let resumed = resume_sweep(&dir_cut, &sweep_opts()).expect("sweep resumes");
    assert_eq!(resumed.skipped, 2, "completed cells must not re-run");
    assert_eq!(resumed.remaining, 0);
    assert_eq!(resumed.executed, spec.cells.len() - 2);

    // The reports agree to the bit...
    assert_eq!(aggregate_bits(&full), aggregate_bits(&resumed));
    // ...and so does everything on disk, byte for byte.
    let a = snapshot(&dir_full);
    let b = snapshot(&dir_cut);
    let names = |s: &[(String, Vec<u8>)]| s.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(names(&a), names(&b), "store layouts differ");
    for ((name, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "{name} differs between full and resumed runs");
    }

    let _ = fs::remove_dir_all(&dir_full);
    let _ = fs::remove_dir_all(&dir_cut);
}

#[test]
fn rerunning_a_complete_sweep_executes_nothing() {
    let spec = small_spec("idempotent");
    let dir = tmp_dir("idempotent");

    let first = run_sweep(&spec, &dir, &sweep_opts()).expect("sweep runs");
    assert_eq!(first.remaining, 0);
    assert!(first.cache.hits > 0, "fig7 cells share one network; the topology cache must get hits");

    let again = run_sweep(&spec, &dir, &sweep_opts()).expect("re-entry is safe");
    assert_eq!(again.executed, 0);
    assert_eq!(again.skipped, spec.cells.len());
    assert_eq!(aggregate_bits(&first), aggregate_bits(&again));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_refuses_a_different_spec() {
    let dir = tmp_dir("mismatch");
    run_sweep(&small_spec("original"), &dir, &sweep_opts()).expect("sweep runs");

    let err = run_sweep(&small_spec("imposter"), &dir, &sweep_opts())
        .expect_err("a different spec must not reuse the store");
    assert!(err.to_string().contains("different sweep"), "unexpected error: {err}");

    let _ = fs::remove_dir_all(&dir);
}
