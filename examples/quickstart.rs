//! Quickstart: simulate the paper's Virus 1 baseline and print its
//! infection curve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpvsim::prelude::*;
use mpvsim::stats::render::ascii_chart;

fn main() -> Result<(), ConfigError> {
    // The paper's baseline scenario for Virus 1: 1000 phones, 800
    // vulnerable, power-law contact lists of mean size 80, one initially
    // infected phone, observed for 18 days.
    let config = ScenarioConfig::baseline(VirusProfile::virus1());

    // A single replication, fully determined by (config, seed).
    let run = run_scenario(&config, 2007)?;
    println!(
        "single replication: {} of {} phones infected after {} h",
        run.final_infected,
        config.population.size(),
        config.horizon.as_hours_f64(),
    );

    // Averaging a few replications gives the expected trajectory the
    // paper plots (with a confidence band).
    let experiment = ExperimentPlan::new(5)
        .master_seed(2007)
        .engine(EngineOptions::new().with_threads(4))
        .run(&config)?;
    println!(
        "mean final infections over {} replications: {:.1} ± {:.1}",
        experiment.final_infected.n,
        experiment.final_infected.mean,
        experiment.final_infected.ci95_half_width,
    );
    if let Some(t) = experiment.mean_time_to_reach(160.0) {
        println!("mean time to 160 infections (half the plateau): {t:.1} h");
    }

    let mean = experiment.mean_series();
    println!("\n{}", ascii_chart(&[("Virus 1 baseline", &mean)], 70, 15, Some(330.0)));
    Ok(())
}
