//! Deprecated shim: forwards to `mpvsim study scaling`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("scaling");
}
