//! Deterministic edge-cut partitioning of the CSR contact graph.
//!
//! The sharded engine assigns every phone to exactly one shard; messages
//! between phones in different shards cross the time-window barrier, so
//! a good partition keeps contact edges shard-local. [`Partition::edge_cut`]
//! grows shards by breadth-first level sets from the lowest-numbered
//! unassigned phone: BFS keeps contact neighbourhoods together (the
//! generators produce locally clustered graphs — ring, Watts–Strogatz,
//! power-law), visits nodes in a fixed order (ascending seeds, CSR
//! neighbour order), and needs no randomness — the same graph and shard
//! count always produce the identical partition, which the sharded
//! determinism contract depends on.
//!
//! Degenerate shapes are first-class: a disconnected graph simply
//! restarts BFS from the next unassigned node, and a shard count larger
//! than the population leaves the surplus shards empty (an empty shard
//! never blocks a barrier round).

use mpvsim_topology::CsrGraph;
use std::collections::VecDeque;

/// An assignment of every phone to one of `shards` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shards: usize,
    shard_of: Vec<u32>,
    local_index: Vec<u32>,
    members: Vec<Vec<u32>>,
    cut_edges: u64,
}

impl Partition {
    /// Partitions `graph` into `shards` contiguous BFS-grown shards.
    ///
    /// Shard sizes are balanced to within one node (`ceil(n / shards)`
    /// per shard before the remainder runs out). Panics if `shards == 0`.
    pub fn edge_cut(graph: &CsrGraph, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be at least 1");
        let n = graph.node_count();
        const UNASSIGNED: u32 = u32::MAX;
        let mut shard_of = vec![UNASSIGNED; n];

        // Balanced targets: the first `n % shards` shards get one extra.
        let base = n / shards;
        let extra = n % shards;
        let target = |s: usize| base + usize::from(s < extra);

        let mut current = 0usize;
        let mut filled = 0usize;
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut next_seed = 0u32;
        while filled < n && current < shards {
            if target(current) == 0 {
                current += 1;
                continue;
            }
            // Find the lowest unassigned node to (re)start BFS from —
            // this is where disconnected components are picked up.
            while (next_seed as usize) < n && shard_of[next_seed as usize] != UNASSIGNED {
                next_seed += 1;
            }
            queue.clear();
            queue.push_back(next_seed);
            shard_of[next_seed as usize] = current as u32;
            let mut size = 1usize;
            filled += 1;
            while size < target(current) {
                let Some(u) = queue.pop_front() else {
                    // Component exhausted; restart from the next
                    // unassigned node into the same shard.
                    while (next_seed as usize) < n && shard_of[next_seed as usize] != UNASSIGNED {
                        next_seed += 1;
                    }
                    if (next_seed as usize) >= n {
                        break;
                    }
                    queue.push_back(next_seed);
                    shard_of[next_seed as usize] = current as u32;
                    size += 1;
                    filled += 1;
                    continue;
                };
                for &v in graph.neighbors(u) {
                    if size >= target(current) {
                        break;
                    }
                    if shard_of[v as usize] == UNASSIGNED {
                        shard_of[v as usize] = current as u32;
                        queue.push_back(v);
                        size += 1;
                        filled += 1;
                    }
                }
            }
            current += 1;
        }
        // Anything left (only possible if every shard hit its target
        // early) goes round-robin into the shards — defensive; the
        // target arithmetic above already covers all nodes.
        let mut spill = 0usize;
        for s in shard_of.iter_mut() {
            if *s == UNASSIGNED {
                *s = (spill % shards) as u32;
                spill += 1;
            }
        }

        // Members in ascending phone-id order per shard; the local index
        // is the phone's position in its shard's member list.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut local_index = vec![0u32; n];
        for id in 0..n as u32 {
            let s = shard_of[id as usize] as usize;
            local_index[id as usize] = members[s].len() as u32;
            members[s].push(id);
        }

        let mut cut_edges = 0u64;
        for u in 0..n as u32 {
            for &v in graph.neighbors(u) {
                if u < v && shard_of[u as usize] != shard_of[v as usize] {
                    cut_edges += 1;
                }
            }
        }

        Partition { shards, shard_of, local_index, members, cut_edges }
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `phone`.
    pub fn shard_of(&self, phone: u32) -> usize {
        self.shard_of[phone as usize] as usize
    }

    /// The phone's position within its shard's member list.
    pub fn local_index(&self, phone: u32) -> usize {
        self.local_index[phone as usize] as usize
    }

    /// The phones owned by `shard`, in ascending id order.
    pub fn members(&self, shard: usize) -> &[u32] {
        &self.members[shard]
    }

    /// Number of contact edges whose endpoints live in different shards.
    pub fn cut_edges(&self) -> u64 {
        self.cut_edges
    }

    /// True when both phones live in the same shard.
    pub fn is_local(&self, a: u32, b: u32) -> bool {
        self.shard_of[a as usize] == self.shard_of[b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_topology::{Graph, GraphSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_csr(n: usize) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(7);
        GraphSpec::ring(n, 2).generate_csr(&mut rng).expect("ring generates")
    }

    fn edgeless_csr(n: usize) -> CsrGraph {
        CsrGraph::from_graph(&Graph::with_nodes(n))
    }

    fn assert_covering(p: &Partition, n: usize) {
        let mut seen = vec![false; n];
        for s in 0..p.shard_count() {
            for &id in p.members(s) {
                assert!(!seen[id as usize], "phone {id} in two shards");
                seen[id as usize] = true;
                assert_eq!(p.shard_of(id), s);
                assert_eq!(p.members(s)[p.local_index(id)], id);
            }
        }
        assert!(seen.into_iter().all(|b| b), "some phone unassigned");
    }

    #[test]
    fn partition_covers_every_phone_exactly_once() {
        let g = ring_csr(100);
        for shards in [1, 2, 3, 7, 8] {
            let p = Partition::edge_cut(&g, shards);
            assert_covering(&p, 100);
            // Balanced to within one node.
            let sizes: Vec<usize> = (0..shards).map(|s| p.members(s).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let g = ring_csr(64);
        let a = Partition::edge_cut(&g, 4);
        let b = Partition::edge_cut(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ring_partition_keeps_runs_contiguous_and_counts_cut() {
        // A ring cut into k arcs has exactly k cut edges when BFS grows
        // contiguous arcs; allow the seam shard some slack but require a
        // far-below-random cut.
        let g = ring_csr(120);
        let p = Partition::edge_cut(&g, 4);
        assert!(p.cut_edges() <= 8, "cut {} too large for a ring", p.cut_edges());
        assert!(p.cut_edges() >= 4);
    }

    #[test]
    fn more_shards_than_phones_leaves_empty_shards() {
        let g = ring_csr(3);
        let p = Partition::edge_cut(&g, 8);
        assert_covering(&p, 3);
        let populated = (0..8).filter(|&s| !p.members(s).is_empty()).count();
        assert_eq!(populated, 3);
        for s in 0..8 {
            assert!(p.members(s).len() <= 1);
        }
    }

    #[test]
    fn disconnected_graph_partitions_fully() {
        let g = edgeless_csr(10);
        let p = Partition::edge_cut(&g, 3);
        assert_covering(&p, 10);
        assert_eq!(p.cut_edges(), 0);
        let p1 = Partition::edge_cut(&g, 1);
        assert_covering(&p1, 10);
        assert_eq!(p1.members(0).len(), 10);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = edgeless_csr(0);
        let p = Partition::edge_cut(&g, 4);
        assert_eq!(p.shard_count(), 4);
        for s in 0..4 {
            assert!(p.members(s).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shards_panics() {
        let g = ring_csr(4);
        let _ = Partition::edge_cut(&g, 0);
    }
}
