//! The canonical, versioned scenario-spec wire schema.
//!
//! A [`ScenarioSpec`] is the *single* way a scenario enters the system
//! from outside Rust code: `mpvsim sweep` cells, registry studies, the
//! `mpvsim serve` HTTP API and the committed golden spec files all
//! exchange this one document shape. The contract:
//!
//! * **Versioned** — every document carries `"schema": "mpvsim-scenario/1"`
//!   and [`ScenarioSpec::validate`] rejects any other tag, so a future
//!   `/2` can change the layout without silently misreading old files.
//! * **Closed** — unknown fields are a parse error
//!   (`deny_unknown_fields`), so typos fail loudly instead of being
//!   ignored.
//! * **Explicit defaults** — `reps` and `master_seed` may be omitted and
//!   take the paper defaults (10 replications, seed 2007); serialization
//!   always writes them back out, so re-serializing a parsed document
//!   *canonicalizes* it.
//! * **Round-trip stable** — `serde_json` serializes `f64` values with
//!   enough digits to round-trip bit-exactly and struct fields in
//!   declaration order, so `parse(serialize(spec))` reproduces the spec
//!   and therefore its [content hash](ScenarioSpec::content_hash). The
//!   hash identifies a *run* (scenario + replication plan); the
//!   `mpvsim serve` result cache is keyed by it.
//!
//! Validation is funnelled: the only way to get a
//! [`ScenarioConfig`](crate::ScenarioConfig) out of a spec is
//! [`ScenarioSpec::into_config`] / [`ScenarioSpec::to_config`], both of
//! which run the full validation chain first, so an unvalidated scenario
//! cannot reach the engine through the wire path.

use serde::{Deserialize, Serialize};

use mpvsim_des::hash::Fnv1a64;

use crate::config::{ConfigError, ScenarioConfig};

/// The schema tag this build reads and writes.
pub const SCENARIO_SCHEMA: &str = "mpvsim-scenario/1";

/// Default replication count when a document omits `reps`.
pub const DEFAULT_REPS: u64 = 10;

/// Default master seed when a document omits `master_seed` (the paper's
/// publication year, as everywhere else in the workspace).
pub const DEFAULT_MASTER_SEED: u64 = 2007;

fn default_schema() -> String {
    SCENARIO_SCHEMA.to_owned()
}

fn default_reps() -> u64 {
    DEFAULT_REPS
}

fn default_master_seed() -> u64 {
    DEFAULT_MASTER_SEED
}

/// A complete, self-describing experiment request: a named scenario plus
/// its replication plan, as exchanged on the wire and on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ScenarioSpec {
    /// Schema tag; must be [`SCENARIO_SCHEMA`]. Defaults to it when
    /// omitted so hand-written specs stay terse, but a *wrong* tag is
    /// always an error.
    #[serde(default = "default_schema")]
    pub schema: String,
    /// Human-readable label for reports and sweep-store headers.
    pub name: String,
    /// Number of replications to run.
    #[serde(default = "default_reps")]
    pub reps: u64,
    /// Master seed; replication `r` uses `derive_seed(master_seed, r)`.
    #[serde(default = "default_master_seed")]
    pub master_seed: u64,
    /// The scenario itself.
    pub scenario: ScenarioConfig,
}

impl ScenarioSpec {
    /// Wraps a scenario under `name` with the default replication plan
    /// ([`DEFAULT_REPS`] replications, master seed
    /// [`DEFAULT_MASTER_SEED`]).
    pub fn new(name: impl Into<String>, scenario: ScenarioConfig) -> Self {
        ScenarioSpec {
            schema: SCENARIO_SCHEMA.to_owned(),
            name: name.into(),
            reps: DEFAULT_REPS,
            master_seed: DEFAULT_MASTER_SEED,
            scenario,
        }
    }

    /// Builder-style: replaces the replication plan.
    pub fn with_replication(mut self, reps: u64, master_seed: u64) -> Self {
        self.reps = reps;
        self.master_seed = master_seed;
        self
    }

    /// Validates the whole document: schema tag, replication plan, then
    /// the scenario itself.
    ///
    /// # Errors
    ///
    /// Returns the first problem found, as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.schema != SCENARIO_SCHEMA {
            return Err(ConfigError::schema(&self.schema, SCENARIO_SCHEMA));
        }
        if self.name.is_empty() {
            return Err(ConfigError::invalid("name", "must not be empty"));
        }
        if self.reps == 0 {
            return Err(ConfigError::invalid("reps", "need at least one replication"));
        }
        self.scenario.validate()
    }

    /// The validation funnel: yields the scenario configuration if and
    /// only if the whole document validates. All execution paths
    /// (studies, sweeps, the server) obtain their `ScenarioConfig`
    /// through here.
    ///
    /// # Errors
    ///
    /// Returns the first problem found, as a [`ConfigError`].
    pub fn to_config(&self) -> Result<&ScenarioConfig, ConfigError> {
        self.validate()?;
        Ok(&self.scenario)
    }

    /// Consuming variant of [`ScenarioSpec::to_config`].
    ///
    /// # Errors
    ///
    /// Returns the first problem found, as a [`ConfigError`].
    pub fn into_config(self) -> Result<ScenarioConfig, ConfigError> {
        self.validate()?;
        Ok(self.scenario)
    }

    /// The canonical serialized form: compact JSON with every field
    /// present, in declaration order. Two specs are the same experiment
    /// iff their canonical bytes are equal.
    pub fn canonical_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("scenario specs always serialize")
    }

    /// The 16-hex-digit FNV-1a digest of [`canonical
    /// JSON`](ScenarioSpec::canonical_json) — the run's identity in the
    /// sweep store and the `mpvsim serve` cache.
    pub fn content_hash(&self) -> String {
        let mut h = Fnv1a64::new();
        h.write_bytes(&self.canonical_json());
        format!("{:016x}", h.finish())
    }

    /// Parses a spec document from JSON bytes. This only checks the
    /// document's *shape*; call [`ScenarioSpec::validate`] (or go
    /// through [`ScenarioSpec::into_config`]) for semantic checks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Malformed`] with the parser's diagnostic.
    pub fn from_json(bytes: &[u8]) -> Result<Self, ConfigError> {
        serde_json::from_slice(bytes).map_err(|e| ConfigError::malformed(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virus::VirusProfile;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("baseline", ScenarioConfig::baseline(VirusProfile::virus1()))
    }

    #[test]
    fn round_trip_is_byte_and_hash_identical() {
        let s = spec();
        let json = s.canonical_json();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.canonical_json(), json);
        assert_eq!(back.content_hash(), s.content_hash());
    }

    #[test]
    fn omitted_defaults_are_canonicalized() {
        let terse = format!(
            "{{\"name\":\"t\",\"scenario\":{}}}",
            serde_json::to_string(&spec().scenario).unwrap()
        );
        let parsed = ScenarioSpec::from_json(terse.as_bytes()).unwrap();
        assert_eq!(parsed.schema, SCENARIO_SCHEMA);
        assert_eq!(parsed.reps, DEFAULT_REPS);
        assert_eq!(parsed.master_seed, DEFAULT_MASTER_SEED);
        // Canonical form writes the defaults back out.
        let canonical = String::from_utf8(parsed.canonical_json()).unwrap();
        assert!(canonical.contains("\"schema\":\"mpvsim-scenario/1\""));
        assert!(canonical.contains("\"reps\":10"));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let doc = format!(
            "{{\"name\":\"t\",\"scenaroi\":{}}}",
            serde_json::to_string(&spec().scenario).unwrap()
        );
        let err = ScenarioSpec::from_json(doc.as_bytes()).unwrap_err();
        assert!(matches!(err, ConfigError::Malformed { .. }), "got {err:?}");
        assert!(err.to_string().contains("scenaroi"), "diagnostic should name the field: {err}");
    }

    #[test]
    fn wrong_schema_tag_is_a_structured_error() {
        let mut s = spec();
        s.schema = "mpvsim-scenario/9".to_owned();
        let err = s.validate().unwrap_err();
        assert_eq!(err, ConfigError::schema("mpvsim-scenario/9", SCENARIO_SCHEMA));
    }

    #[test]
    fn invalid_scenarios_cannot_pass_the_funnel() {
        let mut s = spec();
        s.scenario.initial_infections = 0;
        assert!(s.to_config().is_err());
        assert!(s.clone().into_config().is_err());
        s.scenario.initial_infections = 1;
        s.reps = 0;
        assert_eq!(s.to_config().unwrap_err().field(), Some("reps"));
    }

    #[test]
    fn hash_depends_on_replication_plan() {
        let s = spec();
        let other = spec().with_replication(DEFAULT_REPS + 1, DEFAULT_MASTER_SEED);
        assert_ne!(s.content_hash(), other.content_hash());
        assert_eq!(s.content_hash().len(), 16);
    }
}
