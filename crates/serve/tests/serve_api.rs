//! End-to-end API test: boot the server on an ephemeral port, drive it
//! with the crate's own client, and prove the contract the CI smoke job
//! re-checks with curl — same spec twice ⇒ byte-identical cache hit,
//! malformed spec ⇒ structured 422, progress streamed as JSONL.

use std::time::Duration;

use mpvsim_core::bounds::{BoundsKnob, BoundsSpec, ConfirmPolicy, SearchRange};
use mpvsim_core::{PopulationConfig, ScenarioConfig, ScenarioSpec, VirusProfile};
use mpvsim_des::{DelaySpec, SimDuration};
use mpvsim_serve::{request, start, ServeOptions};
use mpvsim_topology::GraphSpec;

fn tiny_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::baseline(VirusProfile::virus3());
    config.population =
        PopulationConfig { topology: GraphSpec::erdos_renyi(40, 6.0), vulnerable_fraction: 0.8 };
    config.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
    config.horizon = SimDuration::from_hours(4);
    config
}

#[test]
fn serve_api_end_to_end() {
    let dir = std::env::temp_dir().join(format!("mpvsim-serve-api-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions { dir: dir.clone(), workers: 1, ..ServeOptions::default() };
    let handle = start("127.0.0.1:0", opts).expect("bind an ephemeral port");
    let addr = handle.addr().to_string();

    // Liveness.
    let health = request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let doc: serde_json::Value = serde_json::from_slice(&health.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-health/1");
    assert_eq!(doc["status"], "ok");

    // The study directory lists the whole registry.
    let studies = request(&addr, "GET", "/v1/studies", None).unwrap();
    assert_eq!(studies.status, 200);
    let doc: serde_json::Value = serde_json::from_slice(&studies.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-studies/1");
    assert_eq!(doc["studies"].as_array().unwrap().len(), 16);
    let names: Vec<&str> =
        doc["studies"].as_array().unwrap().iter().filter_map(|s| s["name"].as_str()).collect();
    assert!(names.contains(&"fig1_baseline"), "{names:?}");

    // First submission simulates; the repeat must be a byte-identical
    // cache hit, distinguished only by the x-mpvsim-cache header.
    let spec = ScenarioSpec::new("serve-smoke", tiny_config()).with_replication(2, 11);
    let body = spec.canonical_json();
    let first = request(&addr, "POST", "/v1/runs?wait=1", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
    assert_eq!(first.header("x-mpvsim-cache"), Some("miss"));
    let second = request(&addr, "POST", "/v1/runs?wait=1", Some(&body)).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-mpvsim-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");

    let doc: serde_json::Value = serde_json::from_slice(&first.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-run/1");
    assert_eq!(doc["state"], "done");
    assert_eq!(doc["hash"].as_str(), Some(spec.content_hash().as_str()));
    let round_trip: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(doc["spec"], round_trip, "the stored spec is the submitted spec");
    assert!(doc["result"]["final_infected"]["mean"].as_f64().is_some(), "{doc}");

    // A non-canonical serialization of the same scenario (extra
    // whitespace) canonicalizes to the same hash and also hits.
    let spaced = String::from_utf8(body.clone()).unwrap().replace("\":", "\": ");
    let hit = request(&addr, "POST", "/v1/runs?wait=1", Some(spaced.as_bytes())).unwrap();
    assert_eq!(hit.header("x-mpvsim-cache"), Some("hit"));
    assert_eq!(hit.body, first.body);

    // GET by hash returns the same document.
    let hash = spec.content_hash();
    let got = request(&addr, "GET", &format!("/v1/runs/{hash}"), None).unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, first.body);

    // The events endpoint replays the run's JSONL progress and
    // terminates with a server-generated state line.
    let mut events = Vec::new();
    let status =
        mpvsim_serve::stream(&addr, &format!("/v1/runs/{hash}/events"), &mut events).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(events).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "2 replication lines + a final state line, got: {text:?}");
    for line in &lines {
        let value: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        assert!(value["type"].is_string(), "{line}");
    }
    let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(last["type"], "run");
    assert_eq!(last["state"], "done");
    assert_eq!(last["hash"].as_str(), Some(hash.as_str()));

    // Async path: submit without wait, poll until done.
    let async_spec = ScenarioSpec::new("serve-async", tiny_config()).with_replication(2, 23);
    let accepted = request(&addr, "POST", "/v1/runs", Some(&async_spec.canonical_json())).unwrap();
    assert_eq!(accepted.status, 202);
    assert_eq!(accepted.header("x-mpvsim-cache"), Some("miss"));
    let doc: serde_json::Value = serde_json::from_slice(&accepted.body).unwrap();
    assert!(matches!(doc["state"].as_str(), Some("queued" | "running")), "{doc}");
    let async_hash = async_spec.content_hash();
    let mut done = false;
    for _ in 0..600 {
        let got = request(&addr, "GET", &format!("/v1/runs/{async_hash}"), None).unwrap();
        let doc: serde_json::Value = serde_json::from_slice(&got.body).unwrap();
        match doc["state"].as_str() {
            Some("done") => {
                done = true;
                break;
            }
            Some("queued" | "running") => std::thread::sleep(Duration::from_millis(100)),
            other => panic!("unexpected state {other:?}: {doc}"),
        }
    }
    assert!(done, "async run never completed");

    // Malformed JSON, unknown fields and invalid scenarios are
    // structured 422s.
    let bad = request(&addr, "POST", "/v1/runs", Some(b"{not json")).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-error/1");
    assert_eq!(doc["error"]["kind"], "malformed");

    let mut invalid = ScenarioSpec::new("serve-invalid", tiny_config());
    invalid.scenario.initial_infections = 0;
    let bad =
        request(&addr, "POST", "/v1/runs", Some(&serde_json::to_vec(&invalid).unwrap())).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["error"]["kind"], "invalid");
    assert_eq!(doc["error"]["field"], "initial_infections");

    // Unknown runs, unknown routes, wrong methods.
    let missing = request(&addr, "GET", "/v1/runs/0000000000000000", None).unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(request(&addr, "GET", "/v1/runs/not-a-hash", None).unwrap().status, 404);
    assert_eq!(request(&addr, "GET", "/v1/nope", None).unwrap().status, 404);
    assert_eq!(request(&addr, "PUT", "/v1/runs", Some(b"{}")).unwrap().status, 405);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounds_api_end_to_end() {
    let dir = std::env::temp_dir().join(format!("mpvsim-serve-bounds-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions { dir: dir.clone(), workers: 1, ..ServeOptions::default() };
    let handle = start("127.0.0.1:0", opts).expect("bind an ephemeral port");
    let addr = handle.addr().to_string();

    let spec = BoundsSpec::new("serve-bounds", BoundsKnob::ScanDelay, tiny_config())
        .with_search(SearchRange { min: 900, max: 14_400, tolerance: 1800 })
        .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 1.0 });
    let body = spec.canonical_json();
    let hash = spec.content_hash();

    // First query solves; the repeat is a byte-identical cache hit.
    let first = request(&addr, "POST", "/v1/bounds?wait=1", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
    assert_eq!(first.header("x-mpvsim-cache"), Some("miss"));
    let second = request(&addr, "POST", "/v1/bounds?wait=1", Some(&body)).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-mpvsim-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");

    // The body is the stored mpvsim-bounds-report/1 document verbatim.
    let doc: serde_json::Value = serde_json::from_slice(&first.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-bounds-report/1");
    assert_eq!(doc["spec_hash"].as_str(), Some(hash.as_str()));
    assert!(doc["evaluations"].as_array().is_some_and(|e| !e.is_empty()), "{doc}");
    let stored = std::fs::read(dir.join("bounds").join(&hash).join("report.json")).unwrap();
    assert_eq!(first.body, stored, "the response is the store file, byte-for-byte");

    // GET by hash returns the same document.
    let got = request(&addr, "GET", &format!("/v1/bounds/{hash}"), None).unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, first.body);

    // The events endpoint replays the solver's deterministic NDJSON
    // progress and terminates with a server-generated state line.
    let mut events = Vec::new();
    let status =
        mpvsim_serve::stream(&addr, &format!("/v1/bounds/{hash}/events"), &mut events).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(events).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "start + bracket + evals + state line, got: {text:?}");
    let head: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(head["event"], "start");
    assert_eq!(head["hash"].as_str(), Some(hash.as_str()));
    let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(last["type"], "bounds");
    assert_eq!(last["state"], "done");

    // Malformed and invalid queries are structured 422s through the
    // same funnel as every other entry point.
    let bad = request(&addr, "POST", "/v1/bounds", Some(b"{not json")).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-error/1");
    assert_eq!(doc["error"]["kind"], "malformed");
    let mut invalid = spec.clone();
    invalid.target = 2.0;
    let bad =
        request(&addr, "POST", "/v1/bounds", Some(&serde_json::to_vec(&invalid).unwrap())).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["error"]["kind"], "out_of_range");
    assert_eq!(doc["error"]["field"], "target");

    // Unknown hashes and wrong methods.
    assert_eq!(request(&addr, "GET", "/v1/bounds/0000000000000000", None).unwrap().status, 404);
    assert_eq!(request(&addr, "GET", "/v1/bounds/not-a-hash", None).unwrap().status, 404);
    assert_eq!(request(&addr, "PUT", "/v1/bounds", Some(b"{}")).unwrap().status, 405);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
