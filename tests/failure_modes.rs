//! Integration tests: degenerate inputs and failure injection.
//!
//! A production simulator must reject invalid configurations loudly and
//! degrade gracefully on structurally degenerate (but valid) ones.

use mpvsim::prelude::*;

fn small() -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
    c.population = PopulationConfig::paper_default(50);
    c.horizon = SimDuration::from_hours(12);
    c
}

// ---------------------------------------------------------------------
// Invalid configurations are rejected with ConfigError
// ---------------------------------------------------------------------

type ConfigMutation = Box<dyn Fn(&mut ScenarioConfig)>;

#[test]
fn rejects_every_invalid_field() {
    let cases: Vec<(&str, ConfigMutation)> = vec![
        ("zero horizon", Box::new(|c| c.horizon = SimDuration::ZERO)),
        ("zero sample step", Box::new(|c| c.sample_step = SimDuration::ZERO)),
        ("zero seeds", Box::new(|c| c.initial_infections = 0)),
        ("too many seeds", Box::new(|c| c.initial_infections = 10_000)),
        ("vulnerable fraction > 1", Box::new(|c| c.population.vulnerable_fraction = 1.01)),
        ("NaN vulnerable fraction", Box::new(|c| c.population.vulnerable_fraction = f64::NAN)),
        ("zero recipients", Box::new(|c| c.virus.recipients_per_message = 0)),
        ("zero quota", Box::new(|c| c.virus.quota.per_day = Some(0))),
        ("empty virus name", Box::new(|c| c.virus.name.clear())),
        (
            "bad detection accuracy",
            Box::new(|c| {
                c.response.detection = Some(DetectionAlgorithm {
                    accuracy: 1.5,
                    analysis_period: SimDuration::from_hours(1),
                })
            }),
        ),
        (
            "bad education scale",
            Box::new(|c| c.response.education = Some(UserEducation { acceptance_scale: -0.2 })),
        ),
        (
            "zero blacklist threshold",
            Box::new(|c| c.response.blacklist = Some(Blacklist { threshold: 0 })),
        ),
        (
            "bad dialing fraction",
            Box::new(|c| {
                c.virus.targeting = TargetingStrategy::RandomDialing { valid_fraction: 7.0 }
            }),
        ),
        (
            "unachievable mean degree",
            Box::new(|c| {
                c.population.topology = GraphSpec::power_law(50, 500.0);
            }),
        ),
    ];
    for (name, mutate) in cases {
        let mut c = small();
        mutate(&mut c);
        assert!(run_scenario(&c, 1).is_err(), "{name}: invalid configuration was accepted");
    }
}

#[test]
fn config_error_messages_name_the_problem() {
    let mut c = small();
    c.horizon = SimDuration::ZERO;
    let err = run_scenario(&c, 1).unwrap_err();
    assert!(err.to_string().contains("horizon"), "unhelpful error: {err}");

    let mut c = small();
    c.virus.recipients_per_message = 0;
    let err = run_scenario(&c, 1).unwrap_err();
    assert!(err.to_string().contains("virus"), "unhelpful error: {err}");
}

// ---------------------------------------------------------------------
// Degenerate but valid scenarios run to completion
// ---------------------------------------------------------------------

#[test]
fn nobody_vulnerable_means_nobody_infected() {
    let mut c = small();
    c.population.vulnerable_fraction = 0.0;
    let r = run_scenario(&c, 3).expect("valid, just hopeless for the virus");
    assert_eq!(r.final_infected, 0);
    assert_eq!(r.stats.messages_sent, 0, "no seed ⇒ no sender");
}

#[test]
fn edgeless_topology_strands_the_contact_list_virus() {
    let mut c = small();
    c.population.topology = GraphSpec::erdos_renyi(50, 0.0);
    let r = run_scenario(&c, 4).expect("valid");
    assert_eq!(r.final_infected, 1, "the seed has no contacts to infect");
    assert_eq!(r.stats.deliveries, 0);
}

#[test]
fn edgeless_topology_does_not_stop_the_random_dialer() {
    let mut c = small();
    c.virus = VirusProfile::virus3();
    c.population.topology = GraphSpec::erdos_renyi(50, 0.0);
    let r = run_scenario(&c, 5).expect("valid");
    assert!(r.final_infected > 1, "random dialing needs no contact list: {}", r.final_infected);
}

#[test]
fn zero_valid_fraction_contains_the_dialer() {
    let mut c = small();
    c.virus = VirusProfile::virus3();
    c.virus.targeting = TargetingStrategy::RandomDialing { valid_fraction: 0.0 };
    let r = run_scenario(&c, 6).expect("valid");
    assert_eq!(r.final_infected, 1);
    assert!(r.stats.invalid_dials > 0);
    assert_eq!(r.stats.deliveries, 0);
}

#[test]
fn every_mechanism_at_once_still_runs() {
    let mut c = small();
    c.response = ResponseConfig::none()
        .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_hours(2) })
        .with_detection(DetectionAlgorithm::with_accuracy(0.9))
        .with_education(UserEducation { acceptance_scale: 0.5 })
        .with_immunization(Immunization::uniform(
            SimDuration::from_hours(3),
            SimDuration::from_hours(1),
        ))
        .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(15)))
        .with_blacklist(Blacklist { threshold: 10 });
    let r = run_scenario(&c, 7).expect("all mechanisms compose");
    assert!(r.final_infected >= 1);
}

#[test]
fn single_phone_population() {
    let mut c = small();
    c.population.topology = GraphSpec::complete(1);
    let r = run_scenario(&c, 8).expect("valid");
    assert!(r.final_infected <= 1);
}

#[test]
fn whole_population_initially_infected() {
    let mut c = small();
    c.population.vulnerable_fraction = 1.0;
    c.initial_infections = 50;
    c.horizon = SimDuration::from_hours(1);
    let r = run_scenario(&c, 9).expect("valid");
    assert_eq!(r.final_infected, 50);
}

#[test]
fn tiny_horizon_produces_single_sample() {
    let mut c = small();
    c.horizon = SimDuration::from_secs(1);
    c.sample_step = SimDuration::from_hours(1);
    let r = run_scenario(&c, 10).expect("valid");
    assert_eq!(r.series.len(), 1, "only the t = 0 sample fits");
}

#[test]
fn immediate_blacklist_silences_the_network() {
    let mut c = small();
    c.virus = VirusProfile::virus3();
    c.response = ResponseConfig::none().with_blacklist(Blacklist { threshold: 1 });
    let r = run_scenario(&c, 11).expect("valid");
    // Every infected phone is cut off after its second message.
    {
        let run_stats = r.stats;
        assert!(run_stats.blocked_by_blacklist >= 1);
    }
    assert!(r.final_infected < 10, "near-immediate blacklisting must contain the dialer");
}
