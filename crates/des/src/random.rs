//! Random variates for stochastic delays.
//!
//! The model needs exponential, uniform and deterministic delays plus
//! Bernoulli choices. Rather than pulling in a distributions crate, the few
//! variates required are implemented here directly (inverse-transform for
//! the exponential), drawing from the engine-owned [`rand::Rng`] stream.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Samples an exponential variate with the given mean (in seconds), via
/// inverse-transform sampling.
///
/// Returns `0.0` when `mean_secs <= 0`.
///
/// ```rust
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = mpvsim_des::random::exp_secs(&mut rng, 3600.0);
/// assert!(x >= 0.0);
/// ```
pub fn exp_secs<R: Rng + ?Sized>(rng: &mut R, mean_secs: f64) -> f64 {
    if mean_secs <= 0.0 {
        return 0.0;
    }
    // u ∈ [0, 1); use 1-u ∈ (0, 1] so ln() is finite.
    let u: f64 = rng.random();
    -mean_secs * (1.0 - u).ln()
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so ln() is finite; u2 ∈ [0, 1).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.random::<f64>() < p
    }
}

/// A distribution over time spans, serializable so virus scenarios and
/// response-mechanism configurations are plain data.
///
/// All variants produce a whole-second [`SimDuration`]; continuous variates
/// round to the nearest second.
///
/// ```rust
/// use mpvsim_des::{DelaySpec, SimDuration};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let spec = DelaySpec::shifted_exp(SimDuration::from_mins(30), SimDuration::from_mins(10));
/// let mut rng = StdRng::seed_from_u64(7);
/// let d = spec.sample(&mut rng);
/// assert!(d >= SimDuration::from_mins(30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelaySpec {
    /// Always exactly this long.
    Constant(SimDuration),
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the exponential, in simulation time.
        mean: SimDuration,
    },
    /// Uniform over `[lo, hi]` (inclusive).
    Uniform {
        /// Lower bound (inclusive).
        lo: SimDuration,
        /// Upper bound (inclusive).
        hi: SimDuration,
    },
    /// `min + Exponential(mean_extra)`: a hard minimum gap plus exponential
    /// jitter. This is the shape used for virus inter-message gaps ("waits
    /// *at least* 30 minutes between consecutive infected messages").
    ShiftedExponential {
        /// Hard minimum.
        min: SimDuration,
        /// Mean of the additional exponential jitter.
        mean_extra: SimDuration,
    },
    /// Log-normal with the given median and log-space standard deviation
    /// `sigma`: `median · exp(sigma · Z)`. A heavier-tailed alternative
    /// for human reaction times (read delays) than the exponential.
    LogNormal {
        /// Median of the distribution.
        median: SimDuration,
        /// Log-space standard deviation (≥ 0).
        sigma: f64,
    },
}

impl DelaySpec {
    /// A constant delay.
    pub const fn constant(d: SimDuration) -> Self {
        DelaySpec::Constant(d)
    }

    /// An exponential delay with mean `mean`.
    pub const fn exponential(mean: SimDuration) -> Self {
        DelaySpec::Exponential { mean }
    }

    /// A uniform delay over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(lo: SimDuration, hi: SimDuration) -> Self {
        assert!(lo <= hi, "uniform delay: lo > hi");
        DelaySpec::Uniform { lo, hi }
    }

    /// A shifted exponential: `min + Exp(mean_extra)`.
    pub const fn shifted_exp(min: SimDuration, mean_extra: SimDuration) -> Self {
        DelaySpec::ShiftedExponential { min, mean_extra }
    }

    /// A log-normal delay with the given median and log-space σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn log_normal(median: SimDuration, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "log-normal sigma must be non-negative");
        DelaySpec::LogNormal { median, sigma }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            DelaySpec::Constant(d) => d,
            DelaySpec::Exponential { mean } => {
                SimDuration::from_secs_f64(exp_secs(rng, mean.as_secs_f64()))
            }
            DelaySpec::Uniform { lo, hi } => {
                if lo == hi {
                    lo
                } else {
                    SimDuration::from_secs(rng.random_range(lo.as_secs()..=hi.as_secs()))
                }
            }
            DelaySpec::ShiftedExponential { min, mean_extra } => {
                min + SimDuration::from_secs_f64(exp_secs(rng, mean_extra.as_secs_f64()))
            }
            DelaySpec::LogNormal { median, sigma } => {
                let z = standard_normal(rng);
                SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * z).exp())
            }
        }
    }

    /// The expected value of the distribution.
    pub fn mean(&self) -> SimDuration {
        match *self {
            DelaySpec::Constant(d) => d,
            DelaySpec::Exponential { mean } => mean,
            DelaySpec::Uniform { lo, hi } => {
                SimDuration::from_secs((lo.as_secs() + hi.as_secs()) / 2)
            }
            DelaySpec::ShiftedExponential { min, mean_extra } => min + mean_extra,
            DelaySpec::LogNormal { median, sigma } => {
                SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * sigma / 2.0).exp())
            }
        }
    }

    /// The smallest value the distribution can produce.
    pub fn minimum(&self) -> SimDuration {
        match *self {
            DelaySpec::Constant(d) => d,
            DelaySpec::Exponential { .. } => SimDuration::ZERO,
            DelaySpec::Uniform { lo, .. } => lo,
            DelaySpec::ShiftedExponential { min, .. } => min,
            DelaySpec::LogNormal { .. } => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = rng();
        let mean = 3600.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exp_secs(&mut r, mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.03,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exp_nonneg_and_degenerate() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exp_secs(&mut r, 10.0) >= 0.0);
        }
        assert_eq!(exp_secs(&mut r, 0.0), 0.0);
        assert_eq!(exp_secs(&mut r, -5.0), 0.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(!bernoulli(&mut r, 0.0));
            assert!(bernoulli(&mut r, 1.0));
            assert!(!bernoulli(&mut r, -0.5));
            assert!(bernoulli(&mut r, 1.5));
        }
    }

    #[test]
    fn bernoulli_rate_converges() {
        let mut r = rng();
        let n = 100_000;
        let hits = (0..n).filter(|_| bernoulli(&mut r, 0.468)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.468).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn constant_spec_is_constant() {
        let mut r = rng();
        let spec = DelaySpec::constant(SimDuration::from_mins(5));
        for _ in 0..10 {
            assert_eq!(spec.sample(&mut r), SimDuration::from_mins(5));
        }
        assert_eq!(spec.mean(), SimDuration::from_mins(5));
        assert_eq!(spec.minimum(), SimDuration::from_mins(5));
    }

    #[test]
    fn uniform_spec_within_bounds() {
        let mut r = rng();
        let lo = SimDuration::from_secs(10);
        let hi = SimDuration::from_secs(20);
        let spec = DelaySpec::uniform(lo, hi);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let d = spec.sample(&mut r);
            assert!(d >= lo && d <= hi);
            seen_lo |= d == lo;
            seen_hi |= d == hi;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never hit");
        assert_eq!(spec.mean(), SimDuration::from_secs(15));
    }

    #[test]
    fn uniform_degenerate_point() {
        let mut r = rng();
        let d = SimDuration::from_secs(9);
        assert_eq!(DelaySpec::uniform(d, d).sample(&mut r), d);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn uniform_rejects_inverted_bounds() {
        let _ = DelaySpec::uniform(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }

    #[test]
    fn shifted_exp_respects_minimum() {
        let mut r = rng();
        let min = SimDuration::from_mins(30);
        let spec = DelaySpec::shifted_exp(min, SimDuration::from_mins(10));
        for _ in 0..1000 {
            assert!(spec.sample(&mut r) >= min);
        }
        assert_eq!(spec.minimum(), min);
        assert_eq!(spec.mean(), SimDuration::from_mins(40));
    }

    #[test]
    fn exponential_spec_mean_converges() {
        let mut r = rng();
        let spec = DelaySpec::exponential(SimDuration::from_hours(1));
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| spec.sample(&mut r).as_secs()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3600.0).abs() / 3600.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn log_normal_median_converges() {
        let mut r = rng();
        let spec = DelaySpec::log_normal(SimDuration::from_hours(1), 0.8);
        let mut samples: Vec<u64> = (0..20_001).map(|_| spec.sample(&mut r).as_secs()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!((median - 3600.0).abs() / 3600.0 < 0.05, "sample median {median} not near 3600");
        // Mean above median for a right-skewed distribution.
        assert!(spec.mean() > SimDuration::from_hours(1));
        assert_eq!(spec.minimum(), SimDuration::ZERO);
    }

    #[test]
    fn log_normal_sigma_zero_is_constant() {
        let mut r = rng();
        let spec = DelaySpec::log_normal(SimDuration::from_mins(10), 0.0);
        for _ in 0..50 {
            assert_eq!(spec.sample(&mut r), SimDuration::from_mins(10));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn log_normal_rejects_negative_sigma() {
        let _ = DelaySpec::log_normal(SimDuration::from_mins(1), -0.5);
    }

    #[test]
    fn specs_serialize_roundtrip() {
        // serde round-trip via the JSON-ish debug of serde_test is not
        // available; check the Serialize/Deserialize impls compile and
        // round-trip through the `serde` data model using a simple format.
        // (serde_json is not a permitted dependency, so we assert the trait
        // bounds statically instead.)
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<DelaySpec>();
    }
}
