//! Deprecated shim: forwards to `mpvsim perfsuite`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("perfsuite");
}
