//! A deliberately small HTTP/1.1 subset: exactly what the `mpvsim serve`
//! API needs, hand-rolled over [`std::io`] so the crate stays
//! dependency-free.
//!
//! Every exchange is one request and one `Connection: close` response —
//! no keep-alive, no chunked encoding, no TLS. Bodies are delimited by
//! `Content-Length` on requests and by either `Content-Length` or
//! connection close on responses (the latter is what lets the events
//! endpoint stream JSONL of unknown length).

use std::io::{self, BufRead, Write};

/// Largest accepted request body (1 MiB). Scenario specs are a few KiB;
/// anything bigger is a client error, not a workload.
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request: method, split target, headers and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query pairs in order of appearance. No percent-decoding: the API
    /// only uses literal alphanumeric keys and values.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from `stream`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first protocol
    /// violation: malformed request line or header, bad or oversized
    /// `Content-Length` (see [`MAX_BODY`]), or I/O failure.
    pub fn read(stream: &mut impl BufRead) -> Result<Self, String> {
        let line = read_line(stream)?;
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("malformed request line {line:?}"));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unsupported protocol {version:?}"));
        }
        let mut headers = Vec::new();
        loop {
            let line = read_line(stream)?;
            if line.is_empty() {
                break;
            }
            let (name, value) =
                line.split_once(':').ok_or_else(|| format!("malformed header {line:?}"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
        let length = match headers.iter().find(|(name, _)| name == "content-length") {
            Some((_, value)) => {
                value.parse::<usize>().map_err(|_| format!("bad content-length {value:?}"))?
            }
            None => 0,
        };
        if length > MAX_BODY {
            return Err(format!("body of {length} bytes exceeds the {MAX_BODY}-byte limit"));
        }
        let mut body = vec![0_u8; length];
        stream.read_exact(&mut body).map_err(|e| format!("short body: {e}"))?;
        let (path, query) = split_target(target);
        Ok(Request { method: method.to_owned(), path, query, headers, body })
    }

    /// True when query parameter `name` is present as a switch: bare, or
    /// with value `1` or `true`.
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.iter().any(|(n, v)| n == name && matches!(v.as_str(), "" | "1" | "true"))
    }

    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn read_line(stream: &mut impl BufRead) -> Result<String, String> {
    let mut line = String::new();
    let n = stream.read_line(&mut line).map_err(|e| format!("read failed: {e}"))?;
    if n == 0 {
        return Err("connection closed mid-request".to_owned());
    }
    Ok(line.trim_end_matches(['\r', '\n']).to_owned())
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_owned(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((name, value)) => (name.to_owned(), value.to_owned()),
                    None => (pair.to_owned(), String::new()),
                })
                .collect();
            (path.to_owned(), pairs)
        }
    }
}

/// A response under construction; [`Response::write`] serializes it with
/// `Content-Length` framing and `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (see [`reason`] for the phrases this API uses).
    pub status: u16,
    /// Extra headers; `Content-Length` and `Connection` are added by
    /// [`Response::write`].
    pub headers: Vec<(&'static str, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: Vec<u8>) -> Self {
        Response { status, headers: vec![("Content-Type", "application/json".to_owned())], body }
    }

    /// A response with an arbitrary content type (e.g. the Prometheus
    /// text exposition of `GET /v1/metrics`).
    pub fn text(status: u16, content_type: impl Into<String>, body: Vec<u8>) -> Self {
        Response { status, headers: vec![("Content-Type", content_type.into())], body }
    }

    /// Adds a header, builder-style.
    #[must_use]
    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Writes the complete response to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\nConnection: close\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The standard reason phrase of each status code this API uses (empty
/// for anything else).
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// Writes the head of a streaming NDJSON response, with any `extra`
/// headers (e.g. the `x-request-id` echo). There is no `Content-Length`;
/// the body is delimited by connection close, and the caller writes body
/// bytes directly as they become available.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_stream_head(
    w: &mut impl Write,
    status: u16,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\n", status, reason(status))?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "Connection: close\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let raw = b"POST /v1/runs?wait=1&x=2 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd";
        let req = Request::read(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/runs");
        assert!(req.query_flag("wait"));
        assert!(!req.query_flag("x"), "x=2 is not a switch value");
        assert!(!req.query_flag("absent"));
        assert_eq!(req.body, b"abcd");
        let host = req.headers.iter().find(|(n, _)| n == "host").map(|(_, v)| v.as_str());
        assert_eq!(host, Some("h"));
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let err = Request::read(&mut Cursor::new(raw.as_bytes())).unwrap_err();
        assert!(err.contains("limit"), "{err}");
        let err = Request::read(&mut Cursor::new(&b"nonsense\r\n\r\n"[..])).unwrap_err();
        assert!(err.contains("request line"), "{err}");
        let raw = b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
        let err = Request::read(&mut Cursor::new(&raw[..])).unwrap_err();
        assert!(err.contains("short body"), "{err}");
        let err = Request::read(&mut Cursor::new(&b"GET / SPDY/3\r\n\r\n"[..])).unwrap_err();
        assert!(err.contains("protocol"), "{err}");
    }

    #[test]
    fn response_wire_format_is_close_delimited() {
        let mut out = Vec::new();
        let response = Response::json(200, b"{}".to_vec()).header("x-mpvsim-cache", "hit");
        response.write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("x-mpvsim-cache: hit\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn reason_phrases_cover_the_api_statuses() {
        for status in [200, 202, 400, 404, 405, 409, 422, 500] {
            assert!(!reason(status).is_empty(), "missing phrase for {status}");
        }
        assert_eq!(reason(599), "");
    }
}
