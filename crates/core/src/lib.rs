//! # mpvsim-core — mobile-phone virus propagation and response mechanisms
//!
//! This crate is the primary contribution of the reproduction of
//! *"Quantifying the Effectiveness of Mobile Phone Virus Response
//! Mechanisms"* (Van Ruitenbeek, Courtney, Sanders, Stevens — DSN 2007):
//! a parameterized stochastic model of MMS-borne virus propagation through
//! a population of mobile phones, together with the paper's six response
//! mechanisms and the experiment harness that regenerates every figure.
//!
//! ## Model at a glance (§2 & §4 of the paper)
//!
//! * A population of phones (default 1000, 80 % vulnerable) connected by
//!   reciprocal power-law contact lists (mean size 80).
//! * An infected phone sends infected MMS messages — to its contacts in
//!   order, or to randomly dialed numbers — paced by a minimum
//!   inter-message gap and optional per-day / per-reboot quotas
//!   ([`VirusProfile`]).
//! * A delivered message waits in the recipient's inbox until the user
//!   reads it (exponential read delay) and then is accepted with the
//!   declining probability `AF / 2^n` (AF = 0.468, `n` = ordinal of the
//!   infected message at that phone), giving the paper's eventual
//!   acceptance of ≈ 0.40 ([`behavior::AcceptanceModel`]).
//! * Six composable response mechanisms act at the point of reception
//!   (gateway signature scan, gateway detection algorithm), infection
//!   (user education, immunization patches) and dissemination (anomaly
//!   monitoring, blacklisting) — see [`response`].
//!
//! ## Quick start
//!
//! ```rust
//! use mpvsim_core::{ScenarioConfig, VirusProfile, run_scenario};
//! use mpvsim_des::SimDuration;
//!
//! // Virus 1 baseline over 3 simulated days, one replication.
//! let config = ScenarioConfig::baseline(VirusProfile::virus1())
//!     .with_horizon(SimDuration::from_days(3));
//! let result = run_scenario(&config, 42).expect("valid scenario");
//! println!("infected after 3 days: {}", result.final_infected);
//! assert!(result.final_infected > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod behavior;
pub mod bounds;
pub mod claims;
pub mod config;
pub mod figures;
pub mod meanfield;
pub mod model;
pub mod probe;
pub mod response;
pub mod run;
pub mod shard;
pub mod spec;
pub mod studies;
pub mod sweep;
pub mod validate;
pub mod virus;

pub use behavior::{AcceptanceModel, BehaviorConfig, DEFAULT_ACCEPTANCE_FACTOR};
pub use bounds::{
    solve_bounds, BoundsKnob, BoundsOptions, BoundsOutcome, BoundsReport, BoundsRun, BoundsSpec,
    BoundsStore, ConfirmPolicy, Evaluation, ProgressEvent, SearchRange, BOUNDS_REPORT_SCHEMA,
    BOUNDS_SCHEMA,
};
pub use config::{ConfigError, MobilityConfig, PopulationConfig, ScenarioConfig};
pub use probe::{
    BlockCause, ChainRecord, InfectionCause, MechanismTelemetry, Milestone, NoopProbe, ProbeKind,
    ProbeOutput, SimProbe, TelemetryBin, TraceRecord,
};
pub use response::{
    Blacklist, DetectionAlgorithm, Immunization, Monitoring, ResponseConfig, RolloutOrder,
    SignatureScan, UserEducation,
};
pub use run::{
    run_scenario, run_scenario_cached, run_scenario_configured, run_scenario_probed,
    run_scenario_probed_with, run_scenario_probed_with_layout, run_scenario_with_metrics,
    run_scenario_with_metrics_fel, AdaptiveResult, EngineOptions, ExperimentPlan, ExperimentResult,
    LayoutKind, RunResult, TopologyCache, TopologyCacheStats, DEFAULT_EVENT_BUDGET,
};
pub use shard::{
    record_shard_telemetry, reject_unshardable, run_scenario_sharded,
    run_scenario_sharded_configured, ShardLane, ShardMode, ShardOutcome, ShardTelemetry,
};
pub use spec::{ScenarioSpec, SCENARIO_SCHEMA};
pub use studies::{StudyId, StudyInfo, StudyKind};
pub use sweep::{
    resume_sweep, run_sweep, CellResult, ResultsStore, SweepCell, SweepError, SweepOptions,
    SweepReport, SweepSpec,
};
pub use validate::{
    bless_oracle, bless_study, bless_study_specs, check_invariants, check_oracle,
    check_sharded_consistency, check_sharded_invariants, check_study, check_study_specs, fuzz_case,
    fuzz_cases, load_study_specs, save_study_specs, shardable, study_specs_path,
    trajectory_fingerprint, CellGolden, Drift, FuzzFailure, FuzzReport, GoldenScale,
    InvariantProbe, InvariantReport, OracleGolden, OracleScale, StudyGolden, StudySpecSet, Variant,
    SPEC_SET_SCHEMA,
};
pub use virus::{BluetoothVector, SendQuota, TargetingStrategy, VirusProfile};
