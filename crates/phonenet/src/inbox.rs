//! Per-phone inboxes: delivered-but-unread infected messages.
//!
//! §4.1 of the paper: "the incoming infected MMS messages wait in the
//! inbox until the phone user makes a decision whether to accept (open)
//! the MMS message attachment." The epidemic model schedules one read
//! event per delivery; the inbox tracks how many deliveries are still
//! awaiting their read, which makes user backlog observable (e.g. the
//! flood of unread virus messages Virus 3 produces).

use serde::{Deserialize, Serialize};

use crate::phone::PhoneId;

/// Unread-message bookkeeping for a whole population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inboxes {
    pending: Vec<u32>,
    total_delivered: u64,
    total_read: u64,
    peak_pending: u32,
}

impl Inboxes {
    /// Creates empty inboxes for `population_size` phones.
    pub fn new(population_size: usize) -> Self {
        Inboxes {
            pending: vec![0; population_size],
            total_delivered: 0,
            total_read: 0,
            peak_pending: 0,
        }
    }

    /// Records a delivery into `phone`'s inbox; returns its new depth.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn deliver(&mut self, phone: PhoneId) -> u32 {
        let slot = &mut self.pending[phone.index()];
        *slot += 1;
        self.total_delivered += 1;
        if *slot > self.peak_pending {
            self.peak_pending = *slot;
        }
        *slot
    }

    /// Records that `phone`'s user read (and decided on) one pending
    /// message; returns the remaining depth.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range or its inbox is empty — a read
    /// without a matching delivery is a model bug.
    pub fn read(&mut self, phone: PhoneId) -> u32 {
        let slot = &mut self.pending[phone.index()];
        assert!(*slot > 0, "read from an empty inbox at {phone}");
        *slot -= 1;
        self.total_read += 1;
        *slot
    }

    /// Messages currently waiting in `phone`'s inbox.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn pending(&self, phone: PhoneId) -> u32 {
        self.pending[phone.index()]
    }

    /// Messages currently waiting across all inboxes.
    pub fn total_pending(&self) -> u64 {
        self.pending.iter().map(|&p| u64::from(p)).sum()
    }

    /// Lifetime delivery count.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Lifetime read count.
    pub fn total_read(&self) -> u64 {
        self.total_read
    }

    /// The deepest any single inbox ever got.
    pub fn peak_pending(&self) -> u32 {
        self.peak_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliver_then_read_balances() {
        let mut ib = Inboxes::new(3);
        assert_eq!(ib.deliver(PhoneId(1)), 1);
        assert_eq!(ib.deliver(PhoneId(1)), 2);
        assert_eq!(ib.pending(PhoneId(1)), 2);
        assert_eq!(ib.read(PhoneId(1)), 1);
        assert_eq!(ib.read(PhoneId(1)), 0);
        assert_eq!(ib.total_delivered(), 2);
        assert_eq!(ib.total_read(), 2);
        assert_eq!(ib.total_pending(), 0);
    }

    #[test]
    fn peak_tracks_deepest_inbox() {
        let mut ib = Inboxes::new(2);
        for _ in 0..5 {
            ib.deliver(PhoneId(0));
        }
        for _ in 0..5 {
            ib.read(PhoneId(0));
        }
        ib.deliver(PhoneId(1));
        assert_eq!(ib.peak_pending(), 5);
    }

    #[test]
    fn phones_tracked_independently() {
        let mut ib = Inboxes::new(2);
        ib.deliver(PhoneId(0));
        assert_eq!(ib.pending(PhoneId(1)), 0);
        assert_eq!(ib.total_pending(), 1);
    }

    #[test]
    #[should_panic(expected = "empty inbox")]
    fn read_from_empty_inbox_panics() {
        let mut ib = Inboxes::new(1);
        ib.read(PhoneId(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut ib = Inboxes::new(1);
        ib.deliver(PhoneId(7));
    }
}
