//! Benchmarks for the ablation studies (DESIGN.md §5a design choices)
//! and the §6 extension studies, at a reduced scale — `cargo bench`
//! exercises every ablation's regeneration path.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use mpvsim_core::ablations;
use mpvsim_core::figures::{self, FigureOptions};

fn opts() -> FigureOptions {
    FigureOptions {
        reps: 1,
        master_seed: 2007,
        engine: mpvsim_core::EngineOptions::new(),
        population: 120,
        ..FigureOptions::default()
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    macro_rules! abl_bench {
        ($name:literal, $f:path) => {
            group.bench_function($name, |b| {
                b.iter(|| black_box($f(&opts()).expect("ablation definition is valid")))
            });
        };
    }

    abl_bench!("read_delay", ablations::ablation_read_delay);
    abl_bench!("detect_threshold", ablations::ablation_detect_threshold);
    abl_bench!("topology_family", ablations::ablation_topology);
    abl_bench!("day_alignment", ablations::ablation_day_alignment);
    abl_bench!("acceptance_factor", ablations::ablation_acceptance_factor);
    abl_bench!("virus4_semantics", ablations::ablation_virus4_semantics);
    abl_bench!("ext_combo", figures::combo_study);
    abl_bench!("ext_bluetooth", figures::bluetooth_study);
    abl_bench!("ext_false_positives", figures::false_positive_study);
    abl_bench!("ext_rollout_order", figures::rollout_order_study);
    abl_bench!("ext_congestion", figures::congestion_study);
    abl_bench!("txt_diminishing_returns", figures::diminishing_returns_study);

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
