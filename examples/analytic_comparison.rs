//! Analytic comparison: race the stochastic simulator against the
//! Kephart–White-style mean-field model for the random-dialing Virus 3.
//!
//! The mean-field limit is the closest thing a simulation study has to
//! ground truth; seeing the two curves track each other is the cheapest
//! way to convince yourself the simulator's stochastic machinery is
//! sound.
//!
//! ```text
//! cargo run --release --example analytic_comparison
//! ```

use mpvsim::core::meanfield::{integrate, MeanFieldParams};
use mpvsim::prelude::*;
use mpvsim::stats::render::ascii_chart;

fn main() -> Result<(), ConfigError> {
    let n = 1000;
    let horizon = SimDuration::from_hours(24);

    // Stochastic simulator: 10 replications of the Virus 3 baseline.
    let config = ScenarioConfig::baseline(VirusProfile::virus3()).with_horizon(horizon);
    let sim = ExperimentPlan::new(10)
        .master_seed(2007)
        .engine(EngineOptions::new().with_threads(4))
        .run(&config)?;
    let sim_curve = sim.mean_series();

    // Mean-field model with the same parameters.
    let params = MeanFieldParams::virus3_baseline(n);
    let analytic = integrate(&params, horizon, SimDuration::from_hours(1));

    println!("{:<24} {:>12} {:>12}", "", "simulator", "mean-field");
    println!(
        "{:<24} {:>12.1} {:>12.1}",
        "final infected",
        sim.final_infected.mean,
        analytic.final_value().unwrap_or(f64::NAN),
    );
    let half = analytic.final_value().unwrap_or(0.0) / 2.0;
    println!(
        "{:<24} {:>12} {:>12}",
        "time to half-plateau (h)",
        sim.mean_time_to_reach(half).map(|t| format!("{t:.1}")).unwrap_or_default(),
        analytic.time_to_reach(half).map(|t| format!("{t:.1}")).unwrap_or_default(),
    );

    println!(
        "\n{}",
        ascii_chart(
            &[("simulator (10 reps)", &sim_curve), ("mean-field", &analytic)],
            70,
            16,
            Some(330.0),
        )
    );
    println!(
        "The deterministic curve threads the Monte-Carlo one: the same\n\
         offer-accumulation law `AF/2^n` drives both, so agreement here\n\
         validates the event machinery rather than the epidemiology."
    );
    Ok(())
}
