//! Custom virus: the model is fully parameterized (§4.1 of the paper), so
//! you can study viruses the paper never defined. This example builds a
//! "weekend burster" — dormant for a day, then bursting like Virus 2 but
//! with random dialing mixed in via a sweep over the send gap — and shows
//! how its speed responds to each knob.
//!
//! ```text
//! cargo run --release --example custom_virus
//! ```

use mpvsim::prelude::*;

fn custom_virus(min_gap_mins: u64) -> VirusProfile {
    VirusProfile {
        name: format!("custom (gap ≥ {min_gap_mins} min)"),
        targeting: TargetingStrategy::ContactList,
        send_gap: DelaySpec::shifted_exp(
            SimDuration::from_mins(min_gap_mins),
            SimDuration::from_mins(min_gap_mins / 2),
        ),
        recipients_per_message: 5,
        quota: SendQuota::per_day(60),
        dormancy: SimDuration::from_hours(24),
        global_day_bursts: false,
        mms_vector: true,
        bluetooth: None,
        piggyback: false,
    }
}

fn main() -> Result<(), ConfigError> {
    println!("sweeping the minimum inter-message gap of a custom virus\n");
    println!("{:<28} {:>14} {:>16}", "virus", "final infected", "t(150 phones) h");

    for min_gap in [2u64, 10, 30, 120] {
        let virus = custom_virus(min_gap);
        virus.validate().expect("custom profile is well-formed");

        let mut config = ScenarioConfig::baseline(virus);
        config.horizon = SimDuration::from_days(6);

        let result = ExperimentPlan::new(5)
            .master_seed(4242)
            .engine(EngineOptions::new().with_threads(4))
            .run(&config)?;
        let t150 = result
            .mean_time_to_reach(150.0)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "never".to_owned());
        println!("{:<28} {:>14.1} {:>16}", config.virus.name, result.final_infected.mean, t150);
    }

    println!(
        "\nFaster sending spreads the virus sooner, but the declining\n\
         acceptance curve caps the plateau near 40% of the vulnerable\n\
         population regardless of the gap — exactly the paper's point that\n\
         different mechanisms must target speed vs. penetration."
    );
    Ok(())
}
