//! MMS messages as they transit the provider's network.

use serde::{Deserialize, Serialize};

use crate::phone::PhoneId;

/// A unique message identifier, assigned by the sender's gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// An MMS message: one sender, one or more recipients (Virus 2 addresses
/// up to 100 recipients per message), and an infection flag.
///
/// The model only tracks virus traffic (per §4 of the paper, legitimate
/// traffic is not simulated), but the `infected` flag is kept explicit so
/// extensions can mix in legitimate messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmsMessage {
    /// Message identity.
    pub id: MessageId,
    /// The sending phone.
    pub sender: PhoneId,
    /// All addressed recipients (one delivery attempt each).
    pub recipients: Vec<PhoneId>,
    /// Whether the attachment carries the virus.
    pub infected: bool,
}

impl MmsMessage {
    /// A virus-infected message from `sender` to `recipients`.
    ///
    /// # Panics
    ///
    /// Panics if `recipients` is empty — an MMS needs at least one target.
    pub fn infected(id: MessageId, sender: PhoneId, recipients: Vec<PhoneId>) -> Self {
        assert!(!recipients.is_empty(), "an MMS message needs at least one recipient");
        MmsMessage { id, sender, recipients, infected: true }
    }

    /// Number of addressed recipients.
    pub fn fan_out(&self) -> usize {
        self.recipients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infected_constructor_sets_flag() {
        let m = MmsMessage::infected(MessageId(1), PhoneId(2), vec![PhoneId(3), PhoneId(4)]);
        assert!(m.infected);
        assert_eq!(m.sender, PhoneId(2));
        assert_eq!(m.fan_out(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn empty_recipients_rejected() {
        let _ = MmsMessage::infected(MessageId(1), PhoneId(2), vec![]);
    }

    #[test]
    fn message_ids_order() {
        assert!(MessageId(1) < MessageId(2));
    }
}
