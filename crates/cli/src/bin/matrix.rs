//! Prints the paper's §5.3 synthesis: the mechanism-vs-virus
//! effectiveness matrix (final infections as a percentage of each
//! virus's baseline).
use mpvsim_core::figures::effectiveness_matrix;

fn main() {
    let opts = match mpvsim_cli::parse_options(std::env::args().skip(1))
        .and_then(|cli| cli.figure_with_observer())
    {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!("running the 4-virus × 6-mechanism effectiveness matrix …");
    match effectiveness_matrix(&opts) {
        Ok(results) => {
            let get = |label: String| -> f64 {
                results
                    .iter()
                    .find(|r| r.label == label)
                    .map(|r| r.result.final_infected.mean)
                    .unwrap_or(f64::NAN)
            };
            let mechanisms =
                ["scan", "detection", "education", "immunization", "monitoring", "blacklist"];
            println!("== §5.3 — Effectiveness Matrix (final infections, % of baseline) ==\n");
            print!("{:<10} {:>10}", "virus", "baseline");
            for m in mechanisms {
                print!(" {m:>13}");
            }
            println!();
            for virus in ["Virus 1", "Virus 2", "Virus 3", "Virus 4"] {
                let base = get(format!("{virus} | baseline"));
                print!("{virus:<10} {base:>10.1}");
                for m in mechanisms {
                    let v = get(format!("{virus} | {m}"));
                    print!(" {:>12.0}%", 100.0 * v / base);
                }
                println!();
            }
            println!(
                "\nReading: small numbers = the mechanism contains that virus.\n\
                 The paper's conclusion is the *pattern*: reception/infection-point\n\
                 mechanisms (scan, detection, education, immunization) beat the\n\
                 self-throttled viruses 1/2/4 but are too slow for Virus 3, while\n\
                 the dissemination-point mechanisms (monitoring, blacklisting)\n\
                 catch exactly the aggressive Virus 3."
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
