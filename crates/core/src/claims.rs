//! Machine-checkable versions of the paper's quantitative claims.
//!
//! Each figure's headline finding is encoded as a predicate over the
//! regenerated curves, so "does the reproduction still hold?" is a
//! program you can run (`cargo run -p mpvsim-cli --bin report`), not a
//! diff you eyeball. The checks are *relative* statements (orderings,
//! ratios) that survive population down-scaling; absolute timings are
//! explicitly out of scope (see EXPERIMENTS.md).

use std::fmt;

use crate::config::ConfigError;
use crate::figures::{FigureOptions, LabeledResult};
use crate::studies::{self, StudyId};

/// The verdict for one paper claim.
#[derive(Debug, Clone)]
pub struct ClaimVerdict {
    /// Short claim identifier (e.g. `FIG6-HOLDS-150`).
    pub id: &'static str,
    /// The paper's claim, paraphrased.
    pub claim: &'static str,
    /// What this run measured, as a human-readable summary.
    pub measured: String,
    /// Whether the claim held in this run.
    pub pass: bool,
}

impl fmt::Display for ClaimVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}: {}",
            if self.pass { "PASS" } else { "FAIL" },
            self.id,
            self.claim,
            self.measured
        )
    }
}

fn find<'a>(results: &'a [LabeledResult], label: &str) -> Option<&'a LabeledResult> {
    results.iter().find(|r| r.label == label)
}

fn final_of(results: &[LabeledResult], label: &str) -> f64 {
    find(results, label).map(|r| r.result.final_infected.mean).unwrap_or(f64::NAN)
}

/// Figure 1: every baseline plateaus near 40 % of the vulnerable
/// population (Virus 4 is exempted — it may not plateau by the horizon).
pub fn check_fig1_plateau(results: &[LabeledResult], vulnerable: f64) -> ClaimVerdict {
    let expected = 0.4 * vulnerable;
    let mut measured = Vec::new();
    let mut pass = true;
    for label in ["Virus 1", "Virus 2", "Virus 3"] {
        let f = final_of(results, label);
        measured.push(format!("{label}: {f:.0}"));
        if (f - expected).abs() > 0.35 * expected || f.is_nan() {
            pass = false;
        }
    }
    ClaimVerdict {
        id: "FIG1-PLATEAU",
        claim: "baselines plateau near 0.40 × vulnerable population",
        measured: format!("expected ≈ {expected:.0}; {}", measured.join(", ")),
        pass,
    }
}

/// Figure 1: the speed ordering Virus 3 ≪ Virus 2 < Virus 1 < Virus 4.
pub fn check_fig1_speed_order(results: &[LabeledResult]) -> ClaimVerdict {
    let t = |label: &str| -> f64 {
        find(results, label)
            .and_then(|r| {
                let half = r.result.final_infected.mean / 2.0;
                r.result.mean_time_to_reach(half)
            })
            .unwrap_or(f64::NAN)
    };
    let (t3, t2, t1, t4) = (t("Virus 3"), t("Virus 2"), t("Virus 1"), t("Virus 4"));
    let pass = t3 < t2 && t2 < t1 && t1 < t4;
    ClaimVerdict {
        id: "FIG1-SPEED-ORDER",
        claim: "half-plateau times order V3 < V2 < V1 < V4",
        measured: format!("t½ = {t3:.1} / {t2:.1} / {t1:.1} / {t4:.1} h"),
        pass,
    }
}

/// Figure 2: scan containment is monotone in the activation delay, and
/// even the 24 h delay contains the virus well below baseline.
pub fn check_fig2(results: &[LabeledResult]) -> ClaimVerdict {
    let baseline = final_of(results, "Baseline");
    let f6 = final_of(results, "6-Hour Delay");
    let f12 = final_of(results, "12-Hour Delay");
    let f24 = final_of(results, "24-Hour Delay");
    let pass = f6 <= f12 && f12 <= f24 && f24 < 0.5 * baseline;
    ClaimVerdict {
        id: "FIG2-SCAN",
        claim: "containment monotone in scan delay; 24 h still contains Virus 1",
        measured: format!("baseline {baseline:.0}; delays → {f6:.1} / {f12:.1} / {f24:.1}"),
        pass,
    }
}

/// Figure 3: detection slows Virus 2 (t½ ordered by accuracy) but never
/// stops it (plateaus survive).
pub fn check_fig3(results: &[LabeledResult]) -> ClaimVerdict {
    let baseline = find(results, "Baseline");
    let t = |label: &str| -> f64 {
        find(results, label)
            .and_then(|r| r.result.mean_time_to_reach(final_of(results, "Baseline") / 2.0))
            .unwrap_or(f64::NAN)
    };
    let t_base = baseline
        .and_then(|r| r.result.mean_time_to_reach(r.result.final_infected.mean / 2.0))
        .unwrap_or(f64::NAN);
    let t99 = t("0.99 Accuracy");
    let f99 = final_of(results, "0.99 Accuracy");
    let f_base = final_of(results, "Baseline");
    // Strongest accuracy visibly slows the spread; nothing stops it.
    let pass = t99 > 1.2 * t_base && f99 > 0.7 * f_base;
    ClaimVerdict {
        id: "FIG3-DETECTION",
        claim: "detection slows Virus 2 (more with higher accuracy) but never stops it",
        measured: format!(
            "t½ baseline {t_base:.1} h vs 0.99-accuracy {t99:.1} h; finals {f_base:.0} vs {f99:.0}"
        ),
        pass,
    }
}

/// Figure 4: education scales the plateau by ≈ ½ (scale 0.5) and ≈ ¼
/// (scale 0.25) for the three plateau-reaching viruses.
pub fn check_fig4(results: &[LabeledResult]) -> ClaimVerdict {
    let mut measured = Vec::new();
    let mut pass = true;
    for virus in ["Virus 1", "Virus 2", "Virus 3"] {
        let base = final_of(results, virus);
        let half = final_of(results, &format!("{virus} User Ed 0.20")) / base;
        let quarter = final_of(results, &format!("{virus} User Ed 0.10")) / base;
        measured.push(format!("{virus}: ×{half:.2}/×{quarter:.2}"));
        if !((0.35..=0.70).contains(&half) && (0.12..=0.45).contains(&quarter)) {
            pass = false;
        }
    }
    ClaimVerdict {
        id: "FIG4-EDUCATION",
        claim: "education scales plateaus to ≈ ½ and ≈ ¼ of baseline",
        measured: measured.join("; "),
        pass,
    }
}

/// Figure 5: development time dominates rollout duration.
pub fn check_fig5(results: &[LabeledResult]) -> ClaimVerdict {
    let baseline = final_of(results, "Baseline");
    let fast_dev_worst = final_of(results, "Hours 24-48");
    let slow_dev_best = final_of(results, "Hours 48-49");
    let within_group_ordered = final_of(results, "Hours 24-25") <= fast_dev_worst + 2.0
        && final_of(results, "Hours 48-49") <= final_of(results, "Hours 48-72") + 2.0;
    let pass = fast_dev_worst <= slow_dev_best + 2.0
        && within_group_ordered
        && slow_dev_best < 0.5 * baseline;
    ClaimVerdict {
        id: "FIG5-IMMUNIZATION",
        claim: "patch development time dominates rollout duration",
        measured: format!(
            "worst 24 h-dev arm {fast_dev_worst:.1} ≤ best 48 h-dev arm {slow_dev_best:.1}; baseline {baseline:.0}"
        ),
        pass,
    }
}

/// Figure 6: monitoring slows Virus 3, more with longer forced waits.
pub fn check_fig6(results: &[LabeledResult]) -> ClaimVerdict {
    let baseline = final_of(results, "Baseline");
    let f15 = final_of(results, "15-Minute Wait");
    let f30 = final_of(results, "30-Minute Wait");
    let f60 = final_of(results, "60-Minute Wait");
    let pass = f60 <= f30 + 3.0 && f30 <= f15 + 3.0 && f30 < 0.6 * baseline;
    ClaimVerdict {
        id: "FIG6-MONITORING",
        claim: "monitoring slows Virus 3; longer waits contain more",
        measured: format!("baseline {baseline:.0}; waits → {f15:.1} / {f30:.1} / {f60:.1}"),
        pass,
    }
}

/// Figure 7: blacklist containment ordered by threshold.
pub fn check_fig7(results: &[LabeledResult]) -> ClaimVerdict {
    let baseline = final_of(results, "Baseline");
    let f10 = final_of(results, "10 Messages");
    let f20 = final_of(results, "20 Messages");
    let f40 = final_of(results, "40 Messages");
    let pass = f10 <= f20 + 3.0 && f20 <= f40 + 10.0 && f10 < 0.25 * baseline;
    ClaimVerdict {
        id: "FIG7-BLACKLIST",
        claim: "blacklist containment strengthens as the threshold drops",
        measured: format!(
            "baseline {baseline:.0}; thresholds 10/20/40 → {f10:.1} / {f20:.1} / {f40:.1}"
        ),
        pass,
    }
}

/// §5.2: blacklisting cannot touch multi-recipient Virus 2.
pub fn check_blacklist_v2(results: &[LabeledResult]) -> ClaimVerdict {
    let baseline = final_of(results, "Virus 2 Baseline");
    let worst = ["Virus 2 Threshold 10", "Virus 2 Threshold 40"]
        .iter()
        .map(|l| final_of(results, l))
        .fold(f64::INFINITY, f64::min);
    let pass = worst > 0.75 * baseline;
    ClaimVerdict {
        id: "TXT-BL-V2",
        claim: "blacklisting is ineffective against Virus 2 at every threshold",
        measured: format!("baseline {baseline:.0}; most-contained arm {worst:.0}"),
        pass,
    }
}

/// §5.3: penetration fractions match across a population doubling.
pub fn check_scaling(results: &[LabeledResult], n_small: usize) -> ClaimVerdict {
    let mut measured = Vec::new();
    let mut pass = true;
    for virus in ["Virus 1", "Virus 3"] {
        let small = final_of(results, &format!("{virus} n={n_small}")) / n_small as f64;
        let large = final_of(results, &format!("{virus} n={}", 2 * n_small)) / (2 * n_small) as f64;
        measured.push(format!("{virus}: {small:.3} vs {large:.3}"));
        if (small - large).abs() > 0.06 {
            pass = false;
        }
    }
    ClaimVerdict {
        id: "TXT-SCALE",
        claim: "penetration fractions scale across a population doubling",
        measured: measured.join("; "),
        pass,
    }
}

/// §6: the monitoring + scan combination beats both parts.
pub fn check_combo(results: &[LabeledResult]) -> ClaimVerdict {
    let scan = final_of(results, "Scan only");
    let monitor = final_of(results, "Monitoring only");
    let both = final_of(results, "Monitoring + Scan");
    let pass = both < scan && both <= monitor + 3.0;
    ClaimVerdict {
        id: "EXT-COMBO",
        claim: "a slowing mechanism buys the time a halting mechanism needs",
        measured: format!("scan {scan:.0}, monitoring {monitor:.0}, both {both:.1}"),
        pass,
    }
}

/// §6 Bluetooth extension: the gateway scan is blind to proximity spread.
pub fn check_bluetooth(results: &[LabeledResult]) -> ClaimVerdict {
    let base = final_of(results, "BT worm baseline");
    let scanned = final_of(results, "BT worm + perfect scan");
    let educated = final_of(results, "BT worm + education 0.20");
    let pass = (base - scanned).abs() < 1e-9 && educated < 0.75 * base;
    ClaimVerdict {
        id: "EXT-BT",
        claim: "gateway scan is blind to Bluetooth; education still works",
        measured: format!(
            "baseline {base:.0}, with perfect scan {scanned:.0}, educated {educated:.0}"
        ),
        pass,
    }
}

/// Extension: monitoring false positives trade off against containment.
pub fn check_false_positives(results: &[LabeledResult]) -> ClaimVerdict {
    let fp_of = |label: &str| -> f64 {
        find(results, label)
            .map(|r| {
                let total: u64 =
                    r.result.runs.iter().map(|x| x.stats.false_positive_throttles).sum();
                total as f64 / r.result.runs.len().max(1) as f64
            })
            .unwrap_or(f64::NAN)
    };
    let strict_fp = fp_of("threshold 2/h");
    let default_fp = fp_of("threshold 5/h");
    let strict_contained = final_of(results, "threshold 2/h");
    let loose_contained = final_of(results, "threshold 10/h");
    let pass = strict_fp > 0.0 && default_fp == 0.0 && strict_contained <= loose_contained + 5.0;
    ClaimVerdict {
        id: "EXT-FP",
        claim:
            "stricter monitoring flags innocents; the default threshold has zero false positives",
        measured: format!(
            "FP/run: threshold-2 {strict_fp:.1}, threshold-5 {default_fp:.1}; \
             contained {strict_contained:.1} (strict) vs {loose_contained:.1} (loose)"
        ),
        pass,
    }
}

/// Extension: hubs-first patching is at least competitive with the
/// paper's uniform rollout on a power-law contact graph.
pub fn check_rollout_order(results: &[LabeledResult]) -> ClaimVerdict {
    let uniform = final_of(results, "Virus 1 uniform");
    let hubs = final_of(results, "Virus 1 hubs-first");
    let baseline = final_of(results, "Virus 1 Baseline");
    let pass = hubs <= uniform * 1.25 + 3.0 && uniform < 0.5 * baseline;
    ClaimVerdict {
        id: "EXT-ROLL",
        claim: "hubs-first patch rollout is at least as effective as uniform",
        measured: format!("baseline {baseline:.0}; uniform {uniform:.1}, hubs-first {hubs:.1}"),
        pass,
    }
}

/// Extension: finite gateway capacity congests transit without rescuing
/// the population from a fast virus.
pub fn check_congestion(results: &[LabeledResult]) -> ClaimVerdict {
    let free = final_of(results, "infinite capacity (paper)");
    let jammed = find(results, "300 msgs/h");
    let jammed_final = final_of(results, "300 msgs/h");
    let peak_h = jammed
        .and_then(|r| r.result.runs.iter().filter_map(|x| x.gateway_peak_delay).max())
        .map(|d| d.as_hours_f64())
        .unwrap_or(f64::NAN);
    let pass = peak_h > 1.0 && jammed_final > 0.5 * free;
    ClaimVerdict {
        id: "EXT-CONG",
        claim: "a virus flood congests a finite gateway without being stopped by it",
        measured: format!(
            "finals {free:.0} (∞) vs {jammed_final:.0} (300/h); peak transit delay {peak_h:.1} h"
        ),
        pass,
    }
}

/// §5.3 synthesis: the effectiveness matrix's sign pattern — which
/// mechanism class beats which virus class. This is the paper's central
/// conclusion ("response mechanisms must be agile enough to respond
/// quickly to rapidly propagating viruses and discriminating enough to
/// detect more stealthy, slowly propagating viruses").
pub fn check_matrix(results: &[LabeledResult]) -> ClaimVerdict {
    let ratio = |virus: &str, mech: &str| -> f64 {
        final_of(results, &format!("{virus} | {mech}"))
            / final_of(results, &format!("{virus} | baseline"))
    };
    // (virus, mechanism, must_be_effective): effective = < 0.5 × baseline,
    // ineffective = > 0.6 × baseline.
    let cells = [
        ("Virus 1", "scan", true),
        ("Virus 1", "immunization", true),
        ("Virus 1", "monitoring", false),
        ("Virus 3", "scan", false),
        ("Virus 3", "immunization", false),
        ("Virus 3", "monitoring", true),
        ("Virus 3", "blacklist", true),
        ("Virus 2", "blacklist", false),
        ("Virus 4", "scan", true),
    ];
    let mut pass = true;
    let mut measured = Vec::new();
    for (virus, mech, effective) in cells {
        let r = ratio(virus, mech);
        let ok = if effective { r < 0.5 } else { r > 0.6 };
        measured.push(format!("{virus}/{mech} ×{r:.2}{}", if ok { "" } else { " ✗" }));
        if !ok {
            pass = false;
        }
    }
    ClaimVerdict {
        id: "TXT-MATRIX",
        claim: "fast mechanisms beat fast viruses; discriminating mechanisms beat slow ones",
        measured: measured.join(", "),
        pass,
    }
}

/// A study's claim-check function: results feed in, verdicts out.
pub type ClaimCheckFn = fn(&[LabeledResult], &FigureOptions) -> Vec<ClaimVerdict>;

/// The claim checks a study's results feed, if any. Registry studies
/// without encoded claims (currently only the diminishing-returns knob
/// sweep, which is exploratory) return `None` and are skipped by
/// [`verify_all`].
pub fn checks_for(study: StudyId) -> Option<ClaimCheckFn> {
    match study {
        StudyId::Fig1Baseline => Some(|r, opts| {
            vec![check_fig1_plateau(r, 0.8 * opts.population as f64), check_fig1_speed_order(r)]
        }),
        StudyId::Fig2VirusScan => Some(|r, _| vec![check_fig2(r)]),
        StudyId::Fig3Detection => Some(|r, _| vec![check_fig3(r)]),
        StudyId::Fig4Education => Some(|r, _| vec![check_fig4(r)]),
        StudyId::Fig5Immunization => Some(|r, _| vec![check_fig5(r)]),
        StudyId::Fig6Monitoring => Some(|r, _| vec![check_fig6(r)]),
        StudyId::Fig7Blacklist => Some(|r, _| vec![check_fig7(r)]),
        StudyId::BlacklistMatrix => Some(|r, _| vec![check_blacklist_v2(r)]),
        StudyId::Scaling => Some(|r, opts| vec![check_scaling(r, opts.population)]),
        StudyId::Combo => Some(|r, _| vec![check_combo(r)]),
        StudyId::ExtBluetooth => Some(|r, _| vec![check_bluetooth(r)]),
        StudyId::ExtFalsePositives => Some(|r, _| vec![check_false_positives(r)]),
        StudyId::ExtRolloutOrder => Some(|r, _| vec![check_rollout_order(r)]),
        StudyId::DiminishingReturns => None,
        StudyId::ExtCongestion => Some(|r, _| vec![check_congestion(r)]),
        StudyId::Matrix => Some(|r, _| vec![check_matrix(r)]),
    }
}

/// Runs every registry study with encoded claims at the given scale and
/// checks them, in registry order.
///
/// # Errors
///
/// Propagates [`ConfigError`] from the underlying experiments.
pub fn verify_all(opts: &FigureOptions) -> Result<Vec<ClaimVerdict>, ConfigError> {
    let mut out = Vec::new();
    for info in studies::registry() {
        let Some(check) = checks_for(info.id) else { continue };
        let results = info.id.run(opts)?;
        out.extend(check(&results, opts));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{EngineOptions, ExperimentResult, RunResult};
    use mpvsim_stats::{AggregateSeries, Summary, TimeSeries};

    /// Builds a synthetic labelled result whose series rises linearly to
    /// `final_value` over `hours`.
    fn synthetic(label: &str, final_value: f64, hours: usize) -> LabeledResult {
        let values: Vec<f64> = (0..=hours).map(|h| final_value * h as f64 / hours as f64).collect();
        let series = TimeSeries::from_values(1.0, values.clone());
        LabeledResult {
            label: label.to_owned(),
            result: ExperimentResult {
                aggregate: AggregateSeries {
                    step_hours: 1.0,
                    mean: values,
                    ci95_half_width: vec![0.0; hours + 1],
                    replications: 1,
                },
                final_infected: Summary::of(&[final_value]).expect("nonempty"),
                runs: vec![RunResult {
                    traffic: series.clone(),
                    series,
                    final_infected: final_value as usize,
                    stats: Default::default(),
                    activation: Default::default(),
                    gateway_peak_delay: None,
                    resident_state_bytes: 0,
                    probe: None,
                }],
            },
        }
    }

    #[test]
    fn fig1_plateau_passes_on_target_values() {
        let results = vec![
            synthetic("Virus 1", 320.0, 100),
            synthetic("Virus 2", 300.0, 50),
            synthetic("Virus 3", 330.0, 10),
            synthetic("Virus 4", 280.0, 400),
        ];
        assert!(check_fig1_plateau(&results, 800.0).pass);
        assert!(!check_fig1_plateau(&results, 2000.0).pass, "wrong population must fail");
    }

    #[test]
    fn fig1_speed_order_detects_inversions() {
        let good = vec![
            synthetic("Virus 3", 320.0, 10),
            synthetic("Virus 2", 320.0, 40),
            synthetic("Virus 1", 320.0, 100),
            synthetic("Virus 4", 320.0, 300),
        ];
        assert!(check_fig1_speed_order(&good).pass);
        let bad = vec![
            synthetic("Virus 3", 320.0, 300),
            synthetic("Virus 2", 320.0, 40),
            synthetic("Virus 1", 320.0, 100),
            synthetic("Virus 4", 320.0, 10),
        ];
        assert!(!check_fig1_speed_order(&bad).pass);
    }

    #[test]
    fn fig2_requires_monotone_containment() {
        let good = vec![
            synthetic("Baseline", 320.0, 100),
            synthetic("6-Hour Delay", 5.0, 100),
            synthetic("12-Hour Delay", 10.0, 100),
            synthetic("24-Hour Delay", 30.0, 100),
        ];
        assert!(check_fig2(&good).pass);
        let bad = vec![
            synthetic("Baseline", 320.0, 100),
            synthetic("6-Hour Delay", 50.0, 100),
            synthetic("12-Hour Delay", 10.0, 100),
            synthetic("24-Hour Delay", 300.0, 100),
        ];
        assert!(!check_fig2(&bad).pass);
    }

    #[test]
    fn fig4_bands() {
        let mk = |v: &str, base: f64, half: f64, quarter: f64| {
            vec![
                synthetic(v, base, 50),
                synthetic(&format!("{v} User Ed 0.20"), half, 50),
                synthetic(&format!("{v} User Ed 0.10"), quarter, 50),
            ]
        };
        let mut good = mk("Virus 1", 320.0, 165.0, 80.0);
        good.extend(mk("Virus 2", 300.0, 160.0, 85.0));
        good.extend(mk("Virus 3", 325.0, 175.0, 90.0));
        assert!(check_fig4(&good).pass);
        let mut bad = mk("Virus 1", 320.0, 310.0, 300.0);
        bad.extend(mk("Virus 2", 300.0, 160.0, 85.0));
        bad.extend(mk("Virus 3", 325.0, 175.0, 90.0));
        assert!(!check_fig4(&bad).pass);
    }

    #[test]
    fn missing_labels_yield_fail_not_panic() {
        let verdict = check_fig2(&[]);
        assert!(!verdict.pass, "NaN comparisons must fail closed");
        assert!(!check_fig6(&[]).pass);
        assert!(!check_combo(&[]).pass);
        assert!(!check_bluetooth(&[]).pass);
    }

    #[test]
    fn verdict_display_mentions_id_and_outcome() {
        let v = ClaimVerdict {
            id: "X",
            claim: "something holds",
            measured: "42".to_owned(),
            pass: true,
        };
        let s = v.to_string();
        assert!(s.contains("PASS") && s.contains('X') && s.contains("42"));
    }

    #[test]
    fn bluetooth_check_requires_exact_scan_equality() {
        let results = vec![
            synthetic("BT worm baseline", 320.0, 30),
            synthetic("BT worm + perfect scan", 320.0, 30),
            synthetic("BT worm + education 0.20", 170.0, 30),
        ];
        assert!(check_bluetooth(&results).pass);
        let results = vec![
            synthetic("BT worm baseline", 320.0, 30),
            synthetic("BT worm + perfect scan", 200.0, 30),
            synthetic("BT worm + education 0.20", 170.0, 30),
        ];
        assert!(!check_bluetooth(&results).pass, "scan must be exactly inert");
    }

    #[test]
    fn fig5_dev_dominance() {
        let good = vec![
            synthetic("Baseline", 280.0, 400),
            synthetic("Hours 24-25", 5.0, 400),
            synthetic("Hours 24-48", 7.0, 400),
            synthetic("Hours 48-49", 12.0, 400),
            synthetic("Hours 48-72", 14.0, 400),
        ];
        assert!(check_fig5(&good).pass);
        let bad = vec![
            synthetic("Baseline", 280.0, 400),
            synthetic("Hours 24-25", 50.0, 400),
            synthetic("Hours 24-48", 60.0, 400),
            synthetic("Hours 48-49", 12.0, 400),
            synthetic("Hours 48-72", 14.0, 400),
        ];
        assert!(!check_fig5(&bad).pass, "24 h-dev losing to 48 h-dev must fail");
    }

    #[test]
    fn fig6_and_fig7_orderings() {
        let good6 = vec![
            synthetic("Baseline", 320.0, 25),
            synthetic("15-Minute Wait", 160.0, 25),
            synthetic("30-Minute Wait", 30.0, 25),
            synthetic("60-Minute Wait", 5.0, 25),
        ];
        assert!(check_fig6(&good6).pass);
        let bad6 = vec![
            synthetic("Baseline", 320.0, 25),
            synthetic("15-Minute Wait", 30.0, 25),
            synthetic("30-Minute Wait", 300.0, 25),
            synthetic("60-Minute Wait", 310.0, 25),
        ];
        assert!(!check_fig6(&bad6).pass);

        let good7 = vec![
            synthetic("Baseline", 320.0, 25),
            synthetic("10 Messages", 3.0, 25),
            synthetic("20 Messages", 50.0, 25),
            synthetic("40 Messages", 200.0, 25),
        ];
        assert!(check_fig7(&good7).pass);
        let bad7 = vec![
            synthetic("Baseline", 320.0, 25),
            synthetic("10 Messages", 300.0, 25),
            synthetic("20 Messages", 50.0, 25),
            synthetic("40 Messages", 200.0, 25),
        ];
        assert!(!check_fig7(&bad7).pass);
    }

    #[test]
    fn blacklist_v2_immunity_band() {
        let good = vec![
            synthetic("Virus 2 Baseline", 300.0, 100),
            synthetic("Virus 2 Threshold 10", 310.0, 100),
            synthetic("Virus 2 Threshold 40", 295.0, 100),
        ];
        assert!(check_blacklist_v2(&good).pass);
        let bad = vec![
            synthetic("Virus 2 Baseline", 300.0, 100),
            synthetic("Virus 2 Threshold 10", 30.0, 100),
            synthetic("Virus 2 Threshold 40", 295.0, 100),
        ];
        assert!(!check_blacklist_v2(&bad).pass, "contained V2 contradicts the paper");
    }

    #[test]
    fn scaling_fraction_agreement() {
        let good = vec![
            synthetic("Virus 1 n=100", 32.0, 100),
            synthetic("Virus 1 n=200", 64.0, 100),
            synthetic("Virus 3 n=100", 33.0, 10),
            synthetic("Virus 3 n=200", 63.0, 10),
        ];
        assert!(check_scaling(&good, 100).pass);
        let bad = vec![
            synthetic("Virus 1 n=100", 32.0, 100),
            synthetic("Virus 1 n=200", 160.0, 100),
            synthetic("Virus 3 n=100", 33.0, 10),
            synthetic("Virus 3 n=200", 63.0, 10),
        ];
        assert!(!check_scaling(&bad, 100).pass);
    }

    #[test]
    fn combo_must_beat_both_parts() {
        let good = vec![
            synthetic("Scan only", 290.0, 25),
            synthetic("Monitoring only", 30.0, 25),
            synthetic("Monitoring + Scan", 3.0, 25),
        ];
        assert!(check_combo(&good).pass);
        let bad = vec![
            synthetic("Scan only", 290.0, 25),
            synthetic("Monitoring only", 30.0, 25),
            synthetic("Monitoring + Scan", 100.0, 25),
        ];
        assert!(!check_combo(&bad).pass);
    }

    #[test]
    fn rollout_order_competitiveness() {
        let good = vec![
            synthetic("Virus 1 Baseline", 320.0, 100),
            synthetic("Virus 1 uniform", 40.0, 100),
            synthetic("Virus 1 hubs-first", 33.0, 100),
        ];
        assert!(check_rollout_order(&good).pass);
        let bad = vec![
            synthetic("Virus 1 Baseline", 320.0, 100),
            synthetic("Virus 1 uniform", 40.0, 100),
            synthetic("Virus 1 hubs-first", 200.0, 100),
        ];
        assert!(!check_rollout_order(&bad).pass);
    }

    #[test]
    fn matrix_sign_pattern() {
        let cell = |virus: &str, mech: &str, v: f64| synthetic(&format!("{virus} | {mech}"), v, 50);
        let mut good = Vec::new();
        for virus in ["Virus 1", "Virus 2", "Virus 3", "Virus 4"] {
            good.push(cell(virus, "baseline", 300.0));
        }
        for (v, m, val) in [
            ("Virus 1", "scan", 5.0),
            ("Virus 1", "immunization", 20.0),
            ("Virus 1", "monitoring", 290.0),
            ("Virus 3", "scan", 280.0),
            ("Virus 3", "immunization", 295.0),
            ("Virus 3", "monitoring", 20.0),
            ("Virus 3", "blacklist", 5.0),
            ("Virus 2", "blacklist", 305.0),
            ("Virus 4", "scan", 4.0),
        ] {
            good.push(cell(v, m, val));
        }
        assert!(check_matrix(&good).pass);
        // Flip one decisive cell: monitoring suddenly beats Virus 1.
        let mut bad = good.clone();
        for r in &mut bad {
            if r.label == "Virus 1 | monitoring" {
                *r = cell("Virus 1", "monitoring", 10.0);
            }
        }
        assert!(!check_matrix(&bad).pass);
    }

    /// End-to-end smoke test at a tiny scale: every claim machine runs.
    /// (Whether each passes at this scale is covered by the integration
    /// suite at a larger one; here we check the plumbing.)
    #[test]
    fn verify_all_runs_at_tiny_scale() {
        let opts = FigureOptions {
            reps: 1,
            master_seed: 9,
            engine: EngineOptions::new(),
            population: 40,
            ..FigureOptions::default()
        };
        let verdicts = verify_all(&opts).expect("all experiments valid");
        assert_eq!(verdicts.len(), 16);
        let ids: Vec<&str> = verdicts.iter().map(|v| v.id).collect();
        assert!(ids.contains(&"FIG1-PLATEAU"));
        assert!(ids.contains(&"EXT-BT"));
        assert!(ids.contains(&"EXT-FP"));
        assert!(ids.contains(&"EXT-ROLL"));
        assert!(ids.contains(&"EXT-CONG"));
        assert!(ids.contains(&"TXT-MATRIX"));
    }
}
