//! Runs the reproduction's ablation studies (sensitivity of the results
//! to the design choices the paper leaves unstated). See
//! `mpvsim_core::ablations` and DESIGN.md §5.
use mpvsim_core::ablations as a;
use mpvsim_core::figures::FigureOptions;

type Study = fn(
    &FigureOptions,
) -> Result<Vec<mpvsim_core::figures::LabeledResult>, mpvsim_core::ConfigError>;

fn main() {
    let opts = match mpvsim_cli::parse_options(std::env::args().skip(1))
        .and_then(|cli| cli.figure_with_observer())
    {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let studies: Vec<(&str, Study)> = vec![
        ("Ablation — read-delay mean (Viruses 1 & 3)", a::ablation_read_delay as Study),
        ("Ablation — detectability threshold (scan vs Virus 1)", a::ablation_detect_threshold),
        ("Ablation — contact-graph family (Virus 1)", a::ablation_topology),
        ("Ablation — Virus 2 quota-day alignment", a::ablation_day_alignment),
        ("Ablation — acceptance factor (Virus 3)", a::ablation_acceptance_factor),
        ("Ablation — Virus 4 semantics: rate-paced vs piggyback", a::ablation_virus4_semantics),
    ];
    for (title, run) in studies {
        eprintln!("running {title} …");
        match run(&opts) {
            Ok(results) => print!("{}", mpvsim_cli::render_report(title, &results)),
            Err(e) => {
                eprintln!("{title}: {e}");
                std::process::exit(1);
            }
        }
        println!();
    }
}
