//! A single phone's identity, health and per-phone state views.
//!
//! Phone state lives in [`Population`](crate::Population)'s
//! struct-of-arrays storage: one packed `u8` of health + response flags
//! and one `u32` infected-message counter per phone, in two flat arrays.
//! This module defines the packing and the two *view* types the rest of
//! the workspace works through:
//!
//! * [`PhoneRef`] — a by-value snapshot (id, state byte, message count);
//! * [`PhoneMut`] — a short-lived mutable view applying state
//!   transitions in place.
//!
//! Contact lists live in the population's shared CSR topology (one flat
//! array for the whole population) rather than in a per-phone `Vec`, so
//! the hot path never chases per-phone heap blocks; look contacts up with
//! `Population::contacts`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A phone's identity — its "phone number" in the model's dense numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhoneId(pub u32);

impl PhoneId {
    /// The dense index of this phone.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phone#{}", self.0)
    }
}

impl From<usize> for PhoneId {
    fn from(i: usize) -> Self {
        PhoneId(u32::try_from(i).expect("phone index exceeds u32"))
    }
}

/// A phone's health with respect to the virus under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Health {
    /// Runs the vulnerable platform and can be infected.
    Susceptible,
    /// Does not run the vulnerable platform; infection attempts are no-ops.
    /// (The paper designates 20 % of the population this way.)
    NotVulnerable,
    /// Infected: its sending machinery is enabled.
    Infected,
    /// Patched before infection: can never be infected.
    Immunized,
}

// ----------------------------------------------------------------------
// Packed per-phone state byte
//
// bits 0–1: health (00 susceptible, 01 not-vulnerable, 10 infected,
//           11 immunized)
// bit 2: silenced (patched while infected)
// bit 3: blacklisted by the provider
// bit 4: throttled by the monitoring mechanism
// ----------------------------------------------------------------------

pub(crate) const HEALTH_MASK: u8 = 0b0000_0011;
pub(crate) const HEALTH_SUSCEPTIBLE: u8 = 0;
pub(crate) const HEALTH_NOT_VULNERABLE: u8 = 1;
pub(crate) const HEALTH_INFECTED: u8 = 2;
pub(crate) const HEALTH_IMMUNIZED: u8 = 3;
pub(crate) const FLAG_SILENCED: u8 = 1 << 2;
pub(crate) const FLAG_BLACKLISTED: u8 = 1 << 3;
pub(crate) const FLAG_THROTTLED: u8 = 1 << 4;

/// The packed state byte of a freshly built phone.
pub(crate) fn initial_state(vulnerable: bool) -> u8 {
    if vulnerable {
        HEALTH_SUSCEPTIBLE
    } else {
        HEALTH_NOT_VULNERABLE
    }
}

fn health_of(state: u8) -> Health {
    match state & HEALTH_MASK {
        HEALTH_SUSCEPTIBLE => Health::Susceptible,
        HEALTH_NOT_VULNERABLE => Health::NotVulnerable,
        HEALTH_INFECTED => Health::Infected,
        _ => Health::Immunized,
    }
}

/// Shared read-only accessors over a packed state byte + message count.
/// Implemented by both view types via a macro so the two APIs cannot
/// drift apart.
macro_rules! read_accessors {
    ($state:expr, $msgs:expr) => {
        /// This phone's number.
        pub fn id(&self) -> PhoneId {
            self.id
        }

        /// Current health.
        pub fn health(&self) -> Health {
            health_of($state(self))
        }

        /// True when an accepted infected attachment would infect this
        /// phone.
        pub fn is_susceptible(&self) -> bool {
            $state(self) & HEALTH_MASK == HEALTH_SUSCEPTIBLE
        }

        /// True when this phone is infected (even if silenced or
        /// blacklisted).
        pub fn is_infected(&self) -> bool {
            $state(self) & HEALTH_MASK == HEALTH_INFECTED
        }

        /// True when this phone's virus can still emit messages: infected
        /// and neither silenced by a patch nor blacklisted by the
        /// provider.
        pub fn can_propagate(&self) -> bool {
            let s = $state(self);
            s & HEALTH_MASK == HEALTH_INFECTED && s & (FLAG_SILENCED | FLAG_BLACKLISTED) == 0
        }

        /// True when a patch has silenced this (infected) phone.
        pub fn is_silenced(&self) -> bool {
            $state(self) & FLAG_SILENCED != 0
        }

        /// True when blacklisted.
        pub fn is_blacklisted(&self) -> bool {
            $state(self) & FLAG_BLACKLISTED != 0
        }

        /// True when the monitoring mechanism has flagged this phone.
        pub fn is_throttled(&self) -> bool {
            $state(self) & FLAG_THROTTLED != 0
        }

        /// Number of infected messages offered to this user so far.
        pub fn infected_msgs_received(&self) -> u32 {
            $msgs(self)
        }
    };
}

/// A by-value snapshot of one phone's state, mirroring §4.1 of the paper:
/// a receiving side that is always active, and a sending side the
/// epidemic model enables on infection. Cheap to copy (9 bytes); reads
/// the population's packed arrays once at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhoneRef {
    pub(crate) id: PhoneId,
    pub(crate) state: u8,
    pub(crate) msgs: u32,
}

impl PhoneRef {
    read_accessors!(|p: &Self| p.state, |p: &Self| p.msgs);
}

/// A mutable view of one phone's packed state, borrowed from
/// [`Population`](crate::Population)'s arrays. Applies the paper's state
/// transitions (patch, blacklist, throttle, message counting) in place.
///
/// Infection goes through `Population::infect` so the population-level
/// infected count stays consistent.
#[derive(Debug)]
pub struct PhoneMut<'a> {
    pub(crate) id: PhoneId,
    pub(crate) state: &'a mut u8,
    pub(crate) msgs: &'a mut u32,
}

impl PhoneMut<'_> {
    read_accessors!(|p: &Self| *p.state, |p: &Self| *p.msgs);

    /// Records that another infected message reached this phone's inbox;
    /// returns the new total (i.e. this message's ordinal `n`, 1-based).
    pub fn record_infected_message(&mut self) -> u32 {
        *self.msgs += 1;
        *self.msgs
    }

    /// Infects the phone.
    ///
    /// Returns `true` if the phone transitioned to [`Health::Infected`];
    /// `false` when it was not susceptible (not vulnerable, already
    /// infected, or immunized) — in which case nothing changes.
    ///
    /// Callers outside this crate use `Population::infect`, which keeps
    /// the population's infected count in sync.
    pub(crate) fn infect(&mut self) -> bool {
        if *self.state & HEALTH_MASK == HEALTH_SUSCEPTIBLE {
            *self.state = (*self.state & !HEALTH_MASK) | HEALTH_INFECTED;
            true
        } else {
            false
        }
    }

    /// Applies an immunization patch (§3.2 of the paper): a susceptible or
    /// not-vulnerable phone becomes [`Health::Immunized`]; an infected
    /// phone stays infected but is *silenced* (propagation stops).
    pub fn apply_patch(&mut self) {
        match *self.state & HEALTH_MASK {
            HEALTH_SUSCEPTIBLE | HEALTH_NOT_VULNERABLE => {
                *self.state = (*self.state & !HEALTH_MASK) | HEALTH_IMMUNIZED;
            }
            HEALTH_INFECTED => *self.state |= FLAG_SILENCED,
            _ => {}
        }
    }

    /// Places the phone on the provider's blacklist (all outgoing MMS
    /// blocked).
    pub fn blacklist(&mut self) {
        *self.state |= FLAG_BLACKLISTED;
    }

    /// Marks the phone as flagged by the monitoring mechanism.
    pub fn throttle(&mut self) {
        *self.state |= FLAG_THROTTLED;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owns the two state cells a [`PhoneMut`] borrows, standing in for
    /// one slot of the population's arrays.
    struct Cell {
        state: u8,
        msgs: u32,
    }

    impl Cell {
        fn new(vulnerable: bool) -> Self {
            Cell { state: initial_state(vulnerable), msgs: 0 }
        }

        fn phone(&mut self) -> PhoneMut<'_> {
            PhoneMut { id: PhoneId(7), state: &mut self.state, msgs: &mut self.msgs }
        }

        fn snapshot(&self) -> PhoneRef {
            PhoneRef { id: PhoneId(7), state: self.state, msgs: self.msgs }
        }
    }

    #[test]
    fn new_phone_state() {
        let mut c = Cell::new(true);
        let p = c.phone();
        assert_eq!(p.id(), PhoneId(7));
        assert_eq!(p.health(), Health::Susceptible);
        assert!(p.is_susceptible());
        assert!(!p.is_infected());
        assert_eq!(p.infected_msgs_received(), 0);
        let mut c = Cell::new(false);
        let p = c.phone();
        assert_eq!(p.health(), Health::NotVulnerable);
        assert!(!p.is_susceptible());
    }

    #[test]
    fn snapshot_mirrors_mutable_view() {
        let mut c = Cell::new(true);
        c.phone().infect();
        c.phone().record_infected_message();
        let s = c.snapshot();
        assert!(s.is_infected());
        assert!(s.can_propagate());
        assert_eq!(s.infected_msgs_received(), 1);
        assert_eq!(s.health(), Health::Infected);
    }

    #[test]
    fn infect_susceptible_succeeds() {
        let mut c = Cell::new(true);
        assert!(c.phone().infect());
        assert!(c.phone().is_infected());
        assert!(c.phone().can_propagate());
        // Idempotent failure on re-infection.
        assert!(!c.phone().infect());
        assert!(c.phone().is_infected());
    }

    #[test]
    fn infect_not_vulnerable_fails() {
        let mut c = Cell::new(false);
        assert!(!c.phone().infect());
        assert_eq!(c.phone().health(), Health::NotVulnerable);
    }

    #[test]
    fn patch_immunizes_healthy() {
        let mut c = Cell::new(true);
        c.phone().apply_patch();
        assert_eq!(c.phone().health(), Health::Immunized);
        assert!(!c.phone().infect(), "immunized phone cannot be infected");
    }

    #[test]
    fn patch_on_not_vulnerable_immunizes() {
        let mut c = Cell::new(false);
        c.phone().apply_patch();
        assert_eq!(c.phone().health(), Health::Immunized);
    }

    #[test]
    fn patch_silences_infected() {
        let mut c = Cell::new(true);
        c.phone().infect();
        c.phone().apply_patch();
        assert!(c.phone().is_infected(), "patch does not cure");
        assert!(c.phone().is_silenced());
        assert!(!c.phone().can_propagate());
    }

    #[test]
    fn patch_idempotent_on_immunized() {
        let mut c = Cell::new(true);
        c.phone().apply_patch();
        c.phone().apply_patch();
        assert_eq!(c.phone().health(), Health::Immunized);
    }

    #[test]
    fn blacklist_stops_propagation_but_not_infection_state() {
        let mut c = Cell::new(true);
        c.phone().infect();
        c.phone().blacklist();
        assert!(c.phone().is_blacklisted());
        assert!(c.phone().is_infected());
        assert!(!c.phone().can_propagate());
    }

    #[test]
    fn throttle_flag_does_not_block_propagation() {
        let mut c = Cell::new(true);
        c.phone().infect();
        c.phone().throttle();
        assert!(c.phone().is_throttled());
        assert!(c.phone().can_propagate(), "monitoring slows, it does not block");
    }

    #[test]
    fn infected_message_counter_is_ordinal() {
        let mut c = Cell::new(true);
        assert_eq!(c.phone().record_infected_message(), 1);
        assert_eq!(c.phone().record_infected_message(), 2);
        assert_eq!(c.phone().infected_msgs_received(), 2);
    }

    #[test]
    fn flags_do_not_clobber_health_bits() {
        let mut c = Cell::new(true);
        c.phone().infect();
        c.phone().throttle();
        c.phone().blacklist();
        c.phone().apply_patch(); // silences
        let p = c.snapshot();
        assert!(p.is_infected() && p.is_throttled() && p.is_blacklisted() && p.is_silenced());
        assert_eq!(p.health(), Health::Infected);
    }

    #[test]
    fn display_and_from_usize() {
        assert_eq!(PhoneId(3).to_string(), "phone#3");
        assert_eq!(PhoneId::from(9usize), PhoneId(9));
        assert_eq!(PhoneId(4).index(), 4);
    }
}
