//! Running scenarios: one replication, or a seeded, streamed, observable
//! experiment described by an [`ExperimentPlan`].
//!
//! ## The plan API
//!
//! ```rust,ignore
//! let result = ExperimentPlan::new(40)
//!     .master_seed(2007)
//!     .engine(EngineOptions::new().with_threads(8))
//!     .retain_runs(false)          // stream: don't keep per-run series
//!     .observer(ProgressObserver::new())
//!     .run(&config)?;
//! ```
//!
//! Replication `r` always uses the seed derived from `(master_seed, r)`,
//! so the mean curve and confidence band are **bit-identical** regardless
//! of thread count, attached observer, or whether per-run results are
//! retained. Aggregation is online (each replication's series is folded
//! into an [`OnlineAggregate`] as it completes, in replication order), so
//! with `retain_runs(false)` memory stays flat however many replications
//! run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mpvsim_des::seed::{derive_seed, derive_stream_seed};
use mpvsim_des::{
    try_run_replications_sink, ExperimentMetrics, ExperimentObserver, FelKind, ObserverHandle,
    ReplicationMetrics, RunOutcome, SimMetrics, SimTime, Simulation,
};
use mpvsim_mobility::MobilityField;
use mpvsim_phonenet::{BufferPool, Population};
use mpvsim_stats::{AggregateSeries, OnlineAggregate, Summary, TimeSeries};
use mpvsim_topology::{CsrGraph, GraphSpec};

use crate::config::{ConfigError, ScenarioConfig};
use crate::model::{EpidemicModel, Event, RunStats};
use crate::probe::{ProbeKind, ProbeOutput, SimProbe};
use crate::response::ActivationTimes;
use mpvsim_des::SimDuration;

pub use mpvsim_des::engine::DEFAULT_EVENT_BUDGET;

/// Sub-stream label for topology generation (independent of dynamics).
pub(crate) const TOPOLOGY_STREAM: u64 = 1;

/// One cached network: the generated graph (already in its compressed
/// sparse-row runtime form) plus the RNG state *after* generation, so
/// everything downstream of the generator (vulnerability designation,
/// mobility placement) consumes exactly the random values it would have
/// consumed had the graph been regenerated.
#[derive(Clone)]
struct CachedTopology {
    graph: Arc<CsrGraph>,
    rng_after: StdRng,
}

/// How each replication allocates its per-phone state arrays (see
/// [`BufferPool`]).
///
/// Like threads, observers and the FEL backend, the layout never changes
/// a bit of the results — pooled buffers are rewound and refilled to the
/// exact bytes a fresh allocation would hold — so it is a pure
/// performance knob for replication-heavy workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum LayoutKind {
    /// Allocate fresh state arrays for every replication (the default).
    #[default]
    Fresh,
    /// Recycle state arrays through a thread-local arena: each worker
    /// thread keeps a small [`BufferPool`] and hands every replication's
    /// buffers back to it, bounding allocator churn at high replication
    /// counts.
    Arena,
}

impl LayoutKind {
    /// Stable lowercase label (CLI flag value / variant-axis name).
    pub fn label(self) -> &'static str {
        match self {
            LayoutKind::Fresh => "fresh",
            LayoutKind::Arena => "arena",
        }
    }

    /// Parses a [`LayoutKind::label`] back to the kind.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fresh" => Some(LayoutKind::Fresh),
            "arena" => Some(LayoutKind::Arena),
            _ => None,
        }
    }

    /// All layouts, in display order.
    pub const ALL: [LayoutKind; 2] = [LayoutKind::Fresh, LayoutKind::Arena];
}

thread_local! {
    /// Per-worker-thread arena backing [`LayoutKind::Arena`] runs.
    static ARENA_POOL: std::cell::RefCell<BufferPool> =
        std::cell::RefCell::new(BufferPool::default());
}

/// Hit/miss counters of a [`TopologyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TopologyCacheStats {
    /// Lookups served from the cache (no regeneration).
    pub hits: u64,
    /// Lookups that had to generate the network.
    pub misses: u64,
    /// Distinct `(generator params, seed)` networks currently held.
    pub entries: usize,
}

/// Shared immutable topology cache, keyed by `(generator params, seed)`.
///
/// Replication `r` of every experiment derives its topology from the
/// sub-stream seed of `(master_seed, r)`, so two scenarios that differ
/// only in virus or response knobs — the shape of every figure sweep —
/// ask for the *same* `(GraphSpec, seed)` network over and over. The
/// cache generates each network once and hands out shared references;
/// results are bit-identical with and without it because the cached
/// entry also restores the generator's post-generation RNG state.
///
/// The cache is thread-safe and meant to be shared via [`Arc`] across
/// the cells of a sweep (see [`crate::sweep`]) or attached to an
/// [`ExperimentPlan`] with [`ExperimentPlan::topology_cache`].
#[derive(Default)]
pub struct TopologyCache {
    map: Mutex<HashMap<(String, u64), CachedTopology>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for TopologyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("TopologyCache")
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("entries", &stats.entries)
            .finish()
    }
}

impl TopologyCache {
    /// An empty cache.
    pub fn new() -> Self {
        TopologyCache::default()
    }

    /// An empty cache already wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(TopologyCache::new())
    }

    /// Current hit/miss/entry counts.
    pub fn stats(&self) -> TopologyCacheStats {
        TopologyCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("topology cache poisoned").len(),
        }
    }

    /// The network for `(spec, topo_seed)` plus the RNG to continue with,
    /// generating and inserting on first request.
    pub(crate) fn get_or_generate(
        &self,
        spec: &GraphSpec,
        topo_seed: u64,
    ) -> Result<(Arc<CsrGraph>, StdRng), ConfigError> {
        // The serialized spec is an exact key: serde_json round-trips
        // every f64 parameter bit-for-bit.
        let key = (
            serde_json::to_string(spec).map_err(|e| {
                ConfigError::invalid("population.topology", format!("unserializable spec: {e}"))
            })?,
            topo_seed,
        );
        if let Some(entry) = self.map.lock().expect("topology cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            topo_cache_metrics().0.inc();
            return Ok((entry.graph.clone(), entry.rng_after.clone()));
        }
        // Generate outside the lock; concurrent misses on the same key do
        // redundant work but produce identical entries. Streaming straight
        // into CSR leaves the generator RNG in the same state as the
        // adjacency-list path, so cached and uncached runs stay
        // bit-identical.
        let mut rng = StdRng::seed_from_u64(topo_seed);
        let graph = Arc::new(
            spec.generate_csr(&mut rng)
                .map_err(|e| ConfigError::invalid("population.topology", e.to_string()))?,
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        topo_cache_metrics().1.inc();
        let entry = CachedTopology { graph: graph.clone(), rng_after: rng.clone() };
        self.map.lock().expect("topology cache poisoned").entry(key).or_insert(entry);
        Ok((graph, rng))
    }
}

/// Global `(hit, miss)` counters mirroring every [`TopologyCache`]'s
/// per-instance stats into the process-wide registry (the per-instance
/// counts still travel in sweep reports; the registry aggregates across
/// caches for `GET /v1/metrics`).
fn topo_cache_metrics() -> &'static (mpvsim_obs::Counter, mpvsim_obs::Counter) {
    static METRICS: std::sync::OnceLock<(mpvsim_obs::Counter, mpvsim_obs::Counter)> =
        std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mpvsim_obs::metrics::global();
        let help = "Topology cache lookups by result";
        (
            reg.counter_with("mpvsim_topology_cache_total", help, &[("result", "hit")]),
            reg.counter_with("mpvsim_topology_cache_total", help, &[("result", "miss")]),
        )
    })
}

/// The outcome of a single replication.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunResult {
    /// Infection count sampled every `sample_step`.
    pub series: TimeSeries,
    /// Cumulative virus-message traffic on the same grid (the extra MMS
    /// load on the provider's network).
    pub traffic: TimeSeries,
    /// Infected phones at the horizon.
    pub final_infected: usize,
    /// Message-flow counters.
    pub stats: RunStats,
    /// When the detectability-clocked mechanisms fired.
    pub activation: ActivationTimes,
    /// The worst gateway transit delay any message saw (`None` when the
    /// gateway has the paper's infinite capacity).
    pub gateway_peak_delay: Option<SimDuration>,
    /// Resident bytes of the population-proportional model state (phone
    /// arrays, CSR topology, inbox and gateway arrays); event-heap
    /// memory is in [`SimMetrics::peak_event_bytes`]. Purely
    /// informational — never part of the golden trajectory fingerprint.
    #[serde(default)]
    pub resident_state_bytes: usize,
    /// What the attached probe produced (`None` when the replication ran
    /// without one — the default; see [`crate::probe::ProbeKind`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub probe: Option<ProbeOutput>,
}

impl RunResult {
    /// The mechanism telemetry, when the run carried a telemetry probe.
    pub fn telemetry(&self) -> Option<&crate::probe::MechanismTelemetry> {
        self.probe.as_ref().and_then(ProbeOutput::as_telemetry)
    }
}

/// Aggregated outcome of a replicated experiment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExperimentResult {
    /// Pointwise mean infection curve with a 95 % confidence band.
    pub aggregate: AggregateSeries,
    /// Summary of the final infection counts across replications.
    pub final_infected: Summary,
    /// Each replication's result, in replication order. **Empty** when the
    /// experiment ran with [`ExperimentPlan::retain_runs`]`(false)`; the
    /// aggregate fields above are unaffected by that choice.
    pub runs: Vec<RunResult>,
}

impl ExperimentResult {
    /// The mean infection trajectory.
    pub fn mean_series(&self) -> TimeSeries {
        self.aggregate.mean_series()
    }

    /// Mean time (hours) for the infection to reach `threshold` phones,
    /// over the replications that reached it; `None` if none did.
    ///
    /// Needs per-run series, so it is always `None` when the experiment
    /// ran with [`ExperimentPlan::retain_runs`]`(false)`.
    pub fn mean_time_to_reach(&self, threshold: f64) -> Option<f64> {
        let times: Vec<f64> =
            self.runs.iter().filter_map(|r| r.series.time_to_reach(threshold)).collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }
}

/// Runs one replication of `config` with the given seed.
///
/// The contact topology and vulnerability designation draw from a
/// sub-stream derived from `seed`, and the epidemic dynamics from `seed`
/// itself, so a `(config, seed)` pair determines the trajectory exactly.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget (see
/// [`ScenarioConfig::event_budget`]).
pub fn run_scenario(config: &ScenarioConfig, seed: u64) -> Result<RunResult, ConfigError> {
    run_scenario_with_metrics(config, seed).map(|(result, _)| result)
}

/// Like [`run_scenario`], additionally returning the engine's runtime
/// counters (events processed, event-heap high-water mark) for
/// observability.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_with_metrics(
    config: &ScenarioConfig,
    seed: u64,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    run_scenario_with_metrics_fel(config, seed, FelKind::default())
}

/// Like [`run_scenario_with_metrics`], with an explicit future-event-list
/// backend (see [`FelKind`]). The trajectory is bit-identical for every
/// backend; only execution speed differs.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_with_metrics_fel(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    run_scenario_cached(config, seed, fel, None)
}

/// Like [`run_scenario_with_metrics_fel`], resolving the contact network
/// through a shared [`TopologyCache`] when one is provided. The
/// trajectory is bit-identical with and without the cache; only
/// regeneration work is saved.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_cached(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    run_scenario_probed(config, seed, fel, cache, ProbeKind::None)
}

/// Like [`run_scenario_cached`], running the replication instrumented
/// with the given probe (see [`crate::probe`]). Probes are read-only —
/// the trajectory is bit-identical for every `probe` value — and the
/// probe's output lands in [`RunResult::probe`].
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_probed(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    probe: ProbeKind,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    run_scenario_configured(config, seed, fel, cache, probe, LayoutKind::Fresh)
}

/// The most general entry point of the `run_scenario_*` family: explicit
/// FEL backend, optional topology cache, probe, **and** state-array
/// layout (see [`LayoutKind`]). Every knob is trajectory-neutral; the
/// result is bit-identical across all combinations.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_configured(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    probe: ProbeKind,
    layout: LayoutKind,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    // Validate up front so `probe.build` sees a well-formed config.
    config.validate()?;
    run_scenario_inner(config, seed, fel, cache, probe.build(config), layout)
}

/// Like [`run_scenario_probed`], instrumented with a caller-supplied
/// [`SimProbe`] instance instead of a [`ProbeKind`]. This is the hook
/// the validation layer uses to attach its invariant-checking probe;
/// the read-only probe contract still holds, so the trajectory remains
/// bit-identical to an unprobed run.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_probed_with(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    probe: Box<dyn SimProbe>,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    run_scenario_probed_with_layout(config, seed, fel, cache, probe, LayoutKind::Fresh)
}

/// Like [`run_scenario_probed_with`], additionally selecting the
/// state-array layout (see [`LayoutKind`]); the validation layer uses
/// this to exercise the layout axis of the variant matrix.
///
/// # Errors
///
/// Returns [`ConfigError`] when the scenario is invalid or the
/// replication exceeds its event budget.
pub fn run_scenario_probed_with_layout(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    probe: Box<dyn SimProbe>,
    layout: LayoutKind,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    config.validate()?;
    run_scenario_inner(config, seed, fel, cache, Some(probe), layout)
}

/// Shared replication body behind the `run_scenario_*` family. Assumes
/// `config` has already been validated.
fn run_scenario_inner(
    config: &ScenarioConfig,
    seed: u64,
    fel: FelKind,
    cache: Option<&TopologyCache>,
    probe: Option<Box<dyn SimProbe>>,
    layout: LayoutKind,
) -> Result<(RunResult, SimMetrics), ConfigError> {
    let topo_seed = derive_stream_seed(seed, 0, TOPOLOGY_STREAM);
    let (graph, mut topo_rng) = match cache {
        Some(cache) => cache.get_or_generate(&config.population.topology, topo_seed)?,
        None => {
            let mut rng = StdRng::seed_from_u64(topo_seed);
            let graph = config
                .population
                .topology
                .generate_csr(&mut rng)
                .map_err(|e| ConfigError::invalid("population.topology", e.to_string()))?;
            (Arc::new(graph), rng)
        }
    };
    let population = match layout {
        LayoutKind::Fresh => Population::from_csr(
            graph.clone(),
            config.population.vulnerable_fraction,
            &mut topo_rng,
        ),
        LayoutKind::Arena => ARENA_POOL.with(|pool| {
            Population::from_csr_pooled(
                graph.clone(),
                config.population.vulnerable_fraction,
                &mut topo_rng,
                &mut pool.borrow_mut(),
            )
        }),
    };
    let mobility = config
        .mobility
        .map(|m| MobilityField::new(m.arena(), population.len(), m.waypoint, &mut topo_rng));

    let budget = config.event_budget.unwrap_or(DEFAULT_EVENT_BUDGET);
    let mut model = match layout {
        LayoutKind::Fresh => EpidemicModel::with_mobility(config.clone(), population, mobility),
        LayoutKind::Arena => ARENA_POOL.with(|pool| {
            EpidemicModel::with_mobility_pooled(
                config.clone(),
                population,
                mobility,
                &mut pool.borrow_mut(),
            )
        }),
    };
    if let Some(p) = probe {
        model.set_probe(p);
    }
    let mut sim = Simulation::new(model, seed).with_event_budget(budget).with_fel(fel);
    sim.schedule(SimTime::ZERO, Event::Seed);
    sim.schedule(SimTime::ZERO, Event::Sample);
    let outcome = sim.run_until(SimTime::ZERO + config.horizon);
    if outcome == RunOutcome::EventBudgetExceeded {
        return Err(ConfigError::run(format!(
            "seed {seed}: event budget {budget} exceeded at simulated time {now} \
             (raise event_budget or shrink the scenario)",
            now = sim.now(),
        )));
    }
    let metrics = sim.metrics();
    let mut model = sim.into_model();
    let probe_output = model.take_probe().and_then(|p| p.into_output());

    let result = RunResult {
        final_infected: model.infected_count(),
        stats: *model.stats(),
        activation: *model.activation(),
        gateway_peak_delay: model.transit_queue().map(|q| q.peak_delay()),
        resident_state_bytes: model.resident_state_bytes(),
        traffic: model.traffic_series().clone(),
        series: model.series().clone(),
        probe: probe_output,
    };
    if layout == LayoutKind::Arena {
        ARENA_POOL.with(|pool| model.recycle_buffers(&mut pool.borrow_mut()));
    }
    Ok((result, metrics))
}

/// The engine's four trajectory-neutral performance knobs, gathered in
/// one place: future-event-list backend, state-array layout, probe, and
/// worker-thread count.
///
/// Every layer that runs replications — [`ExperimentPlan`],
/// `FigureOptions`, `SweepOptions`, `ServeOptions`, and the CLI's shared
/// flag parser — carries one of these instead of five parallel fields.
/// `fel`, `layout`, `probe` and `threads` never change a bit of any
/// result: backends share the deterministic `(time, seq)` event order,
/// probes are read-only, layouts recycle buffers without touching state,
/// and threads only partition work. `shards` is the one exception:
/// `shards == 1` runs the legacy sequential engine (bit-compatible with
/// the committed goldens), while `shards > 1` switches the replication
/// to the sharded engine in [`crate::shard`], whose per-phone RNG
/// substreams produce a *different but internally shard-count-invariant*
/// trajectory (any `shards > 1` value yields byte-identical results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Future-event-list backend (see [`FelKind`]).
    pub fel: FelKind,
    /// Per-replication state-array layout (see [`LayoutKind`]).
    pub layout: LayoutKind,
    /// Read-only instrumentation probe (see [`ProbeKind`]).
    pub probe: ProbeKind,
    /// Worker-thread count; must be at least 1.
    pub threads: usize,
    /// Intra-replication shard count; must be at least 1. Values above 1
    /// select the sharded engine (see the struct docs for the
    /// determinism contract).
    pub shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            fel: FelKind::default(),
            layout: LayoutKind::Fresh,
            probe: ProbeKind::None,
            threads: 1,
            shards: 1,
        }
    }
}

impl EngineOptions {
    /// The default engine: binary-heap FEL, fresh layout, no probe, one
    /// worker thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the future-event-list backend.
    pub fn with_fel(mut self, fel: FelKind) -> Self {
        self.fel = fel;
        self
    }

    /// Replaces the state-array layout.
    pub fn with_layout(mut self, layout: LayoutKind) -> Self {
        self.layout = layout;
        self
    }

    /// Replaces the instrumentation probe.
    pub fn with_probe(mut self, probe: ProbeKind) -> Self {
        self.probe = probe;
        self
    }

    /// Replaces the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`; use [`EngineOptions::auto_threads`]
    /// for hardware detection.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Sets the worker count to the available hardware parallelism
    /// (falling back to 1 when it cannot be determined).
    pub fn auto_threads(self) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.with_threads(threads)
    }

    /// Replaces the intra-replication shard count.
    ///
    /// `1` keeps the sequential engine; larger values run each
    /// replication on the sharded engine (see [`crate::shard`]).
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }
}

/// A replicated experiment, described declaratively: how many
/// replications, which seed family, which engine knobs, what to keep,
/// and who gets told about progress.
///
/// Construction is builder-style; [`ExperimentPlan::run`] and
/// [`ExperimentPlan::run_adaptive`] execute the plan against a scenario.
/// The numerical results depend **only** on `(config, reps, master_seed)`
/// — the [`EngineOptions`], observer and `retain_runs` never change a
/// single bit of the aggregate.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    reps: u64,
    master_seed: u64,
    retain_runs: bool,
    observer: ObserverHandle,
    engine: EngineOptions,
    topo_cache: Option<Arc<TopologyCache>>,
}

impl ExperimentPlan {
    /// A plan for `reps` replications: master seed 0, default
    /// [`EngineOptions`] (single-threaded, binary-heap event list),
    /// per-run results retained, no observer, no topology cache.
    pub fn new(reps: u64) -> Self {
        ExperimentPlan {
            reps,
            master_seed: 0,
            retain_runs: true,
            observer: ObserverHandle::noop(),
            engine: EngineOptions::default(),
            topo_cache: None,
        }
    }

    /// Replaces all four engine knobs at once (see [`EngineOptions`]).
    pub fn engine(mut self, engine: EngineOptions) -> Self {
        assert!(engine.threads > 0, "need at least one worker thread");
        self.engine = engine;
        self
    }

    /// Selects the per-replication state-array layout (see
    /// [`LayoutKind`]). Like threads and observers, this never changes a
    /// bit of the results; [`LayoutKind::Arena`] recycles each worker
    /// thread's buffers across replications.
    #[deprecated(note = "set EngineOptions::layout via ExperimentPlan::engine")]
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.engine.layout = layout;
        self
    }

    /// Runs every replication instrumented with the given probe (see
    /// [`crate::probe`]). Probes are read-only: the aggregate and every
    /// per-run series are bit-identical for every `probe` value; the
    /// probe's output lands in each retained [`RunResult::probe`].
    #[deprecated(note = "set EngineOptions::probe via ExperimentPlan::engine")]
    pub fn probe(mut self, probe: ProbeKind) -> Self {
        self.engine.probe = probe;
        self
    }

    /// Resolves contact networks through `cache` instead of regenerating
    /// them per replication. Like threads and observers, this never
    /// changes a bit of the results (see [`TopologyCache`]); it only
    /// skips redundant generation when experiments share networks.
    pub fn topology_cache(mut self, cache: Arc<TopologyCache>) -> Self {
        self.topo_cache = Some(cache);
        self
    }

    /// Selects the future-event-list backend each replication runs on
    /// (see [`FelKind`]). Like threads and observers, this never changes
    /// a bit of the results — backends share the deterministic
    /// `(time, seq)` event order — so it is a pure performance knob.
    #[deprecated(note = "set EngineOptions::fel via ExperimentPlan::engine")]
    pub fn fel(mut self, fel: FelKind) -> Self {
        self.engine.fel = fel;
        self
    }

    /// Sets the master seed; replication `r` derives its seed from
    /// `(master_seed, r)`.
    pub fn master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Sets the number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`; use [`ExperimentPlan::auto_threads`]
    /// for hardware detection.
    #[deprecated(note = "set EngineOptions::threads via ExperimentPlan::engine")]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.engine.threads = threads;
        self
    }

    /// Sets the worker count to the available hardware parallelism
    /// (falling back to 1 when it cannot be determined).
    pub fn auto_threads(mut self) -> Self {
        self.engine = self.engine.auto_threads();
        self
    }

    /// Whether to keep each replication's full [`RunResult`] in
    /// [`ExperimentResult::runs`]. With `false`, runs are folded into the
    /// aggregate as they finish and dropped — memory stays O(series
    /// length) instead of O(reps × series length), and the aggregate is
    /// bit-identical either way.
    pub fn retain_runs(mut self, retain: bool) -> Self {
        self.retain_runs = retain;
        self
    }

    /// Attaches an observer (see [`ExperimentObserver`]); it receives
    /// start/finish hooks with telemetry but cannot influence results.
    pub fn observer(self, observer: impl ExperimentObserver + 'static) -> Self {
        self.observer_handle(ObserverHandle::new(observer))
    }

    /// Attaches an already-wrapped observer handle.
    pub fn observer_handle(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// The plan's engine knobs.
    pub fn engine_options(&self) -> EngineOptions {
        self.engine
    }

    /// The resolved worker-thread count.
    pub fn thread_count(&self) -> usize {
        self.engine.threads
    }

    /// The future-event-list backend the plan's replications will use.
    pub fn fel_kind(&self) -> FelKind {
        self.engine.fel
    }

    /// The number of replications the plan will run.
    pub fn rep_count(&self) -> u64 {
        self.reps
    }

    /// The probe each replication runs with ([`ProbeKind::None`] unless
    /// set through [`ExperimentPlan::engine`]).
    pub fn probe_kind(&self) -> ProbeKind {
        self.engine.probe
    }

    /// The state-array layout each replication runs with
    /// ([`LayoutKind::Fresh`] unless set through
    /// [`ExperimentPlan::engine`]).
    pub fn layout_kind(&self) -> LayoutKind {
        self.engine.layout
    }

    /// Executes the plan: runs the replications (in parallel across the
    /// plan's threads) and aggregates them online.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the scenario is invalid, `reps == 0`,
    /// or any replication fails (e.g. exceeds its event budget) — in the
    /// latter case the error is the one from the lowest-indexed failing
    /// replication, at every thread count.
    pub fn run(&self, config: &ScenarioConfig) -> Result<ExperimentResult, ConfigError> {
        self.run_with_sink(config, |_, _| {})
    }

    /// Like [`ExperimentPlan::run`], additionally handing each
    /// replication's [`RunResult`] to `sink` **in replication order** as
    /// it is folded into the aggregate. This is the streaming hook the
    /// sweep results store uses to write per-replication records without
    /// retaining every run in memory; the aggregate is bit-identical to
    /// [`ExperimentPlan::run`]'s.
    ///
    /// # Errors
    ///
    /// Same contract as [`ExperimentPlan::run`].
    pub fn run_with_sink(
        &self,
        config: &ScenarioConfig,
        mut sink: impl FnMut(u64, &RunResult),
    ) -> Result<ExperimentResult, ConfigError> {
        config.validate()?;
        if self.reps == 0 {
            return Err(ConfigError::run("need at least one replication"));
        }
        self.observer.on_experiment_start(self.reps);
        let started = Instant::now();
        let mut collector = Collector::new(self.retain_runs);
        try_run_replications_sink(
            self.reps,
            self.master_seed,
            self.engine.threads,
            |rep, seed| self.run_one(config, rep, seed),
            |rep, (result, metrics)| {
                sink(rep, &result);
                collector.absorb(&self.observer, result, metrics);
            },
        )?;
        let metrics = ExperimentMetrics {
            reps: self.reps,
            wall: started.elapsed(),
            events_processed: collector.total_events,
            peak_pending_events: collector.peak_pending,
            peak_event_bytes: collector.peak_event_bytes,
        };
        mpvsim_des::observe::record_experiment(&metrics);
        self.observer.on_experiment_finish(&metrics);
        Ok(collector.into_result())
    }

    /// Executes the plan adaptively: replications run in batches of the
    /// plan's thread count until the 95 % confidence half-width on the
    /// mean final infection count drops to `target_ci_half_width` (or
    /// `max_reps` is exhausted). The plan's `reps` is ignored; `min_reps`
    /// and `max_reps` bound the effort instead.
    ///
    /// Replication `r` always uses the seed derived from
    /// `(master_seed, r)`, so for a given outcome sequence the runs are
    /// the same as a fixed-size batch of the same length.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the scenario is invalid, `min_reps`
    /// is 0, `min_reps > max_reps`, or any replication fails.
    pub fn run_adaptive(
        &self,
        config: &ScenarioConfig,
        target_ci_half_width: f64,
        min_reps: u64,
        max_reps: u64,
    ) -> Result<AdaptiveResult, ConfigError> {
        config.validate()?;
        if min_reps == 0 || min_reps > max_reps {
            return Err(ConfigError::run(format!(
                "need 1 <= min_reps <= max_reps, got {min_reps}..{max_reps}"
            )));
        }
        self.observer.on_experiment_start(max_reps);
        let started = Instant::now();
        let mut collector = Collector::new(self.retain_runs);
        let mut acc = mpvsim_stats::RunningSummary::new();
        let mut completed: u64 = 0;
        let mut converged = false;
        while completed < max_reps {
            let batch = (self.engine.threads as u64)
                .max(1)
                .min(max_reps - completed)
                .max(if completed == 0 { min_reps.min(max_reps) } else { 1 });
            let first = completed;
            try_run_replications_sink(
                batch,
                self.master_seed,
                self.engine.threads,
                // Seed from the global replication index so the sequence
                // is independent of the batch boundaries.
                |rep, _seed| {
                    let global = first + rep;
                    self.run_one(config, global, derive_seed(self.master_seed, global))
                },
                |_rep, (result, metrics)| {
                    acc.push(result.final_infected as f64);
                    collector.absorb(&self.observer, result, metrics);
                },
            )?;
            completed += batch;
            if completed >= min_reps && acc.ci95_half_width() <= target_ci_half_width {
                converged = true;
                break;
            }
        }
        let metrics = ExperimentMetrics {
            reps: completed,
            wall: started.elapsed(),
            events_processed: collector.total_events,
            peak_pending_events: collector.peak_pending,
            peak_event_bytes: collector.peak_event_bytes,
        };
        mpvsim_des::observe::record_experiment(&metrics);
        self.observer.on_experiment_finish(&metrics);
        Ok(AdaptiveResult { result: collector.into_result(), converged })
    }

    /// One replication with observer hooks and wall-clock timing.
    fn run_one(
        &self,
        config: &ScenarioConfig,
        rep: u64,
        seed: u64,
    ) -> Result<(RunResult, ReplicationMetrics), ConfigError> {
        self.observer.on_replication_start(rep, seed);
        let started = Instant::now();
        let (result, sim) = if self.engine.shards > 1 {
            crate::shard::run_scenario_sharded_configured(
                config,
                seed,
                self.engine.fel,
                self.topo_cache.as_deref(),
                self.engine.shards,
                self.engine.probe,
            )?
        } else {
            run_scenario_configured(
                config,
                seed,
                self.engine.fel,
                self.topo_cache.as_deref(),
                self.engine.probe,
                self.engine.layout,
            )?
        };
        let metrics = ReplicationMetrics { rep, seed, wall: started.elapsed(), sim };
        mpvsim_des::observe::record_replication(&metrics);
        Ok((result, metrics))
    }
}

/// Streaming result collector: folds replications into the aggregate in
/// replication order as the sink delivers them.
struct Collector {
    aggregate: OnlineAggregate,
    finals: Vec<f64>,
    runs: Vec<RunResult>,
    retain_runs: bool,
    total_events: u64,
    peak_pending: usize,
    peak_event_bytes: usize,
}

impl Collector {
    fn new(retain_runs: bool) -> Self {
        Collector {
            aggregate: OnlineAggregate::new(),
            finals: Vec::new(),
            runs: Vec::new(),
            retain_runs,
            total_events: 0,
            peak_pending: 0,
            peak_event_bytes: 0,
        }
    }

    fn absorb(
        &mut self,
        observer: &ObserverHandle,
        result: RunResult,
        metrics: ReplicationMetrics,
    ) {
        observer.on_replication_finish(&metrics);
        self.total_events += metrics.sim.events_processed;
        self.peak_pending = self.peak_pending.max(metrics.sim.peak_pending_events);
        self.peak_event_bytes = self.peak_event_bytes.max(metrics.sim.peak_event_bytes);
        self.aggregate.push(&result.series);
        self.finals.push(result.final_infected as f64);
        if self.retain_runs {
            self.runs.push(result);
        }
    }

    fn into_result(self) -> ExperimentResult {
        let aggregate = self.aggregate.finalize().expect("at least one replication");
        let final_infected = Summary::of(&self.finals).expect("at least one replication");
        ExperimentResult { aggregate, final_infected, runs: self.runs }
    }
}

/// Outcome of [`ExperimentPlan::run_adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The aggregated experiment over however many replications ran.
    pub result: ExperimentResult,
    /// Whether the confidence target was met before `max_reps`.
    pub converged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopulationConfig;
    use crate::virus::VirusProfile;
    use mpvsim_des::{DelaySpec, SimDuration};
    use mpvsim_topology::GraphSpec;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn small_config() -> ScenarioConfig {
        let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
        c.population = PopulationConfig {
            topology: GraphSpec::erdos_renyi(60, 8.0),
            vulnerable_fraction: 0.8,
        };
        c.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
        c.horizon = SimDuration::from_hours(6);
        c
    }

    #[test]
    fn run_scenario_produces_full_series() {
        let r = run_scenario(&small_config(), 7).unwrap();
        assert_eq!(r.series.len(), 7, "hourly samples over 6 h inclusive");
        assert!(r.final_infected >= 1);
        assert!(r.stats.messages_sent > 0);
    }

    #[test]
    fn run_scenario_rejects_invalid_config() {
        let mut c = small_config();
        c.initial_infections = 0;
        assert!(run_scenario(&c, 1).is_err());
    }

    #[test]
    fn run_scenario_deterministic() {
        let c = small_config();
        let a = run_scenario(&c, 11).unwrap();
        let b = run_scenario(&c, 11).unwrap();
        assert_eq!(a.series, b.series);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn run_scenario_reports_metrics() {
        let (r, m) = run_scenario_with_metrics(&small_config(), 7).unwrap();
        assert!(m.events_processed > 0);
        assert!(m.peak_pending_events > 0);
        assert!(
            m.events_processed >= r.stats.messages_sent,
            "every message involves at least one event"
        );
    }

    #[test]
    fn different_seeds_vary_topology_and_dynamics() {
        let c = small_config();
        let a = run_scenario(&c, 1).unwrap();
        let b = run_scenario(&c, 2).unwrap();
        assert!(a.series != b.series || a.stats != b.stats);
    }

    #[test]
    fn experiment_aggregates_replications() {
        let c = small_config();
        let e = ExperimentPlan::new(4)
            .master_seed(99)
            .engine(EngineOptions::new().with_threads(2))
            .run(&c)
            .unwrap();
        assert_eq!(e.runs.len(), 4);
        assert_eq!(e.aggregate.replications, 4);
        assert_eq!(e.final_infected.n, 4);
        // The aggregate mean of the final point equals the mean of finals
        // (series all have the same length here).
        let last_mean = *e.aggregate.mean.last().unwrap();
        assert!((last_mean - e.final_infected.mean).abs() < 1e-9);
    }

    #[test]
    fn experiment_parallel_equals_serial() {
        let c = small_config();
        let serial = ExperimentPlan::new(3).master_seed(5).run(&c).unwrap();
        let parallel = ExperimentPlan::new(3)
            .master_seed(5)
            .engine(EngineOptions::new().with_threads(3))
            .run(&c)
            .unwrap();
        assert_eq!(serial.aggregate.mean, parallel.aggregate.mean);
        assert_eq!(serial.aggregate.ci95_half_width, parallel.aggregate.ci95_half_width);
    }

    #[test]
    fn fel_backend_changes_no_bit_of_the_experiment() {
        let c = small_config();
        let heap = ExperimentPlan::new(3).master_seed(7).run(&c).unwrap();
        for fel in
            [FelKind::Calendar, FelKind::CalendarTuned { bucket_width_secs: 16, bucket_count: 32 }]
        {
            let cal = ExperimentPlan::new(3)
                .master_seed(7)
                .engine(EngineOptions::new().with_fel(fel))
                .run(&c)
                .unwrap();
            // Byte-equal floats, not approximate equality.
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&heap.aggregate.mean), bits(&cal.aggregate.mean), "{fel:?}");
            assert_eq!(
                bits(&heap.aggregate.ci95_half_width),
                bits(&cal.aggregate.ci95_half_width),
                "{fel:?}"
            );
            for (a, b) in heap.runs.iter().zip(&cal.runs) {
                assert_eq!(bits(a.series.values()), bits(b.series.values()), "{fel:?}");
                assert_eq!(a.stats, b.stats, "{fel:?}");
            }
        }
    }

    #[test]
    fn experiment_zero_reps_rejected() {
        assert!(ExperimentPlan::new(0).run(&small_config()).is_err());
    }

    #[test]
    fn topology_cache_changes_no_bit_of_the_experiment() {
        let c = small_config();
        let uncached = ExperimentPlan::new(3)
            .master_seed(41)
            .engine(EngineOptions::new().with_threads(2))
            .run(&c)
            .unwrap();
        let cache = TopologyCache::shared();
        let cached = ExperimentPlan::new(3)
            .master_seed(41)
            .engine(EngineOptions::new().with_threads(2))
            .topology_cache(cache.clone())
            .run(&c)
            .unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&uncached.aggregate.mean), bits(&cached.aggregate.mean));
        for (a, b) in uncached.runs.iter().zip(&cached.runs) {
            assert_eq!(bits(a.series.values()), bits(b.series.values()));
            assert_eq!(a.stats, b.stats);
        }
        // First pass over 3 fresh seeds: all misses.
        let stats = cache.stats();
        assert_eq!(stats, TopologyCacheStats { hits: 0, misses: 3, entries: 3 });
        // A second experiment on the same network family and seeds is
        // served entirely from the cache.
        let c2 = ScenarioConfig {
            response: crate::response::ResponseConfig::none()
                .with_blacklist(crate::response::Blacklist { threshold: 10 }),
            ..small_config()
        };
        let _ =
            ExperimentPlan::new(3).master_seed(41).topology_cache(cache.clone()).run(&c2).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 3, "same (spec, seed) cells must not regenerate");
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn cache_distinguishes_specs_and_seeds() {
        let cache = TopologyCache::new();
        let c = small_config();
        let _ = run_scenario_cached(&c, 1, FelKind::default(), Some(&cache)).unwrap();
        let _ = run_scenario_cached(&c, 2, FelKind::default(), Some(&cache)).unwrap();
        let mut bigger = small_config();
        bigger.population = PopulationConfig {
            topology: GraphSpec::erdos_renyi(70, 8.0),
            vulnerable_fraction: 0.8,
        };
        let _ = run_scenario_cached(&bigger, 1, FelKind::default(), Some(&cache)).unwrap();
        assert_eq!(cache.stats(), TopologyCacheStats { hits: 0, misses: 3, entries: 3 });
    }

    #[test]
    fn run_with_sink_streams_every_replication_in_order() {
        let c = small_config();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        let plan = ExperimentPlan::new(4)
            .master_seed(8)
            .engine(EngineOptions::new().with_threads(2))
            .retain_runs(false);
        let streamed = plan
            .run_with_sink(&c, |rep, run| {
                seen.push((rep, run.final_infected));
            })
            .unwrap();
        assert_eq!(seen.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let kept = ExperimentPlan::new(4)
            .master_seed(8)
            .engine(EngineOptions::new().with_threads(2))
            .run(&c)
            .unwrap();
        assert_eq!(kept.aggregate, streamed.aggregate);
        let finals: Vec<usize> = kept.runs.iter().map(|r| r.final_infected).collect();
        assert_eq!(seen.iter().map(|(_, f)| *f).collect::<Vec<_>>(), finals);
    }

    #[test]
    fn retain_runs_false_streams_without_changing_the_aggregate() {
        let c = small_config();
        let kept = ExperimentPlan::new(4)
            .master_seed(8)
            .engine(EngineOptions::new().with_threads(2))
            .run(&c)
            .unwrap();
        let streamed = ExperimentPlan::new(4)
            .master_seed(8)
            .engine(EngineOptions::new().with_threads(2))
            .retain_runs(false)
            .run(&c)
            .unwrap();
        assert!(streamed.runs.is_empty());
        assert_eq!(kept.runs.len(), 4);
        assert_eq!(kept.aggregate, streamed.aggregate);
        assert_eq!(kept.final_infected, streamed.final_infected);
        assert!(streamed.mean_time_to_reach(1.0).is_none(), "needs retained runs");
    }

    #[derive(Default)]
    struct CountingObserver {
        started: AtomicU64,
        finished: AtomicU64,
        events: AtomicU64,
    }

    impl ExperimentObserver for CountingObserver {
        fn on_replication_start(&self, _rep: u64, _seed: u64) {
            self.started.fetch_add(1, Ordering::Relaxed);
        }
        fn on_replication_finish(&self, m: &ReplicationMetrics) {
            self.finished.fetch_add(1, Ordering::Relaxed);
            self.events.fetch_add(m.sim.events_processed, Ordering::Relaxed);
        }
    }

    #[test]
    fn observer_sees_every_replication_and_changes_nothing() {
        let c = small_config();
        let bare = ExperimentPlan::new(4)
            .master_seed(99)
            .engine(EngineOptions::new().with_threads(2))
            .run(&c)
            .unwrap();
        let counting = Arc::new(CountingObserver::default());
        let observed = ExperimentPlan::new(4)
            .master_seed(99)
            .engine(EngineOptions::new().with_threads(2))
            .observer_handle(ObserverHandle::from_arc(counting.clone()))
            .run(&c)
            .unwrap();
        assert_eq!(counting.started.load(Ordering::Relaxed), 4);
        assert_eq!(counting.finished.load(Ordering::Relaxed), 4);
        assert!(counting.events.load(Ordering::Relaxed) > 0);
        assert_eq!(bare.aggregate, observed.aggregate);
        assert_eq!(bare.final_infected, observed.final_infected);
    }

    #[test]
    fn event_budget_failure_is_an_error_not_a_panic() {
        let mut c = small_config();
        c.event_budget = Some(10);
        let err = ExperimentPlan::new(4)
            .master_seed(3)
            .engine(EngineOptions::new().with_threads(2))
            .run(&c)
            .unwrap_err();
        assert!(err.to_string().contains("event budget"), "unexpected error: {err}");
        // The failing replication is the lowest-indexed one (rep 0) at
        // every thread count, so the message names the same seed.
        let serial_err = ExperimentPlan::new(4).master_seed(3).run(&c).unwrap_err();
        assert_eq!(err, serial_err);
    }

    #[test]
    fn auto_threads_resolves_to_at_least_one() {
        let plan = ExperimentPlan::new(1).auto_threads();
        assert!(plan.thread_count() >= 1);
        assert_eq!(plan.rep_count(), 1);
    }

    #[test]
    fn traffic_series_is_cumulative_and_monotone() {
        let r = run_scenario(&small_config(), 21).unwrap();
        assert_eq!(r.traffic.len(), r.series.len(), "same sampling grid");
        let vals = r.traffic.values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]), "cumulative traffic decreased");
        assert_eq!(*vals.last().unwrap() as u64, r.stats.messages_sent);
    }

    #[test]
    fn adaptive_matches_fixed_batch_of_same_length() {
        let c = small_config();
        // An impossible (negative) target forces the runner to max_reps
        // even if early replications happen to agree exactly.
        let plan =
            ExperimentPlan::new(6).master_seed(33).engine(EngineOptions::new().with_threads(2));
        let adaptive = plan.run_adaptive(&c, -1.0, 2, 6).unwrap();
        assert!(!adaptive.converged);
        assert_eq!(adaptive.result.runs.len(), 6);
        let fixed = plan.run(&c).unwrap();
        assert_eq!(adaptive.result.aggregate.mean, fixed.aggregate.mean);
    }

    #[test]
    fn adaptive_stops_early_on_loose_target() {
        let c = small_config();
        let adaptive = ExperimentPlan::new(64)
            .master_seed(34)
            .engine(EngineOptions::new().with_threads(2))
            .run_adaptive(&c, 1e9, 2, 64)
            .unwrap();
        assert!(adaptive.converged);
        assert!(adaptive.result.runs.len() <= 4, "a huge target should stop immediately");
        assert!(adaptive.result.runs.len() >= 2, "min_reps respected");
    }

    #[test]
    fn adaptive_rejects_bad_rep_bounds() {
        let c = small_config();
        let plan = ExperimentPlan::new(5);
        assert!(plan.run_adaptive(&c, 1.0, 0, 5).is_err());
        assert!(plan.run_adaptive(&c, 1.0, 6, 5).is_err());
    }

    #[test]
    fn mean_time_to_reach() {
        let c = small_config();
        let e = ExperimentPlan::new(3).master_seed(17).run(&c).unwrap();
        let t = e.mean_time_to_reach(1.0);
        assert!(t.is_some(), "every run infects at least the seed");
        assert!(e.mean_time_to_reach(1e9).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn plan_rejects_zero_threads() {
        let _ = ExperimentPlan::new(1).engine(EngineOptions::new().with_threads(0));
    }

    /// The pre-`EngineOptions` per-field setters survive one release as
    /// forwarding shims; each must land in the same engine slot.
    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_forward_into_engine_options() {
        let plan = ExperimentPlan::new(1)
            .fel(FelKind::Calendar)
            .layout(LayoutKind::Arena)
            .probe(ProbeKind::Telemetry)
            .threads(3);
        let engine = plan.engine_options();
        assert_eq!(engine.fel, FelKind::Calendar);
        assert_eq!(engine.layout, LayoutKind::Arena);
        assert_eq!(engine.probe, ProbeKind::Telemetry);
        assert_eq!(engine.threads, 3);
        let direct = EngineOptions::new()
            .with_fel(FelKind::Calendar)
            .with_layout(LayoutKind::Arena)
            .with_probe(ProbeKind::Telemetry)
            .with_threads(3);
        assert_eq!(engine, direct);
    }
}
