//! In-simulation probes: event tracing, transmission chains, and
//! per-mechanism time-resolved telemetry.
//!
//! The experiment layer reports replication-level aggregates
//! ([`crate::model::RunStats`] totals, observer wall-clock metrics); this
//! module answers the questions those aggregates cannot: *which*
//! mechanism blocked *which* message at *what* time, and *who infected
//! whom*. A [`SimProbe`] receives a callback at every step of the message
//! lifecycle (sent → scanned → detected → delivered → read → accepted)
//! and at every state transition (infection, immunization, throttle,
//! blacklist) inside [`crate::model::EpidemicModel`]'s event dispatch.
//!
//! ## Determinism contract
//!
//! Probes are strictly read-only: every hook receives plain values (times
//! and phone ids) and has no access to the engine RNG or the event queue,
//! so an attached probe can never change a trajectory. The disabled path
//! is a single branch on an `Option` per hook site — the model holds
//! `Option<Box<dyn SimProbe>>`, `None` by default — and the perfsuite's
//! probe-overhead column verifies the cost of the always-false branch is
//! noise. Probe *output* is itself deterministic: same `(config, seed)`
//! ⇒ byte-identical trace exports, for every FEL backend.
//!
//! ## The three production probes
//!
//! * [`TransmissionChainProbe`] — records the who-infected-whom tree and
//!   derives empirical R per infection-time bin and time-to-N-infections.
//! * [`TraceProbe`] — a bounded ring of lifecycle events, exported as
//!   Chrome trace-event / Perfetto-compatible JSON or raw JSONL.
//! * [`MechanismTelemetryProbe`] — time-binned counters per response
//!   mechanism (blocked-by-scan/detection/blacklist, throttle delays,
//!   patches applied), surfaced into [`crate::run::RunResult`] and sweep
//!   reports.
//!
//! Probes are selected by the cloneable [`ProbeKind`] spec, which the
//! plan/sweep/CLI layers thread through to every replication
//! (`--probe` flag, `mpvsim trace <study>`).

use std::collections::VecDeque;
use std::fmt::Write as _;

use mpvsim_des::{SimDuration, SimTime};
use mpvsim_phonenet::PhoneId;

use crate::config::ScenarioConfig;

/// Default number of records a [`TraceProbe`] ring retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Which gateway mechanism dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCause {
    /// The signature scan recognized the message.
    Scan,
    /// The detection algorithm recognized the message.
    Detection,
    /// The sender is over the blacklist threshold.
    Blacklist,
}

impl BlockCause {
    /// Stable lowercase name (used in trace exports).
    pub fn name(self) -> &'static str {
        match self {
            BlockCause::Scan => "blocked_by_scan",
            BlockCause::Detection => "blocked_by_detection",
            BlockCause::Blacklist => "blocked_by_blacklist",
        }
    }
}

/// How a phone got infected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfectionCause {
    /// Initial seeding at t = 0.
    Seed,
    /// Accepted an infected MMS attachment. The sender is not carried
    /// here — inboxes are strict per-phone FIFOs, so a chain probe
    /// recovers the infector from its own delivered-senders queue (see
    /// [`TransmissionChainProbe`]).
    Mms,
    /// Accepted a Bluetooth proximity transfer from `from`.
    Bluetooth {
        /// The infected phone that offered the transfer.
        from: PhoneId,
    },
}

/// Simulation-level milestones (one-shot state transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Milestone {
    /// The provider crossed the detectability threshold.
    Detected,
    /// The gateway signature scan went live.
    ScanActive,
    /// The gateway detection algorithm went live.
    DetectionActive,
    /// Patch development finished; the rollout began.
    RolloutStart,
}

impl Milestone {
    /// Stable lowercase name (used in trace exports).
    pub fn name(self) -> &'static str {
        match self {
            Milestone::Detected => "detected",
            Milestone::ScanActive => "scan_active",
            Milestone::DetectionActive => "detection_active",
            Milestone::RolloutStart => "rollout_start",
        }
    }
}

/// Read-only callbacks from inside the epidemic model's event dispatch.
///
/// Every method has a no-op default, so a probe implements only what it
/// needs. Hooks receive plain values — never the RNG, never the event
/// queue — so probes cannot perturb a trajectory (regression-tested:
/// [`NoopProbe`] runs are bit-identical to un-probed runs).
#[allow(unused_variables)]
pub trait SimProbe: std::fmt::Debug + Send {
    /// An infected message left `sender` (`recipients == 0` means an
    /// invalid random dial: the number was unassigned, but the provider
    /// still saw the attempt).
    fn on_message_sent(&mut self, now: SimTime, sender: PhoneId, recipients: u32) {}

    /// The gateway dropped `sender`'s message.
    fn on_message_blocked(&mut self, now: SimTime, sender: PhoneId, cause: BlockCause) {}

    /// One recipient copy reached `recipient`'s inbox.
    fn on_message_delivered(&mut self, now: SimTime, sender: PhoneId, recipient: PhoneId) {}

    /// `phone`'s user read the oldest pending infected message.
    fn on_message_read(&mut self, now: SimTime, phone: PhoneId) {}

    /// `phone`'s user accepted the attachment they just read.
    fn on_message_accepted(&mut self, now: SimTime, phone: PhoneId) {}

    /// `phone` transitioned susceptible → infected.
    fn on_infection(&mut self, now: SimTime, phone: PhoneId, cause: InfectionCause) {}

    /// The immunization patch reached `phone` (`silenced` when the phone
    /// was already infected and the patch silenced it instead).
    fn on_patch_applied(&mut self, now: SimTime, phone: PhoneId, silenced: bool) {}

    /// Monitoring flagged `phone` (`false_positive` when it was not
    /// actually infected).
    fn on_throttled(&mut self, now: SimTime, phone: PhoneId, false_positive: bool) {}

    /// A throttled `phone`'s next send was spaced by `wait` (the forced
    /// wait the monitoring mechanism imposes).
    fn on_throttle_wait(&mut self, now: SimTime, phone: PhoneId, wait: SimDuration) {}

    /// `phone` crossed the blacklist threshold; all its outgoing MMS are
    /// blocked from now on.
    fn on_blacklisted(&mut self, now: SimTime, phone: PhoneId) {}

    /// `src` offered `dst` a Bluetooth transfer (acceptance is reported
    /// via [`SimProbe::on_infection`] with [`InfectionCause::Bluetooth`]).
    fn on_bluetooth_offer(&mut self, now: SimTime, src: PhoneId, dst: PhoneId) {}

    /// A one-shot simulation milestone fired.
    fn on_milestone(&mut self, now: SimTime, milestone: Milestone) {}

    /// Consumes the probe at the end of the replication, producing its
    /// result (if it has one).
    fn into_output(self: Box<Self>) -> Option<ProbeOutput> {
        None
    }
}

/// The do-nothing probe: every hook is the trait default. Exists to
/// measure the cost of the probe *dispatch* (the `Option` branch plus a
/// virtual call) separately from any probe's bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl SimProbe for NoopProbe {}

/// Cloneable probe selector, threaded through plans/sweeps/CLI flags.
/// Each replication builds its own probe instance from this spec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ProbeKind {
    /// No probe attached (the statically-free default).
    #[default]
    None,
    /// [`NoopProbe`]: dispatch overhead only, no data collected.
    Noop,
    /// [`TransmissionChainProbe`].
    Chain,
    /// [`TraceProbe`] with [`DEFAULT_TRACE_CAPACITY`].
    Trace,
    /// [`MechanismTelemetryProbe`] binned on the scenario's sample step.
    Telemetry,
}

impl ProbeKind {
    /// Every selectable kind, in CLI order.
    pub fn all() -> [ProbeKind; 5] {
        [ProbeKind::None, ProbeKind::Noop, ProbeKind::Chain, ProbeKind::Trace, ProbeKind::Telemetry]
    }

    /// Stable CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::None => "none",
            ProbeKind::Noop => "noop",
            ProbeKind::Chain => "chain",
            ProbeKind::Trace => "trace",
            ProbeKind::Telemetry => "telemetry",
        }
    }

    /// Parses a CLI name (`"none"`, `"noop"`, `"chain"`, `"trace"`,
    /// `"telemetry"`).
    pub fn from_name(name: &str) -> Option<ProbeKind> {
        ProbeKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Builds one probe instance for a replication of `config`, or
    /// `None` for [`ProbeKind::None`].
    pub fn build(self, config: &ScenarioConfig) -> Option<Box<dyn SimProbe>> {
        let bin_secs = config.sample_step.as_secs().max(1);
        match self {
            ProbeKind::None => None,
            ProbeKind::Noop => Some(Box::new(NoopProbe)),
            ProbeKind::Chain => Some(Box::new(TransmissionChainProbe::new(bin_secs))),
            ProbeKind::Trace => Some(Box::new(TraceProbe::new(DEFAULT_TRACE_CAPACITY))),
            ProbeKind::Telemetry => Some(Box::new(MechanismTelemetryProbe::new(bin_secs))),
        }
    }
}

/// What a probe produced for one replication. Carried as an optional
/// field on [`crate::run::RunResult`], so probe data flows through plans,
/// sinks and sweep records unchanged.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ProbeOutput {
    /// A transmission-chain record.
    Chain(ChainRecord),
    /// A bounded event trace.
    Trace(TraceRecord),
    /// Time-binned per-mechanism counters.
    Telemetry(MechanismTelemetry),
}

impl ProbeOutput {
    /// The telemetry payload, when this output carries one.
    pub fn as_telemetry(&self) -> Option<&MechanismTelemetry> {
        match self {
            ProbeOutput::Telemetry(t) => Some(t),
            _ => None,
        }
    }

    /// The chain payload, when this output carries one.
    pub fn as_chain(&self) -> Option<&ChainRecord> {
        match self {
            ProbeOutput::Chain(c) => Some(c),
            _ => None,
        }
    }

    /// The trace payload, when this output carries one.
    pub fn as_trace(&self) -> Option<&TraceRecord> {
        match self {
            ProbeOutput::Trace(t) => Some(t),
            _ => None,
        }
    }
}

// ----------------------------------------------------------------------
// Transmission chains
// ----------------------------------------------------------------------

/// One infection, with its attributed source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InfectionEvent {
    /// Simulated time of the infection, in seconds.
    pub t_secs: u64,
    /// The newly infected phone.
    pub phone: u32,
    /// Who infected it (`None` for the initial seed).
    pub infector: Option<u32>,
}

/// Mean secondary infections for phones infected within one time bin:
/// the empirical reproduction number R over time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RBin {
    /// Bin start, in hours.
    pub start_hours: f64,
    /// Phones infected within this bin.
    pub infected: u64,
    /// Mean number of phones each of them went on to infect (within the
    /// horizon — the tail of the epidemic is right-censored).
    pub mean_secondary: f64,
}

/// The who-infected-whom record of one replication.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChainRecord {
    /// Width of the R-over-time bins, in seconds.
    pub bin_secs: u64,
    /// Every infection, in simulated-time order (the seed first).
    pub infections: Vec<InfectionEvent>,
    /// Empirical R per infection-time bin.
    pub r_by_bin: Vec<RBin>,
}

impl ChainRecord {
    /// Total infections recorded (including the seed).
    pub fn total_infections(&self) -> usize {
        self.infections.len()
    }

    /// Simulated time (hours) at which the cumulative infection count
    /// reached `n`; `None` if it never did.
    pub fn time_to_n(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return Some(0.0);
        }
        self.infections.get(n - 1).map(|e| e.t_secs as f64 / 3600.0)
    }

    /// The largest per-bin empirical R (0 when nothing spread).
    pub fn peak_r(&self) -> f64 {
        self.r_by_bin.iter().map(|b| b.mean_secondary).fold(0.0, f64::max)
    }
}

/// Records the transmission tree: who infected whom, when.
///
/// MMS attribution works without any model-side bookkeeping because
/// inboxes are strict per-phone FIFOs: a delivery pushes the sender onto
/// the probe's own queue for that recipient, and a read pops the front —
/// exactly the message the model considers read. The infection callback
/// that immediately follows an accepting read is then attributed to that
/// popped sender. Bluetooth infections carry their source explicitly.
#[derive(Debug)]
pub struct TransmissionChainProbe {
    bin_secs: u64,
    /// Per-phone FIFO of the senders of delivered-but-unread messages.
    pending_senders: Vec<VecDeque<PhoneId>>,
    /// The sender popped by the most recent read: `(reader, sender)`.
    last_read: Option<(PhoneId, PhoneId)>,
    infections: Vec<InfectionEvent>,
}

impl TransmissionChainProbe {
    /// A chain recorder with the given R-over-time bin width.
    pub fn new(bin_secs: u64) -> Self {
        TransmissionChainProbe {
            bin_secs: bin_secs.max(1),
            pending_senders: Vec::new(),
            last_read: None,
            infections: Vec::new(),
        }
    }

    fn fifo(&mut self, phone: PhoneId) -> &mut VecDeque<PhoneId> {
        let idx = phone.index();
        if idx >= self.pending_senders.len() {
            self.pending_senders.resize_with(idx + 1, VecDeque::new);
        }
        &mut self.pending_senders[idx]
    }

    /// Builds the finished record (consumes the recorder's state).
    fn into_record(self) -> ChainRecord {
        // Children per infected phone, then R per infection-time bin.
        let mut children: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for e in &self.infections {
            if let Some(parent) = e.infector {
                *children.entry(parent).or_insert(0) += 1;
            }
        }
        let mut bins: Vec<(u64, u64)> = Vec::new(); // (infected, children_total)
        for e in &self.infections {
            let idx = (e.t_secs / self.bin_secs) as usize;
            if idx >= bins.len() {
                bins.resize(idx + 1, (0, 0));
            }
            bins[idx].0 += 1;
            bins[idx].1 += children.get(&e.phone).copied().unwrap_or(0);
        }
        let r_by_bin = bins
            .iter()
            .enumerate()
            .filter(|(_, (infected, _))| *infected > 0)
            .map(|(i, &(infected, secondary))| RBin {
                start_hours: (i as u64 * self.bin_secs) as f64 / 3600.0,
                infected,
                mean_secondary: secondary as f64 / infected as f64,
            })
            .collect();
        ChainRecord { bin_secs: self.bin_secs, infections: self.infections, r_by_bin }
    }
}

impl SimProbe for TransmissionChainProbe {
    fn on_message_delivered(&mut self, _now: SimTime, sender: PhoneId, recipient: PhoneId) {
        self.fifo(recipient).push_back(sender);
    }

    fn on_message_read(&mut self, _now: SimTime, phone: PhoneId) {
        self.last_read = self.fifo(phone).pop_front().map(|sender| (phone, sender));
    }

    fn on_infection(&mut self, now: SimTime, phone: PhoneId, cause: InfectionCause) {
        let infector = match cause {
            InfectionCause::Seed => None,
            InfectionCause::Bluetooth { from } => Some(from.0),
            InfectionCause::Mms => {
                self.last_read.filter(|(reader, _)| *reader == phone).map(|(_, sender)| sender.0)
            }
        };
        self.infections.push(InfectionEvent { t_secs: now.as_secs(), phone: phone.0, infector });
    }

    fn into_output(self: Box<Self>) -> Option<ProbeOutput> {
        Some(ProbeOutput::Chain(self.into_record()))
    }
}

// ----------------------------------------------------------------------
// Event tracing
// ----------------------------------------------------------------------

/// One traced lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEventRecord {
    /// Simulated time, in seconds.
    pub t_secs: u64,
    /// Stable event name (e.g. `"sent"`, `"blocked_by_scan"`,
    /// `"infection"`).
    pub name: String,
    /// The primary phone involved, if any.
    pub phone: Option<u32>,
    /// The secondary phone involved (sender of a delivery, infector of
    /// an infection, target of a Bluetooth offer), if any.
    pub peer: Option<u32>,
}

/// The bounded event trace of one replication.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceRecord {
    /// Ring capacity the trace ran with.
    pub capacity: usize,
    /// Lifetime number of events recorded (including evicted ones).
    pub total_recorded: u64,
    /// The retained records, oldest first (the **last** `capacity`
    /// events when the ring overflowed).
    pub events: Vec<TraceEventRecord>,
}

impl TraceRecord {
    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.total_recorded - self.events.len() as u64
    }

    /// Renders the trace as Chrome trace-event JSON (the
    /// ["JSON Object Format"](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
    /// Perfetto and `chrome://tracing` load directly): one instant event
    /// per record, `ts` in microseconds of simulated time, `tid` = phone.
    ///
    /// The rendering is fully deterministic — fixed field order, integer
    /// timestamps — so identical runs export identical bytes.
    pub fn to_chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"mpvsim\",");
        let _ = write!(out, "\"dropped_events\":{}}},\"traceEvents\":[", self.dropped());
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                e.name,
                e.phone.unwrap_or(0),
                e.t_secs * 1_000_000,
            );
            match e.peer {
                Some(p) => {
                    let _ = write!(out, ",\"args\":{{\"peer\":{p}}}}}");
                }
                None => out.push_str(",\"args\":{}}"),
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders the trace as raw JSONL: one flat object per line, for
    /// ad-hoc analysis (`jq`, pandas). Deterministic byte output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            let _ = write!(out, "{{\"t_secs\":{},\"event\":\"{}\"", e.t_secs, e.name);
            if let Some(p) = e.phone {
                let _ = write!(out, ",\"phone\":{p}");
            }
            if let Some(p) = e.peer {
                let _ = write!(out, ",\"peer\":{p}");
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Records every lifecycle event into a bounded ring buffer.
#[derive(Debug)]
pub struct TraceProbe {
    capacity: usize,
    ring: VecDeque<TraceEventRecord>,
    total: u64,
}

impl TraceProbe {
    /// A trace recorder retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace probe needs capacity");
        TraceProbe { capacity, ring: VecDeque::with_capacity(capacity.min(4096)), total: 0 }
    }

    fn push(&mut self, now: SimTime, name: &'static str, phone: Option<u32>, peer: Option<u32>) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEventRecord {
            t_secs: now.as_secs(),
            name: name.to_owned(),
            phone,
            peer,
        });
        self.total += 1;
    }
}

impl SimProbe for TraceProbe {
    fn on_message_sent(&mut self, now: SimTime, sender: PhoneId, recipients: u32) {
        let name = if recipients == 0 { "invalid_dial" } else { "sent" };
        self.push(now, name, Some(sender.0), None);
    }

    fn on_message_blocked(&mut self, now: SimTime, sender: PhoneId, cause: BlockCause) {
        self.push(now, cause.name(), Some(sender.0), None);
    }

    fn on_message_delivered(&mut self, now: SimTime, sender: PhoneId, recipient: PhoneId) {
        self.push(now, "delivered", Some(recipient.0), Some(sender.0));
    }

    fn on_message_read(&mut self, now: SimTime, phone: PhoneId) {
        self.push(now, "read", Some(phone.0), None);
    }

    fn on_message_accepted(&mut self, now: SimTime, phone: PhoneId) {
        self.push(now, "accepted", Some(phone.0), None);
    }

    fn on_infection(&mut self, now: SimTime, phone: PhoneId, cause: InfectionCause) {
        let peer = match cause {
            InfectionCause::Bluetooth { from } => Some(from.0),
            InfectionCause::Seed | InfectionCause::Mms => None,
        };
        let name = match cause {
            InfectionCause::Seed => "seed_infection",
            InfectionCause::Mms => "infection",
            InfectionCause::Bluetooth { .. } => "bt_infection",
        };
        self.push(now, name, Some(phone.0), peer);
    }

    fn on_patch_applied(&mut self, now: SimTime, phone: PhoneId, silenced: bool) {
        let name = if silenced { "silenced" } else { "patched" };
        self.push(now, name, Some(phone.0), None);
    }

    fn on_throttled(&mut self, now: SimTime, phone: PhoneId, false_positive: bool) {
        let name = if false_positive { "throttled_false_positive" } else { "throttled" };
        self.push(now, name, Some(phone.0), None);
    }

    fn on_blacklisted(&mut self, now: SimTime, phone: PhoneId) {
        self.push(now, "blacklisted", Some(phone.0), None);
    }

    fn on_bluetooth_offer(&mut self, now: SimTime, src: PhoneId, dst: PhoneId) {
        self.push(now, "bt_offer", Some(src.0), Some(dst.0));
    }

    fn on_milestone(&mut self, now: SimTime, milestone: Milestone) {
        self.push(now, milestone.name(), None, None);
    }

    fn into_output(self: Box<Self>) -> Option<ProbeOutput> {
        Some(ProbeOutput::Trace(TraceRecord {
            capacity: self.capacity,
            total_recorded: self.total,
            events: self.ring.into_iter().collect(),
        }))
    }
}

// ----------------------------------------------------------------------
// Mechanism telemetry
// ----------------------------------------------------------------------

/// Counters for one time bin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TelemetryBin {
    /// Virus messages emitted (including invalid dials).
    pub messages_sent: u64,
    /// Messages dropped by the signature scan.
    pub blocked_by_scan: u64,
    /// Messages dropped by the detection algorithm.
    pub blocked_by_detection: u64,
    /// Messages dropped by the blacklist.
    pub blocked_by_blacklist: u64,
    /// New infections.
    pub infections: u64,
    /// Immunization patches applied.
    pub patches_applied: u64,
    /// Phones newly flagged by monitoring.
    pub throttles: u64,
    /// Sends spaced by the monitoring forced wait.
    pub throttle_waits: u64,
    /// Total simulated seconds of imposed forced-wait spacing.
    pub throttle_wait_secs: u64,
    /// Phones newly blacklisted.
    pub blacklists: u64,
}

impl TelemetryBin {
    fn add(&mut self, other: &TelemetryBin) {
        self.messages_sent += other.messages_sent;
        self.blocked_by_scan += other.blocked_by_scan;
        self.blocked_by_detection += other.blocked_by_detection;
        self.blocked_by_blacklist += other.blocked_by_blacklist;
        self.infections += other.infections;
        self.patches_applied += other.patches_applied;
        self.throttles += other.throttles;
        self.throttle_waits += other.throttle_waits;
        self.throttle_wait_secs += other.throttle_wait_secs;
        self.blacklists += other.blacklists;
    }
}

/// Time-binned per-mechanism counters for one replication (or, after
/// [`MechanismTelemetry::merge`], summed over a cell's replications).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MechanismTelemetry {
    /// Bin width, in seconds.
    pub bin_secs: u64,
    /// Counters per bin; bin `i` covers `[i·bin_secs, (i+1)·bin_secs)`.
    pub bins: Vec<TelemetryBin>,
}

impl MechanismTelemetry {
    /// Element-wise sum of another telemetry record into this one
    /// (replications of the same scenario share the bin grid).
    ///
    /// # Panics
    ///
    /// Panics if the two records were binned with different `bin_secs`:
    /// summing mismatched grids would silently corrupt the time-resolved
    /// series while leaving the totals plausible.
    pub fn merge(&mut self, other: &MechanismTelemetry) {
        assert_eq!(self.bin_secs, other.bin_secs, "merging incompatible bin grids");
        if other.bins.len() > self.bins.len() {
            self.bins.resize_with(other.bins.len(), TelemetryBin::default);
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            mine.add(theirs);
        }
    }

    /// Sum over all bins.
    pub fn totals(&self) -> TelemetryBin {
        let mut t = TelemetryBin::default();
        for b in &self.bins {
            t.add(b);
        }
        t
    }
}

/// Accumulates time-binned per-mechanism counters.
#[derive(Debug)]
pub struct MechanismTelemetryProbe {
    bin_secs: u64,
    bins: Vec<TelemetryBin>,
}

impl MechanismTelemetryProbe {
    /// A telemetry probe with the given bin width (clamped to ≥ 1 s).
    pub fn new(bin_secs: u64) -> Self {
        MechanismTelemetryProbe { bin_secs: bin_secs.max(1), bins: Vec::new() }
    }

    fn bin(&mut self, now: SimTime) -> &mut TelemetryBin {
        let idx = (now.as_secs() / self.bin_secs) as usize;
        if idx >= self.bins.len() {
            self.bins.resize_with(idx + 1, TelemetryBin::default);
        }
        &mut self.bins[idx]
    }
}

impl SimProbe for MechanismTelemetryProbe {
    fn on_message_sent(&mut self, now: SimTime, _sender: PhoneId, _recipients: u32) {
        self.bin(now).messages_sent += 1;
    }

    fn on_message_blocked(&mut self, now: SimTime, _sender: PhoneId, cause: BlockCause) {
        let bin = self.bin(now);
        match cause {
            BlockCause::Scan => bin.blocked_by_scan += 1,
            BlockCause::Detection => bin.blocked_by_detection += 1,
            BlockCause::Blacklist => bin.blocked_by_blacklist += 1,
        }
    }

    fn on_infection(&mut self, now: SimTime, _phone: PhoneId, _cause: InfectionCause) {
        self.bin(now).infections += 1;
    }

    fn on_patch_applied(&mut self, now: SimTime, _phone: PhoneId, _silenced: bool) {
        self.bin(now).patches_applied += 1;
    }

    fn on_throttled(&mut self, now: SimTime, _phone: PhoneId, _false_positive: bool) {
        self.bin(now).throttles += 1;
    }

    fn on_throttle_wait(&mut self, now: SimTime, _phone: PhoneId, wait: SimDuration) {
        let bin = self.bin(now);
        bin.throttle_waits += 1;
        bin.throttle_wait_secs += wait.as_secs();
    }

    fn on_blacklisted(&mut self, now: SimTime, _phone: PhoneId) {
        self.bin(now).blacklists += 1;
    }

    fn into_output(self: Box<Self>) -> Option<ProbeOutput> {
        Some(ProbeOutput::Telemetry(MechanismTelemetry {
            bin_secs: self.bin_secs,
            bins: self.bins,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn probe_kind_names_round_trip() {
        for kind in ProbeKind::all() {
            assert_eq!(ProbeKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ProbeKind::from_name("magic"), None);
        assert_eq!(ProbeKind::default(), ProbeKind::None);
    }

    #[test]
    fn noop_probe_has_no_output() {
        let p: Box<dyn SimProbe> = Box::new(NoopProbe);
        assert!(p.into_output().is_none());
    }

    #[test]
    fn chain_probe_attributes_mms_via_fifo_order() {
        let mut p = TransmissionChainProbe::new(3600);
        let (a, b, c) = (PhoneId(0), PhoneId(1), PhoneId(2));
        p.on_infection(t(0), a, InfectionCause::Seed);
        // a delivers to c, then b delivers to c: reads pop in that order.
        p.on_message_delivered(t(10), a, c);
        p.on_message_delivered(t(20), b, c);
        p.on_message_read(t(30), c);
        p.on_message_accepted(t(30), c);
        p.on_infection(t(30), c, InfectionCause::Mms);
        let record = Box::new(p).into_output().unwrap();
        let chain = record.as_chain().unwrap();
        assert_eq!(chain.total_infections(), 2);
        assert_eq!(chain.infections[0], InfectionEvent { t_secs: 0, phone: 0, infector: None });
        assert_eq!(
            chain.infections[1],
            InfectionEvent { t_secs: 30, phone: 2, infector: Some(0) },
            "first delivery (from a) must be the one read first"
        );
    }

    #[test]
    fn chain_probe_bluetooth_carries_source() {
        let mut p = TransmissionChainProbe::new(60);
        p.on_infection(t(0), PhoneId(5), InfectionCause::Seed);
        p.on_infection(t(90), PhoneId(7), InfectionCause::Bluetooth { from: PhoneId(5) });
        let chain = Box::new(p).into_output().unwrap();
        let chain = chain.as_chain().unwrap();
        assert_eq!(chain.infections[1].infector, Some(5));
        // Seed infected 1 phone in bin 0; phone 7 infected nobody.
        assert_eq!(chain.r_by_bin.len(), 2);
        assert_eq!(chain.r_by_bin[0].mean_secondary, 1.0);
        assert_eq!(chain.r_by_bin[1].mean_secondary, 0.0);
        assert_eq!(chain.time_to_n(2), Some(90.0 / 3600.0));
        assert_eq!(chain.time_to_n(3), None);
        assert_eq!(chain.peak_r(), 1.0);
    }

    #[test]
    fn trace_probe_ring_bounds_and_exports() {
        let mut p = TraceProbe::new(2);
        p.on_message_sent(t(1), PhoneId(3), 1);
        p.on_message_delivered(t(2), PhoneId(3), PhoneId(4));
        p.on_message_read(t(3), PhoneId(4));
        let trace = Box::new(p).into_output().unwrap();
        let trace = trace.as_trace().unwrap();
        assert_eq!(trace.total_recorded, 3);
        assert_eq!(trace.events.len(), 2, "capacity 2 keeps the last two");
        assert_eq!(trace.dropped(), 1);
        assert_eq!(trace.events[0].name, "delivered");
        assert_eq!(trace.events[0].peer, Some(3));

        let chrome = trace.to_chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
        assert_eq!(doc["traceEvents"].as_array().unwrap().len(), 2);
        assert_eq!(doc["traceEvents"][0]["ph"], "i");
        assert_eq!(doc["traceEvents"][0]["ts"], 2_000_000);
        assert_eq!(doc["otherData"]["dropped_events"], 1);

        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
            assert!(v["t_secs"].as_u64().is_some());
        }
    }

    #[test]
    fn trace_export_is_deterministic() {
        let build = || {
            let mut p = TraceProbe::new(16);
            p.on_message_sent(t(1), PhoneId(0), 0);
            p.on_milestone(t(2), Milestone::Detected);
            p.on_infection(t(3), PhoneId(1), InfectionCause::Bluetooth { from: PhoneId(0) });
            let out = Box::new(p).into_output().unwrap();
            match out {
                ProbeOutput::Trace(tr) => (tr.to_chrome_trace_json(), tr.to_jsonl()),
                _ => unreachable!(),
            }
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn trace_probe_rejects_zero_capacity() {
        let _ = TraceProbe::new(0);
    }

    #[test]
    fn telemetry_bins_and_merges() {
        let mut p = MechanismTelemetryProbe::new(60);
        p.on_message_sent(t(0), PhoneId(0), 1);
        p.on_message_blocked(t(61), PhoneId(0), BlockCause::Scan);
        p.on_message_blocked(t(62), PhoneId(0), BlockCause::Blacklist);
        p.on_throttle_wait(t(130), PhoneId(0), SimDuration::from_secs(900));
        let out = Box::new(p).into_output().unwrap();
        let ProbeOutput::Telemetry(mut a) = out else { unreachable!() };
        assert_eq!(a.bins.len(), 3);
        assert_eq!(a.bins[0].messages_sent, 1);
        assert_eq!(a.bins[1].blocked_by_scan, 1);
        assert_eq!(a.bins[1].blocked_by_blacklist, 1);
        assert_eq!(a.bins[2].throttle_wait_secs, 900);

        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.totals().messages_sent, 2);
        assert_eq!(a.totals().blocked_by_scan, 2);
        assert_eq!(a.totals().throttle_waits, 2);
    }

    #[test]
    fn probe_kind_builds_matching_probe() {
        let config = ScenarioConfig::baseline(crate::virus::VirusProfile::virus1());
        assert!(ProbeKind::None.build(&config).is_none());
        for kind in [ProbeKind::Noop, ProbeKind::Chain, ProbeKind::Trace, ProbeKind::Telemetry] {
            assert!(kind.build(&config).is_some(), "{kind:?}");
        }
    }
}
