//! Microbenchmarks for the discrete-event engine: future-event-list
//! throughput, event dispatch rate, and seed derivation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpvsim_des::seed::{derive_seed, derive_stream_seed};
use mpvsim_des::{Context, EventQueue, FelKind, Model, SimDuration, SimTime, Simulation};

/// Both future-event-list backends, benchmarked side by side.
const FELS: [FelKind; 2] = [FelKind::BinaryHeap, FelKind::Calendar];

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");

    for fel in FELS {
        group.bench_function(BenchmarkId::new("schedule_pop_10k_sorted", fel.label()), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kind(fel);
                for i in 0..10_000u64 {
                    q.schedule(SimTime::from_secs(i), i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            })
        });

        group.bench_function(BenchmarkId::new("schedule_pop_10k_reverse", fel.label()), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kind(fel);
                for i in (0..10_000u64).rev() {
                    q.schedule(SimTime::from_secs(i), i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            })
        });

        group.bench_function(BenchmarkId::new("interleaved_hold_1k", fel.label()), |b| {
            // Classic hold model: steady-state queue of 1k pending events.
            b.iter(|| {
                let mut q = EventQueue::with_kind(fel);
                for i in 0..1_000u64 {
                    q.schedule(SimTime::from_secs(i), i);
                }
                for i in 0..10_000u64 {
                    let (t, _) = q.pop().expect("queue never drains");
                    q.schedule(t + SimDuration::from_secs(1_000 + i % 7), i);
                }
                black_box(q.len())
            })
        });
    }

    group.finish();
}

/// A self-rescheduling no-op model: measures pure dispatch overhead.
struct Relay {
    remaining: u64,
}

impl Model for Relay {
    type Event = ();
    fn handle(&mut self, _ev: (), ctx: &mut Context<'_, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDuration::from_secs(1), ());
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_dispatch");
    for fel in FELS {
        group.bench_function(BenchmarkId::new("100k_events", fel.label()), |b| {
            b.iter(|| {
                let mut sim = Simulation::new(Relay { remaining: 100_000 }, 1).with_fel(fel);
                sim.schedule(SimTime::ZERO, ());
                sim.run_until(SimTime::MAX);
                black_box(sim.events_processed())
            })
        });
    }
    group.finish();
}

fn bench_seeding(c: &mut Criterion) {
    c.bench_function("derive_seed_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for rep in 0..1_000 {
                acc ^= derive_seed(black_box(42), rep);
                acc ^= derive_stream_seed(black_box(42), rep, 1);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_dispatch, bench_seeding);
criterion_main!(benches);
