//! Outbreak response: pit each of the six response mechanisms against the
//! fast-spreading random dialer (Virus 3) and compare containment.
//!
//! This reproduces the paper's §5.3 conclusion in one table: reception-
//! point mechanisms (scan, detection) and immunization are too slow for a
//! virus that saturates the population within a day, while the
//! dissemination-point mechanisms (monitoring, blacklisting) — which need
//! no signature and trigger on the sending anomaly itself — contain it.
//!
//! ```text
//! cargo run --release --example outbreak_response
//! ```

use mpvsim::prelude::*;

fn main() -> Result<(), ConfigError> {
    let base =
        ScenarioConfig::baseline(VirusProfile::virus3()).with_horizon(SimDuration::from_hours(25));

    let arms: Vec<(&str, ResponseConfig)> = vec![
        ("baseline (no response)", ResponseConfig::none()),
        (
            "gateway signature scan (6 h delay)",
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(6),
            }),
        ),
        (
            "gateway detection (95 % accuracy)",
            ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(0.95)),
        ),
        (
            "user education (acceptance 0.40 → 0.20)",
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
        ),
        (
            "immunization (24 h dev + 6 h rollout)",
            ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(24),
                SimDuration::from_hours(6),
            )),
        ),
        (
            "monitoring (15 min forced wait)",
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(15))),
        ),
        (
            "blacklisting (threshold 30)",
            ResponseConfig::none().with_blacklist(Blacklist { threshold: 30 }),
        ),
    ];

    println!("Virus 3 (random dialer), 1000 phones, 25 h horizon, 5 replications each\n");
    println!("{:<42} {:>10} {:>12}", "response mechanism", "infected", "vs baseline");
    let mut baseline_mean = None;
    for (name, response) in arms {
        let config = base.clone().with_response(response);
        let result = ExperimentPlan::new(5)
            .master_seed(77)
            .engine(EngineOptions::new().with_threads(4))
            .run(&config)?;
        let mean = result.final_infected.mean;
        let baseline = *baseline_mean.get_or_insert(mean);
        println!("{:<42} {:>10.1} {:>11.0}%", name, mean, 100.0 * mean / baseline);
    }
    println!(
        "\nShapes to look for (paper §5.2): scan/detection/immunization cannot react\n\
         in time; monitoring slows the spread; blacklisting nearly stops it."
    );
    Ok(())
}
