//! Phone-user behaviour: read delays and the declining acceptance curve.
//!
//! §4.4 of the paper: "the probability of acceptance for the *n*th
//! received message is `0.468 ÷ 2^n`", so that "given that the user
//! receives a large number of infected messages, the probability that a
//! user will eventually give consent to accept an infected file is 0.40".
//!
//! User education (§3.2) scales the acceptance factor down (½ or ¼),
//! reducing the eventual acceptance to ≈ 0.20 / ≈ 0.10.

use serde::{Deserialize, Serialize};

use mpvsim_des::{DelaySpec, SimDuration};

/// The paper's acceptance factor: eventual acceptance ≈ 0.40.
pub const DEFAULT_ACCEPTANCE_FACTOR: f64 = 0.468;

/// The declining per-message acceptance curve `AF / 2^n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptanceModel {
    acceptance_factor: f64,
}

impl AcceptanceModel {
    /// Creates an acceptance model.
    ///
    /// # Panics
    ///
    /// Panics if `acceptance_factor` is not in `[0, 1]`.
    pub fn new(acceptance_factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&acceptance_factor) && acceptance_factor.is_finite(),
            "acceptance factor must be in [0, 1]"
        );
        AcceptanceModel { acceptance_factor }
    }

    /// The paper's default model (AF = 0.468).
    pub fn paper_default() -> Self {
        AcceptanceModel::new(DEFAULT_ACCEPTANCE_FACTOR)
    }

    /// The configured acceptance factor.
    pub fn acceptance_factor(&self) -> f64 {
        self.acceptance_factor
    }

    /// A copy with the acceptance factor multiplied by `scale` (the user-
    /// education mechanism), clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    pub fn scaled(&self, scale: f64) -> Self {
        assert!(scale >= 0.0 && scale.is_finite(), "scale must be non-negative");
        AcceptanceModel::new((self.acceptance_factor * scale).min(1.0))
    }

    /// Probability that the user accepts the `n`-th infected message
    /// offered to them (`n` is 1-based): `AF / 2^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn prob_accept(&self, n: u32) -> f64 {
        assert!(n >= 1, "message ordinal is 1-based");
        if n >= 64 {
            return 0.0;
        }
        self.acceptance_factor / (1u64 << n) as f64
    }

    /// Probability that the user eventually accepts *some* infected
    /// message, given unboundedly many offers:
    /// `1 − Π (1 − AF/2^n)` — ≈ 0.40 for the default factor.
    pub fn eventual_acceptance(&self) -> f64 {
        let mut stay_clean = 1.0f64;
        for n in 1..64 {
            stay_clean *= 1.0 - self.prob_accept(n);
        }
        1.0 - stay_clean
    }
}

impl Default for AcceptanceModel {
    fn default() -> Self {
        AcceptanceModel::paper_default()
    }
}

/// User behaviour parameters: how quickly a new MMS is read and how likely
/// an infected attachment is accepted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Delay between a message arriving in the inbox and the user reading
    /// it (and deciding on the attachment).
    pub read_delay: DelaySpec,
    /// The acceptance curve.
    pub acceptance: AcceptanceModel,
    /// Optional legitimate MMS traffic: the gap between consecutive
    /// legitimate messages each phone sends (to a random contact). The
    /// paper's model "does not track the delivery of legitimate
    /// messages"; enabling this extension feeds the monitoring counters
    /// with real user traffic — which is what makes monitoring
    /// false-positives measurable — and gives piggybacking viruses
    /// (Virus 4's literal semantics) events to ride on.
    pub legitimate_mms: Option<DelaySpec>,
}

impl BehaviorConfig {
    /// The defaults used throughout the experiments: exponential read
    /// delay with a one-hour mean ("how quickly a phone user reads a new
    /// MMS message") and the paper's acceptance factor.
    pub fn paper_default() -> Self {
        BehaviorConfig {
            read_delay: DelaySpec::exponential(SimDuration::from_hours(1)),
            acceptance: AcceptanceModel::paper_default(),
            legitimate_mms: None,
        }
    }

    /// Paper defaults plus legitimate traffic at the given mean
    /// inter-message gap per phone (a handful of MMS per day is typical
    /// 2007 usage: a 4 h mean gives ≈ 6/day).
    pub fn with_legitimate_traffic(mean_gap: SimDuration) -> Self {
        BehaviorConfig {
            legitimate_mms: Some(DelaySpec::exponential(mean_gap)),
            ..BehaviorConfig::paper_default()
        }
    }
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_message_probabilities_halve() {
        let m = AcceptanceModel::paper_default();
        assert!((m.prob_accept(1) - 0.234).abs() < 1e-12);
        assert!((m.prob_accept(2) - 0.117).abs() < 1e-12);
        assert!((m.prob_accept(3) - 0.0585).abs() < 1e-12);
        assert!(m.prob_accept(64) == 0.0, "deep tail underflows to zero");
    }

    #[test]
    fn eventual_acceptance_is_the_papers_040() {
        let m = AcceptanceModel::paper_default();
        let p = m.eventual_acceptance();
        assert!((p - 0.40).abs() < 0.005, "eventual acceptance {p} ≉ 0.40");
    }

    #[test]
    fn education_halving_gives_about_020() {
        // §5.2: halving/quartering the acceptance factor reduces the total
        // probability of acceptance to ≈ 0.20 / ≈ 0.10.
        let half = AcceptanceModel::paper_default().scaled(0.5);
        let p = half.eventual_acceptance();
        assert!((p - 0.21).abs() < 0.02, "half-education eventual {p} ≉ 0.20");
        let quarter = AcceptanceModel::paper_default().scaled(0.25);
        let p = quarter.eventual_acceptance();
        assert!((p - 0.11).abs() < 0.02, "quarter-education eventual {p} ≉ 0.10");
    }

    #[test]
    fn scaled_clamps_at_one() {
        let m = AcceptanceModel::new(0.9).scaled(5.0);
        assert_eq!(m.acceptance_factor(), 1.0);
    }

    #[test]
    fn zero_factor_never_accepts() {
        let m = AcceptanceModel::new(0.0);
        assert_eq!(m.prob_accept(1), 0.0);
        assert_eq!(m.eventual_acceptance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn factor_above_one_rejected() {
        let _ = AcceptanceModel::new(1.2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_rejected() {
        let _ = AcceptanceModel::paper_default().scaled(-1.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_message_rejected() {
        let _ = AcceptanceModel::paper_default().prob_accept(0);
    }

    #[test]
    fn default_behavior_config() {
        let b = BehaviorConfig::default();
        assert_eq!(b.read_delay.mean(), SimDuration::from_hours(1));
        assert_eq!(b.acceptance.acceptance_factor(), DEFAULT_ACCEPTANCE_FACTOR);
        assert!(b.legitimate_mms.is_none(), "paper model tracks only virus traffic");
    }

    #[test]
    fn legitimate_traffic_constructor() {
        let b = BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
        assert_eq!(b.legitimate_mms.unwrap().mean(), SimDuration::from_hours(4));
        assert_eq!(b.read_delay, BehaviorConfig::paper_default().read_delay);
    }
}
