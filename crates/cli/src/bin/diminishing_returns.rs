//! Runs the §5.3 diminishing-returns sweep: each mechanism's headline
//! knob on a fine grid, so the knee — where a stronger (more expensive)
//! setting stops buying containment — is visible.
fn main() {
    mpvsim_cli::figure_main(
        "§5.3 — Point of Diminishing Returns per Mechanism",
        mpvsim_core::figures::diminishing_returns_study,
    );
}
