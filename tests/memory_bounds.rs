//! Regression tests for bounded event memory and the per-replication
//! layout axis: the figure-1 event-heap high-water mark must not
//! regress past the committed baseline, resident-memory accounting
//! must be populated, the arena layout must be bit-identical to fresh
//! allocation, and bounded inbox admission must tail-drop only when
//! the cap actually binds.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use mpvsim::core::figures::{fig1_baseline_cells, FigureOptions};
use mpvsim::des::FelKind;
use mpvsim::prelude::*;

const SEED: u64 = 20_07;

/// Committed figure-1 high-water mark at population 1,000 (see
/// `BENCH_2026-08-06.json`): 376,636 pending events over ten
/// replications of all four virus cells. Replication 0 of each cell
/// is one of the runs behind that maximum, so its peak must stay at
/// or under the ceiling; anything above it means event scheduling
/// grew and the scaling study's memory model no longer holds.
const FIG1_PEAK_PENDING_BASELINE: usize = 376_636;

#[derive(Default)]
struct PeakRecorder {
    peak_pending: AtomicUsize,
    peak_bytes: AtomicUsize,
    reps: AtomicU64,
}

impl ExperimentObserver for PeakRecorder {
    fn on_replication_finish(&self, m: &ReplicationMetrics) {
        self.peak_pending.fetch_max(m.sim.peak_pending_events, Ordering::Relaxed);
        self.peak_bytes.fetch_max(m.sim.peak_event_bytes, Ordering::Relaxed);
        self.reps.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn fig1_peak_pending_events_stays_within_committed_baseline() {
    let opts = FigureOptions { reps: 1, engine: EngineOptions::new(), ..FigureOptions::default() };
    let recorder = std::sync::Arc::new(PeakRecorder::default());
    for cell in fig1_baseline_cells(&opts) {
        let config = cell.spec.to_config().expect("paper cell is valid");
        let plan = ExperimentPlan::new(1)
            .master_seed(opts.master_seed)
            .engine(EngineOptions::new().with_threads(1))
            .observer_handle(ObserverHandle::from_arc(recorder.clone()));
        plan.run(config).expect("fig1 cell runs");
    }
    assert_eq!(recorder.reps.load(Ordering::Relaxed), 4, "all four virus cells ran");
    let peak = recorder.peak_pending.load(Ordering::Relaxed);
    assert!(
        peak <= FIG1_PEAK_PENDING_BASELINE,
        "fig1 peak_pending_events regressed: {peak} > {FIG1_PEAK_PENDING_BASELINE}"
    );
    assert!(peak > 0, "an epidemic run must schedule events");
    assert!(
        recorder.peak_bytes.load(Ordering::Relaxed) > 0,
        "peak_event_bytes must track the heap high-water mark"
    );
}

#[test]
fn resident_state_bytes_is_populated_and_scales_with_population() {
    let mut small = ScenarioConfig::baseline(VirusProfile::virus1());
    small.population = PopulationConfig::paper_default(100);
    small.horizon = SimDuration::from_hours(4);
    let mut large = small.clone();
    large.population = PopulationConfig::paper_default(400);
    let a = run_scenario(&small, SEED).expect("valid");
    let b = run_scenario(&large, SEED).expect("valid");
    assert!(a.resident_state_bytes > 0, "resident bytes must be accounted");
    assert!(
        b.resident_state_bytes > a.resident_state_bytes,
        "resident bytes must grow with population: {} vs {}",
        a.resident_state_bytes,
        b.resident_state_bytes
    );
}

#[test]
fn arena_layout_is_bit_identical_to_fresh_across_replications() {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus2());
    c.population = PopulationConfig::paper_default(200);
    c.horizon = SimDuration::from_hours(8);
    for seed in [SEED, SEED + 1, SEED + 2] {
        let (fresh, fm) = run_scenario_configured(
            &c,
            seed,
            FelKind::default(),
            None,
            ProbeKind::None,
            LayoutKind::Fresh,
        )
        .expect("valid");
        // Two arena runs back to back so the second one replays from a
        // recycled pool rather than a cold allocation.
        for _ in 0..2 {
            let (arena, am) = run_scenario_configured(
                &c,
                seed,
                FelKind::default(),
                None,
                ProbeKind::None,
                LayoutKind::Arena,
            )
            .expect("valid");
            assert_eq!(fresh.series, arena.series, "seed {seed}");
            assert_eq!(fresh.final_infected, arena.final_infected, "seed {seed}");
            assert_eq!(fresh.stats, arena.stats, "seed {seed}");
            assert_eq!(fm.events_processed, am.events_processed, "seed {seed}");
        }
    }
}

#[test]
fn a_loose_inbox_cap_never_changes_the_trajectory() {
    let mut uncapped = ScenarioConfig::baseline(VirusProfile::virus1());
    uncapped.population = PopulationConfig::paper_default(150);
    uncapped.horizon = SimDuration::from_hours(8);
    let mut capped = uncapped.clone();
    capped.inbox_cap = Some(u32::MAX);
    let a = run_scenario(&uncapped, SEED).expect("valid");
    let b = run_scenario(&capped, SEED).expect("valid");
    assert_eq!(a.series, b.series);
    assert_eq!(a.final_infected, b.final_infected);
    assert_eq!(b.stats.inbox_dropped, 0, "a cap that never binds drops nothing");
}

#[test]
fn a_tight_inbox_cap_drops_deterministically_and_still_completes() {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
    c.population = PopulationConfig::paper_default(150);
    c.horizon = SimDuration::from_hours(8);
    c.inbox_cap = Some(1);
    let a = run_scenario(&c, SEED).expect("a bounded run must still complete");
    let b = run_scenario(&c, SEED).expect("valid");
    assert_eq!(a.series, b.series, "tail-drop must be deterministic");
    assert_eq!(a.stats.inbox_dropped, b.stats.inbox_dropped);
}

#[test]
fn sharded_peak_accounting_sums_per_shard_high_water_marks() {
    // The sharded engine reports peak_pending_events as the SUM of each
    // shard's own FEL high-water mark (the shards peak at different
    // simulated times, so the sum is a conservative upper bound on the
    // true simultaneous peak — never an undercount). The per-lane peaks
    // stay visible in the telemetry so the bound can be audited.
    let mut c = ScenarioConfig::baseline(VirusProfile::virus1());
    c.population = PopulationConfig::paper_default(200);
    c.horizon = SimDuration::from_hours(8);
    c.initial_infections = 5;
    let c = shardable(&c);
    let out = run_scenario_sharded(&c, SEED, FelKind::default(), None, 4, None, ShardMode::Auto)
        .expect("shardable scenario runs");
    let lane_sum: usize = out.telemetry.lanes.iter().map(|l| l.peak_len).sum();
    let byte_sum: usize = out.telemetry.lanes.iter().map(|l| l.peak_event_bytes).sum();
    assert_eq!(out.metrics.peak_pending_events, lane_sum);
    assert_eq!(out.metrics.peak_event_bytes, byte_sum);
    assert!(lane_sum > 0, "an epidemic run must schedule events");
    for lane in &out.telemetry.lanes {
        assert!(
            lane.peak_len <= out.metrics.peak_pending_events,
            "a single lane cannot exceed the reported total"
        );
    }
    // The summed bound must not balloon past the sequential engine's
    // single-FEL peak by more than the shard count (each lane's local
    // peak is at most the global peak).
    let (_, seq) = run_scenario_configured(
        &c,
        SEED,
        FelKind::default(),
        None,
        ProbeKind::None,
        LayoutKind::Fresh,
    )
    .expect("valid");
    assert!(
        lane_sum <= seq.peak_pending_events.max(1) * 4 + 4,
        "summed shard peaks {lane_sum} exceed {}x shard count bound",
        seq.peak_pending_events
    );
}
