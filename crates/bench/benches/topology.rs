//! Benchmarks for contact-network generation and analysis at the paper's
//! scale (1000 phones, mean contact-list size 80) and the scaling-study
//! scale (2000).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mpvsim_topology::{analysis, GraphSpec};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(20);

    for (name, spec) in [
        ("power_law_1000_deg80", GraphSpec::power_law(1000, 80.0)),
        ("power_law_2000_deg80", GraphSpec::power_law(2000, 80.0)),
        ("erdos_renyi_1000_deg80", GraphSpec::erdos_renyi(1000, 80.0)),
        ("watts_strogatz_1000_k80", GraphSpec::watts_strogatz(1000, 80, 0.1)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(spec.generate(&mut rng).expect("valid spec"))
            })
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = GraphSpec::power_law(1000, 80.0).generate(&mut rng).expect("valid");

    let mut group = c.benchmark_group("analysis");
    group.bench_function("degree_stats_1000", |b| b.iter(|| black_box(analysis::degree_stats(&g))));
    group
        .bench_function("components_1000", |b| b.iter(|| black_box(analysis::component_sizes(&g))));
    group.bench_function("tail_slope_1000", |b| {
        b.iter(|| black_box(analysis::log_log_tail_slope(&g, 10)))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_analysis);
criterion_main!(benches);
