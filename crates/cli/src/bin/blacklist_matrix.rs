//! Regenerates the §5.2 prose claims: blacklisting against the
//! contact-list viruses (1, 2 and 4) at every threshold.
fn main() {
    mpvsim_cli::figure_main(
        "§5.2 — Blacklisting vs. Contact-List Viruses (prose claims)",
        mpvsim_core::figures::blacklist_matrix,
    );
}
