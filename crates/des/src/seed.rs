//! Seed derivation for replications.
//!
//! Each replication of an experiment needs a random stream that is (a)
//! reproducible from `(master_seed, replication_index)` and (b)
//! statistically unrelated to its neighbours. A SplitMix64 finalizer over
//! the combined inputs provides both: SplitMix64's output function is a
//! bijection on `u64` with strong avalanche behaviour, so consecutive
//! replication indices map to well-separated seeds.

/// The SplitMix64 output mix: a bijective finalizer on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for replication `rep` of an experiment with
/// `master_seed`.
///
/// ```rust
/// let a = mpvsim_des::seed::derive_seed(42, 0);
/// let b = mpvsim_des::seed::derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, mpvsim_des::seed::derive_seed(42, 0));
/// ```
pub fn derive_seed(master_seed: u64, rep: u64) -> u64 {
    // Mix twice so (master, rep) and (master + 1, rep - 1)-style collisions
    // in a naive additive combiner cannot occur.
    splitmix64(splitmix64(master_seed).wrapping_add(rep))
}

/// Derives a named sub-stream seed, e.g. to give topology generation a
/// stream independent of the epidemic dynamics within one replication.
///
/// `stream` is a small caller-chosen label (0 = dynamics, 1 = topology, …).
pub fn derive_stream_seed(master_seed: u64, rep: u64, stream: u64) -> u64 {
    splitmix64(derive_seed(master_seed, rep) ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(derive_stream_seed(1, 2, 3), derive_stream_seed(1, 2, 3));
    }

    #[test]
    fn distinct_reps_distinct_seeds() {
        let seeds: HashSet<u64> = (0..10_000).map(|r| derive_seed(0xFEED, r)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn distinct_masters_distinct_seeds() {
        let seeds: HashSet<u64> = (0..10_000).map(|m| derive_seed(m, 0)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn streams_are_independent_of_each_other() {
        let a = derive_stream_seed(7, 0, 0);
        let b = derive_stream_seed(7, 0, 1);
        assert_ne!(a, b);
        // And differ from the plain replication seed.
        assert_ne!(a, derive_seed(7, 0));
    }

    #[test]
    fn no_additive_aliasing() {
        // A naive `master + rep` combiner would collide here.
        assert_ne!(derive_seed(10, 5), derive_seed(11, 4));
        assert_ne!(derive_seed(0, 15), derive_seed(15, 0));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = splitmix64(0x1234_5678);
        let flipped = splitmix64(0x1234_5679);
        let differing = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&differing), "weak avalanche: {differing} bits");
    }
}
