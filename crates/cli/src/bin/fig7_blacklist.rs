//! Deprecated shim: forwards to `mpvsim study fig7_blacklist`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig7_blacklist");
}
