//! The `mpvsim serve` service: scenario specs in, cached or freshly
//! simulated results out.
//!
//! ## Endpoints
//!
//! | method & path | meaning |
//! |---|---|
//! | `POST /v1/runs` | submit an `mpvsim-scenario/1` spec; `?wait=1` blocks until the run resolves |
//! | `GET /v1/runs/{hash}` | state (and, when done, result) of one run |
//! | `GET /v1/runs/{hash}/events` | JSONL progress stream, live while the run executes |
//! | `POST /v1/bounds` | submit an `mpvsim-bounds/1` query; `?wait=1` blocks until it resolves |
//! | `GET /v1/bounds/{hash}` | state (and, when done, the `mpvsim-bounds-report/1`) of one query |
//! | `GET /v1/bounds/{hash}/events` | NDJSON progress stream of the bounds search |
//! | `GET /v1/studies` | the study registry (name, kind, title, cell count) |
//! | `GET /v1/healthz` | liveness, build version, uptime, queue + lifetime job counters |
//! | `GET /v1/metrics` | Prometheus text exposition of the process-global metrics registry |
//!
//! ## Model
//!
//! A submitted spec is parsed through [`ScenarioSpec::from_json`],
//! validated through the same funnel every other entry point uses, and
//! identified by its FNV-1a content hash over the canonical JSON bytes.
//! Each run lives at `<dir>/runs/<hash>/` as a **single-cell sweep
//! store**, so the server inherits the sweep subsystem's guarantees
//! verbatim: the manifest guards against mixing, the atomic cell rename
//! is the completion certificate, and results survive restarts. A repeat
//! submission of the same scenario — byte-identical or merely
//! hash-identical after canonicalization — is answered from the store
//! with a byte-identical body; only the `x-mpvsim-cache` response header
//! distinguishes a hit from a fresh run.
//!
//! Misses are enqueued on a worker pool ([`ServeOptions::workers`]
//! threads); each worker executes runs through [`run_sweep`] with a
//! [`JsonlObserver`] writing `progress.jsonl`, which the events endpoint
//! tails to the client while the run is live.
//!
//! Bounds queries ([`BoundsSpec`], `mpvsim-bounds/1`) follow the same
//! shape: hashed canonically, solved once through
//! [`mpvsim_core::bounds::solve_bounds`] into `<dir>/bounds/<hash>/`,
//! answered from the store's `report.json` verbatim ever after. The
//! solver's own deterministic `progress.jsonl` is what the events
//! endpoint streams.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mpvsim_core::bounds::{solve_bounds, BoundsOptions, BoundsSpec};
use mpvsim_core::figures::FigureOptions;
use mpvsim_core::studies::{registry, StudyKind};
use mpvsim_core::{
    run_sweep, CellResult, ConfigError, EngineOptions, ResultsStore, ScenarioSpec, SweepCell,
    SweepError, SweepOptions, SweepSpec,
};
use mpvsim_des::{JsonlObserver, ObserverHandle};
use mpvsim_obs::log as obslog;
use mpvsim_obs::metrics::{default_latency_buckets, global as metrics_registry};
use mpvsim_obs::{Counter, Gauge};

use crate::http::{write_stream_head, Request, Response};

/// Log target of every event this module emits.
const LOG_TARGET: &str = "mpvsim_serve";

/// Schema tag of run documents (`POST /v1/runs`, `GET /v1/runs/{hash}`).
pub const RUN_SCHEMA: &str = "mpvsim-run/1";
/// Schema tag of structured error documents.
pub const ERROR_SCHEMA: &str = "mpvsim-error/1";
/// Schema tag of the health document. `/2` added `version`,
/// `uptime_secs`, and the lifetime `completed_total`/`failed_total`
/// counters to the `/1` liveness + queue shape.
pub const HEALTH_SCHEMA: &str = "mpvsim-health/2";
/// Schema tag of the study-directory document.
pub const STUDIES_SCHEMA: &str = "mpvsim-studies/1";
/// Schema tag of bounds-query state documents (`POST /v1/bounds`,
/// `GET /v1/bounds/{hash}` while pending). Completed queries answer with
/// the stored `mpvsim-bounds-report/1` document verbatim.
pub const BOUNDS_RUN_SCHEMA: &str = "mpvsim-bounds-run/1";

/// The single cell id inside every run's store.
const RUN_CELL_ID: &str = "cell";

/// Configuration of a [`start`]ed server. The execution knobs mirror
/// `mpvsim sweep run`: nothing here changes a bit of the simulated
/// trajectories, which belong to the submitted specs alone.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Results directory; each run lives in `<dir>/runs/<hash>/` as a
    /// single-cell sweep store.
    pub dir: PathBuf,
    /// Simulation worker threads draining the run queue.
    pub workers: usize,
    /// Engine knobs for every run's replication batch (FEL backend,
    /// layout, probe, threads *within* the run); see [`EngineOptions`].
    pub engine: EngineOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            dir: PathBuf::from("serve-out"),
            workers: 2,
            engine: EngineOptions::default(),
        }
    }
}

/// In-memory state of a run this process has accepted. Completed runs
/// are *absent*: their record is the store on disk, which is what makes
/// restarts and cache hits equivalent.
#[derive(Debug, Clone)]
enum RunState {
    Queued,
    Running,
    Failed(String),
}

/// What a worker executes. The `key` is the run-table entry the job
/// resolves (`<hash>` for scenario runs, `bounds/<hash>` for bounds
/// queries — the namespaces are distinct because the stores are).
struct QueuedRun {
    key: String,
    job: Job,
}

enum Job {
    Run { hash: String, spec: ScenarioSpec },
    Bounds { spec: BoundsSpec },
}

/// The run-table key of a bounds query.
fn bounds_key(hash: &str) -> String {
    format!("bounds/{hash}")
}

struct Inner {
    opts: ServeOptions,
    runs: Mutex<HashMap<String, RunState>>,
    runs_changed: Condvar,
    queue: Mutex<VecDeque<QueuedRun>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    /// When the server started, for the healthz uptime report.
    started: Instant,
    /// Lifetime jobs resolved successfully / unsuccessfully. These back
    /// the healthz counters directly (they must stay correct even when
    /// metrics recording is disabled), and mirror into the registry.
    completed_total: AtomicU64,
    failed_total: AtomicU64,
}

/// Registry handles this module records on. Looked up once; recording
/// afterwards is a relaxed atomic op per event.
struct ServeMetrics {
    queue_depth: Gauge,
    workers_busy: Gauge,
    accept_errors: Counter,
    worker_panics: Counter,
    jobs_completed_runs: Counter,
    jobs_completed_bounds: Counter,
    jobs_failed_runs: Counter,
    jobs_failed_bounds: Counter,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = metrics_registry();
        let completed = "Jobs resolved successfully since process start";
        let failed = "Jobs resolved with an error since process start";
        ServeMetrics {
            queue_depth: reg
                .gauge("mpvsim_serve_queue_depth", "Jobs waiting for a simulation worker"),
            workers_busy: reg
                .gauge("mpvsim_serve_workers_busy", "Simulation workers currently executing a job"),
            accept_errors: reg
                .counter("mpvsim_serve_accept_errors_total", "Listener accept calls that failed"),
            worker_panics: reg
                .counter("mpvsim_serve_worker_panics_total", "Jobs that panicked in a worker"),
            jobs_completed_runs: reg.counter_with(
                "mpvsim_serve_jobs_completed_total",
                completed,
                &[("kind", "run")],
            ),
            jobs_completed_bounds: reg.counter_with(
                "mpvsim_serve_jobs_completed_total",
                completed,
                &[("kind", "bounds")],
            ),
            jobs_failed_runs: reg.counter_with(
                "mpvsim_serve_jobs_failed_total",
                failed,
                &[("kind", "run")],
            ),
            jobs_failed_bounds: reg.counter_with(
                "mpvsim_serve_jobs_failed_total",
                failed,
                &[("kind", "bounds")],
            ),
        }
    })
}

/// A running server: its bound address plus the accept and worker
/// threads.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (i.e. forever, in the CLI).
    pub fn join(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// Stops accepting connections, drains no further queue entries, and
    /// joins every thread. A run already executing finishes first.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_ready.notify_all();
        self.inner.runs_changed.notify_all();
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// the service: one accept loop, [`ServeOptions::workers`] simulation
/// workers, and one short-lived thread per connection.
///
/// # Errors
///
/// Returns the underlying error when the address cannot be bound or the
/// results directory cannot be created.
pub fn start(addr: &str, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    fs::create_dir_all(opts.dir.join("runs"))?;
    fs::create_dir_all(bounds_root(&opts.dir))?;
    let workers = opts.workers.max(1);
    let inner = Arc::new(Inner {
        opts,
        runs: Mutex::new(HashMap::new()),
        runs_changed: Condvar::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        completed_total: AtomicU64::new(0),
        failed_total: AtomicU64::new(0),
    });
    serve_metrics(); // register the serve metric families up front
    obslog::info(
        LOG_TARGET,
        "listening",
        &[
            ("addr", addr.to_string().into()),
            ("workers", workers.into()),
            ("dir", inner.opts.dir.display().to_string().into()),
        ],
    );
    let mut threads = Vec::new();
    for _ in 0..workers {
        let inner = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || worker_loop(&inner)));
    }
    {
        let inner = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &inner)));
    }
    Ok(ServerHandle { addr, inner, threads })
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                serve_metrics().accept_errors.inc();
                obslog::error(LOG_TARGET, "accept failed", &[("error", e.to_string().into())]);
                continue;
            }
        };
        let inner = Arc::clone(inner);
        // Connection handlers are detached: each is short-lived except an
        // events stream, which ends when its run resolves or its client
        // hangs up.
        std::thread::spawn(move || {
            let _ = serve_connection(&inner, stream);
        });
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue poisoned");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    serve_metrics().queue_depth.set(queue.len() as i64);
                    break job;
                }
                queue = inner.queue_ready.wait(queue).expect("queue poisoned");
            }
        };
        set_state(inner, &job.key, RunState::Running);
        let metrics = serve_metrics();
        metrics.workers_busy.inc();
        let span = obslog::Span::start(LOG_TARGET, "job").field("key", job.key.as_str());
        // A panicking job must not take its worker thread (and, through a
        // poisoned queue lock, the whole pool) down with it: unwind here,
        // record the run as failed, and keep draining the queue.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &job.job {
            Job::Run { hash, spec } => execute_run(&inner.opts, hash, spec),
            Job::Bounds { spec } => execute_bounds(&inner.opts, spec),
        }))
        .unwrap_or_else(|panic| {
            let message = panic_message(&panic);
            metrics.worker_panics.inc();
            obslog::error(
                LOG_TARGET,
                "worker panicked",
                &[("key", job.key.as_str().into()), ("panic", message.as_str().into())],
            );
            Err(format!("worker panicked: {message}"))
        });
        metrics.workers_busy.dec();
        let (completed_counter, failed_counter) = match &job.job {
            Job::Run { .. } => (&metrics.jobs_completed_runs, &metrics.jobs_failed_runs),
            Job::Bounds { .. } => (&metrics.jobs_completed_bounds, &metrics.jobs_failed_bounds),
        };
        let mut runs = inner.runs.lock().expect("run table poisoned");
        match outcome {
            // The store is the completed run's record; forgetting it here
            // is what makes restarts and cache hits equivalent.
            Ok(()) => {
                runs.remove(&job.key);
                inner.completed_total.fetch_add(1, Ordering::Relaxed);
                completed_counter.inc();
                span.field("outcome", "ok").finish();
            }
            Err(message) => {
                obslog::error(
                    LOG_TARGET,
                    "job failed",
                    &[("key", job.key.as_str().into()), ("error", message.as_str().into())],
                );
                runs.insert(job.key.clone(), RunState::Failed(message));
                inner.failed_total.fetch_add(1, Ordering::Relaxed);
                failed_counter.inc();
                span.field("outcome", "failed").finish();
            }
        }
        drop(runs);
        inner.runs_changed.notify_all();
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn set_state(inner: &Inner, hash: &str, state: RunState) {
    inner.runs.lock().expect("run table poisoned").insert(hash.to_owned(), state);
    inner.runs_changed.notify_all();
}

fn run_dir(dir: &Path, hash: &str) -> PathBuf {
    dir.join("runs").join(hash)
}

/// A submitted spec as a one-cell sweep, so each run's store reuses the
/// sweep machinery verbatim: manifest guard, atomic cell rename as the
/// completion certificate, byte-identical re-reads.
fn single_run_sweep(spec: &ScenarioSpec) -> Result<SweepSpec, SweepError> {
    SweepSpec::new(
        spec.content_hash(),
        spec.reps,
        spec.master_seed,
        vec![SweepCell { id: RUN_CELL_ID.to_owned(), spec: spec.clone() }],
    )
}

fn execute_run(opts: &ServeOptions, hash: &str, spec: &ScenarioSpec) -> Result<(), String> {
    let dir = run_dir(&opts.dir, hash);
    fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    // Progress stream: one JSONL line per replication, served live by
    // `GET /v1/runs/{hash}/events`. Telemetry must never fail a run, so
    // an uncreatable progress file degrades to no observer.
    let observer = match JsonlObserver::create(dir.join("progress.jsonl")) {
        Ok(jsonl) => ObserverHandle::new(jsonl),
        Err(_) => ObserverHandle::noop(),
    };
    let sweep = single_run_sweep(spec).map_err(|e| e.to_string())?;
    let sweep_opts = SweepOptions {
        cell_workers: 1,
        engine: EngineOptions { threads: opts.engine.threads.max(1), ..opts.engine },
        max_cells: None,
        observer,
    };
    run_sweep(&sweep, &dir, &sweep_opts).map(|_| ()).map_err(|e| e.to_string())
}

/// The root of the bounds store (each query in `<dir>/bounds/<hash>/`).
fn bounds_root(dir: &Path) -> PathBuf {
    dir.join("bounds")
}

fn execute_bounds(opts: &ServeOptions, spec: &BoundsSpec) -> Result<(), String> {
    let root = bounds_root(&opts.dir);
    fs::create_dir_all(&root).map_err(|e| format!("creating {}: {e}", root.display()))?;
    let bounds_opts = BoundsOptions {
        engine: EngineOptions { threads: opts.engine.threads.max(1), ..opts.engine },
    };
    // Progress lands in the store's own deterministic progress.jsonl,
    // which is what the events endpoint tails — no observer needed.
    solve_bounds(spec, &root, &bounds_opts, |_| {}).map(|_| ()).map_err(|e| e.to_string())
}

/// The completed report of a bounds query, verbatim from the store —
/// which is exactly why fresh answers and cache hits are byte-identical.
fn bounds_report_bytes(opts: &ServeOptions, hash: &str) -> Option<Vec<u8>> {
    fs::read(bounds_root(&opts.dir).join(hash).join("report.json")).ok()
}

/// Whether the stored manifest under `hash` holds exactly `spec`.
/// `None` when no manifest exists yet.
fn bounds_manifest_matches(opts: &ServeOptions, hash: &str, spec: &BoundsSpec) -> Option<bool> {
    let bytes = fs::read(bounds_root(&opts.dir).join(hash).join("manifest.json")).ok()?;
    Some(bytes == spec.canonical_json())
}

/// Loads a completed run back from its store: the spec as recorded in
/// the manifest plus the cell's aggregate.
fn load_done(opts: &ServeOptions, hash: &str) -> Option<(ScenarioSpec, CellResult)> {
    let dir = run_dir(&opts.dir, hash);
    let (store, sweep) = ResultsStore::open(&dir).ok()?;
    let cell = sweep.cells.first()?;
    if !store.is_complete(&cell.id) {
        return None;
    }
    let result = store.load_cell(cell).ok()?;
    Some((cell.spec.clone(), result))
}

#[derive(serde::Serialize)]
struct RunDoc {
    schema: &'static str,
    hash: String,
    state: &'static str,
    #[serde(skip_serializing_if = "Option::is_none")]
    spec: Option<ScenarioSpec>,
    #[serde(skip_serializing_if = "Option::is_none")]
    result: Option<CellResult>,
    #[serde(skip_serializing_if = "Option::is_none")]
    error: Option<String>,
}

fn run_doc(hash: &str, state: &'static str) -> RunDoc {
    RunDoc {
        schema: RUN_SCHEMA,
        hash: hash.to_owned(),
        state,
        spec: None,
        result: None,
        error: None,
    }
}

/// The canonical body of a completed run. Built from the store alone, so
/// a fresh run and every later cache hit serialize byte-identically.
fn done_document(opts: &ServeOptions, hash: &str) -> Option<Vec<u8>> {
    let (spec, result) = load_done(opts, hash)?;
    let doc = RunDoc { spec: Some(spec), result: Some(result), ..run_doc(hash, "done") };
    Some(serde_json::to_vec(&doc).expect("run document serializes"))
}

fn state_body(hash: &str, state: &'static str, error: Option<String>) -> Vec<u8> {
    let doc = RunDoc { error, ..run_doc(hash, state) };
    serde_json::to_vec(&doc).expect("run document serializes")
}

#[derive(serde::Serialize)]
struct ErrorDoc<'a> {
    schema: &'static str,
    error: &'a ConfigError,
}

fn error_response(status: u16, error: &ConfigError) -> Response {
    let body = serde_json::to_vec(&ErrorDoc { schema: ERROR_SCHEMA, error })
        .expect("error document serializes");
    Response::json(status, body)
}

/// Run hashes are exactly 16 hex digits ([`ScenarioSpec::content_hash`]);
/// rejecting anything else up front keeps run ids path-safe.
fn safe_hash(hash: &str) -> bool {
    hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit())
}

/// The client's `x-request-id` when it is sane (printable ASCII, ≤ 64
/// bytes), else a fresh process-unique id. Echoed on every response and
/// stamped on the access-log line.
fn request_id(request: &Request) -> String {
    if let Some(id) = request.header("x-request-id") {
        if !id.is_empty() && id.len() <= 64 && id.bytes().all(|b| b.is_ascii_graphic()) {
            return id.to_owned();
        }
    }
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!("req-{}-{:06}", std::process::id(), NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Records the per-endpoint request counter, latency histogram, cache
/// hit/miss counter, and the access-log line for one handled request.
fn finish_request(
    endpoint: &str,
    method: &str,
    path: &str,
    status: u16,
    elapsed: Duration,
    request_id: &str,
    cache: Option<&str>,
) {
    let reg = metrics_registry();
    reg.counter_with(
        "mpvsim_http_requests_total",
        "HTTP requests handled",
        &[("endpoint", endpoint), ("method", method), ("status", &status.to_string())],
    )
    .inc();
    reg.histogram_with(
        "mpvsim_http_request_seconds",
        "Wall-clock time from request parse to response written",
        &[("endpoint", endpoint)],
        &default_latency_buckets(),
    )
    .observe_duration(elapsed);
    if let Some(result) = cache {
        reg.counter_with(
            "mpvsim_serve_cache_total",
            "Submissions answered from the results store (hit) vs freshly enqueued (miss)",
            &[("endpoint", endpoint), ("result", result)],
        )
        .inc();
    }
    let mut fields: Vec<(&str, obslog::FieldValue)> = vec![
        ("method", method.into()),
        ("path", path.into()),
        ("status", u64::from(status).into()),
        ("duration_ms", (elapsed.as_secs_f64() * 1e3).into()),
        ("request_id", request_id.into()),
    ];
    if let Some(result) = cache {
        fields.push(("cache", result.into()));
    }
    obslog::info(LOG_TARGET, "request", &fields);
}

/// How a route was completed: a buffered response still to be written,
/// or a stream that already wrote its own head and body (reporting the
/// status it sent).
enum Handled {
    Full(Response),
    Streamed(std::io::Result<u16>),
}

fn serve_connection(inner: &Arc<Inner>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let started = Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match Request::read(&mut reader) {
        Ok(request) => request,
        Err(reason) => {
            let response = error_response(400, &ConfigError::malformed(reason));
            let result = response.write(&mut stream);
            finish_request("malformed", "-", "-", 400, started.elapsed(), "-", None);
            return result;
        }
    };
    let id = request_id(&request);
    let path = request.path.trim_matches('/').to_owned();
    let segments: Vec<&str> = path.split('/').collect();
    let (endpoint, handled) = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => ("healthz", Handled::Full(health(inner))),
        ("GET", ["v1", "metrics"]) => ("metrics", Handled::Full(metrics_response())),
        ("GET", ["v1", "studies"]) => ("studies", Handled::Full(studies_response())),
        ("POST", ["v1", "runs"]) => ("runs_post", Handled::Full(post_run(inner, &request))),
        ("GET", ["v1", "runs", hash]) => ("runs_get", Handled::Full(get_run(inner, hash))),
        ("GET", ["v1", "runs", hash, "events"]) => {
            ("runs_events", Handled::Streamed(stream_events(inner, hash, &mut stream, &id)))
        }
        ("POST", ["v1", "bounds"]) => ("bounds_post", Handled::Full(post_bounds(inner, &request))),
        ("GET", ["v1", "bounds", hash]) => ("bounds_get", Handled::Full(get_bounds(inner, hash))),
        ("GET", ["v1", "bounds", hash, "events"]) => (
            "bounds_events",
            Handled::Streamed(stream_bounds_events(inner, hash, &mut stream, &id)),
        ),
        (method, ["v1", "healthz" | "metrics" | "studies"] | ["v1", "runs" | "bounds", ..]) => {
            let error = ConfigError::invalid("method", format!("{method} not allowed here"));
            ("method_not_allowed", Handled::Full(error_response(405, &error)))
        }
        _ => {
            let error = ConfigError::invalid("path", format!("no route for {:?}", request.path));
            ("unrouted", Handled::Full(error_response(404, &error)))
        }
    };
    match handled {
        Handled::Full(response) => {
            let response = response.header("x-request-id", id.clone());
            let status = response.status;
            let cache = response
                .headers
                .iter()
                .find(|(name, _)| *name == "x-mpvsim-cache")
                .map(|(_, value)| value.clone());
            let result = response.write(&mut stream);
            finish_request(
                endpoint,
                &request.method,
                &request.path,
                status,
                started.elapsed(),
                &id,
                cache.as_deref(),
            );
            result
        }
        Handled::Streamed(result) => {
            let status = *result.as_ref().unwrap_or(&0);
            finish_request(
                endpoint,
                &request.method,
                &request.path,
                status,
                started.elapsed(),
                &id,
                None,
            );
            result.map(|_| ())
        }
    }
}

/// `GET /v1/metrics`: the Prometheus text-format 0.0.4 exposition of the
/// process-global registry.
fn metrics_response() -> Response {
    let body = metrics_registry().render_prometheus().into_bytes();
    Response::text(200, "text/plain; version=0.0.4; charset=utf-8", body)
}

fn health(inner: &Inner) -> Response {
    #[derive(serde::Serialize)]
    struct HealthDoc {
        schema: &'static str,
        status: &'static str,
        version: &'static str,
        uptime_secs: u64,
        queued: usize,
        running: usize,
        failed: usize,
        completed_total: u64,
        failed_total: u64,
    }
    let runs = inner.runs.lock().expect("run table poisoned");
    let count = |want: fn(&RunState) -> bool| runs.values().filter(|state| want(state)).count();
    let doc = HealthDoc {
        schema: HEALTH_SCHEMA,
        status: "ok",
        version: env!("CARGO_PKG_VERSION"),
        uptime_secs: inner.started.elapsed().as_secs(),
        queued: count(|s| matches!(s, RunState::Queued)),
        running: count(|s| matches!(s, RunState::Running)),
        failed: count(|s| matches!(s, RunState::Failed(_))),
        completed_total: inner.completed_total.load(Ordering::Relaxed),
        failed_total: inner.failed_total.load(Ordering::Relaxed),
    };
    Response::json(200, serde_json::to_vec(&doc).expect("health document serializes"))
}

fn studies_response() -> Response {
    #[derive(serde::Serialize)]
    struct StudyEntry {
        name: &'static str,
        kind: &'static str,
        title: &'static str,
        cells: usize,
    }
    #[derive(serde::Serialize)]
    struct StudiesDoc {
        schema: &'static str,
        studies: Vec<StudyEntry>,
    }
    let opts = FigureOptions::default();
    let studies = registry()
        .iter()
        .map(|info| StudyEntry {
            name: info.name,
            kind: match info.kind {
                StudyKind::Figure => "figure",
                StudyKind::Claim => "claim",
                StudyKind::Extension => "extension",
            },
            title: info.title,
            cells: (info.cells)(&opts).len(),
        })
        .collect();
    let doc = StudiesDoc { schema: STUDIES_SCHEMA, studies };
    Response::json(200, serde_json::to_vec(&doc).expect("studies document serializes"))
}

fn post_run(inner: &Arc<Inner>, request: &Request) -> Response {
    // The validation funnel: exactly the path `mpvsim sweep run` and the
    // study runners take, so the server cannot accept a spec they would
    // reject (or vice versa).
    let spec = match ScenarioSpec::from_json(&request.body) {
        Ok(spec) => spec,
        Err(e) => return error_response(422, &e),
    };
    if let Err(e) = spec.validate() {
        return error_response(422, &e);
    }
    let hash = spec.content_hash();
    if let Some((stored, _)) = load_done(&inner.opts, &hash) {
        if stored != spec {
            let error =
                ConfigError::run(format!("content hash {hash} already maps to a different spec"));
            return error_response(409, &error);
        }
        let body = done_document(&inner.opts, &hash).expect("run loaded a moment ago");
        return Response::json(200, body).header("x-mpvsim-cache", "hit");
    }
    enqueue(inner, &hash, Job::Run { hash: hash.clone(), spec });
    if request.query_flag("wait") {
        return match wait_for(inner, &hash) {
            Ok(()) => match done_document(&inner.opts, &hash) {
                Some(body) => Response::json(200, body).header("x-mpvsim-cache", "miss"),
                None => error_response(500, &ConfigError::run("run finished but left no store")),
            },
            Err(message) => error_response(500, &ConfigError::run(message)),
        };
    }
    Response::json(202, state_document(inner, &hash)).header("x-mpvsim-cache", "miss")
}

fn enqueue(inner: &Inner, key: &str, job: Job) {
    let mut runs = inner.runs.lock().expect("run table poisoned");
    if matches!(runs.get(key), Some(RunState::Queued | RunState::Running)) {
        return;
    }
    // New jobs and retries of failed ones queue alike.
    runs.insert(key.to_owned(), RunState::Queued);
    drop(runs);
    let mut queue = inner.queue.lock().expect("queue poisoned");
    queue.push_back(QueuedRun { key: key.to_owned(), job });
    serve_metrics().queue_depth.set(queue.len() as i64);
    drop(queue);
    inner.queue_ready.notify_one();
    inner.runs_changed.notify_all();
}

fn wait_for(inner: &Inner, hash: &str) -> Result<(), String> {
    let mut runs = inner.runs.lock().expect("run table poisoned");
    loop {
        match runs.get(hash) {
            // Completed and forgotten: the store has it.
            None => return Ok(()),
            Some(RunState::Failed(message)) => return Err(message.clone()),
            Some(RunState::Queued | RunState::Running) => {}
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err("server shutting down".to_owned());
        }
        let (guard, _) = inner
            .runs_changed
            .wait_timeout(runs, Duration::from_millis(200))
            .expect("run table poisoned");
        runs = guard;
    }
}

fn state_document(inner: &Inner, hash: &str) -> Vec<u8> {
    let runs = inner.runs.lock().expect("run table poisoned");
    let state = match runs.get(hash) {
        Some(RunState::Running) => "running",
        Some(RunState::Failed(_)) => "failed",
        _ => "queued",
    };
    state_body(hash, state, None)
}

fn unknown_run(hash: &str) -> Response {
    error_response(404, &ConfigError::invalid("hash", format!("no run {hash:?}")))
}

fn get_run(inner: &Inner, hash: &str) -> Response {
    if !safe_hash(hash) {
        return unknown_run(hash);
    }
    if let Some(body) = done_document(&inner.opts, hash) {
        return Response::json(200, body);
    }
    let runs = inner.runs.lock().expect("run table poisoned");
    match runs.get(hash) {
        Some(RunState::Queued) => Response::json(200, state_body(hash, "queued", None)),
        Some(RunState::Running) => Response::json(200, state_body(hash, "running", None)),
        Some(RunState::Failed(message)) => {
            Response::json(200, state_body(hash, "failed", Some(message.clone())))
        }
        None => unknown_run(hash),
    }
}

/// Streams `progress.jsonl` to the client, tailing it live while the run
/// executes, and terminates with one server-generated
/// `{"type":"run",...}` state line. Returns the HTTP status it wrote.
fn stream_events(
    inner: &Inner,
    hash: &str,
    stream: &mut TcpStream,
    request_id: &str,
) -> std::io::Result<u16> {
    let known = safe_hash(hash)
        && (load_done(&inner.opts, hash).is_some()
            || inner.runs.lock().expect("run table poisoned").contains_key(hash));
    if !known {
        let response = unknown_run(hash).header("x-request-id", request_id.to_owned());
        return response.write(stream).map(|()| response.status);
    }
    write_stream_head(stream, 200, &[("x-request-id", request_id)])?;
    let path = run_dir(&inner.opts.dir, hash).join("progress.jsonl");
    let mut offset = 0_u64;
    loop {
        // Read the run's resolution *before* draining the file: the
        // observer flushes before the cell file is renamed into place,
        // so every line written pre-resolution is visible to the drain
        // below, and nothing is lost between drain and final state line.
        let resolved: Option<&'static str> = if load_done(&inner.opts, hash).is_some() {
            Some("done")
        } else {
            match inner.runs.lock().expect("run table poisoned").get(hash) {
                Some(RunState::Failed(_)) => Some("failed"),
                Some(RunState::Queued | RunState::Running) => None,
                None => Some("done"),
            }
        };
        offset = drain_file(&path, offset, stream)?;
        if let Some(state) = resolved {
            let line = format!("{{\"type\":\"run\",\"hash\":{hash:?},\"state\":{state:?}}}\n");
            stream.write_all(line.as_bytes())?;
            return stream.flush().map(|()| 200);
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return stream.flush().map(|()| 200);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ----------------------------------------------------------- bounds

#[derive(serde::Serialize)]
struct BoundsStateDoc {
    schema: &'static str,
    hash: String,
    state: &'static str,
    #[serde(skip_serializing_if = "Option::is_none")]
    error: Option<String>,
}

fn bounds_state_body(hash: &str, state: &'static str, error: Option<String>) -> Vec<u8> {
    let doc = BoundsStateDoc { schema: BOUNDS_RUN_SCHEMA, hash: hash.to_owned(), state, error };
    serde_json::to_vec(&doc).expect("bounds state document serializes")
}

fn post_bounds(inner: &Arc<Inner>, request: &Request) -> Response {
    // The same validate-then-hash funnel as `mpvsim bounds --spec`.
    let spec = match BoundsSpec::from_json(&request.body) {
        Ok(spec) => spec,
        Err(e) => return error_response(422, &e),
    };
    if let Err(e) = spec.validate() {
        return error_response(422, &e);
    }
    let hash = spec.content_hash();
    if let Some(body) = bounds_report_bytes(&inner.opts, &hash) {
        if bounds_manifest_matches(&inner.opts, &hash, &spec) == Some(false) {
            let error = ConfigError::run(format!(
                "content hash {hash} already maps to a different bounds query"
            ));
            return error_response(409, &error);
        }
        return Response::json(200, body).header("x-mpvsim-cache", "hit");
    }
    let key = bounds_key(&hash);
    enqueue(inner, &key, Job::Bounds { spec });
    if request.query_flag("wait") {
        return match wait_for(inner, &key) {
            Ok(()) => match bounds_report_bytes(&inner.opts, &hash) {
                Some(body) => Response::json(200, body).header("x-mpvsim-cache", "miss"),
                None => error_response(
                    500,
                    &ConfigError::run("bounds query finished but left no report"),
                ),
            },
            Err(message) => error_response(500, &ConfigError::run(message)),
        };
    }
    let state = match inner.runs.lock().expect("run table poisoned").get(&key) {
        Some(RunState::Running) => "running",
        Some(RunState::Failed(_)) => "failed",
        _ => "queued",
    };
    Response::json(202, bounds_state_body(&hash, state, None)).header("x-mpvsim-cache", "miss")
}

fn get_bounds(inner: &Inner, hash: &str) -> Response {
    if !safe_hash(hash) {
        return unknown_run(hash);
    }
    // A completed query answers with the stored report, byte-for-byte.
    if let Some(body) = bounds_report_bytes(&inner.opts, hash) {
        return Response::json(200, body);
    }
    let runs = inner.runs.lock().expect("run table poisoned");
    match runs.get(&bounds_key(hash)) {
        Some(RunState::Queued) => Response::json(200, bounds_state_body(hash, "queued", None)),
        Some(RunState::Running) => Response::json(200, bounds_state_body(hash, "running", None)),
        Some(RunState::Failed(message)) => {
            Response::json(200, bounds_state_body(hash, "failed", Some(message.clone())))
        }
        None => unknown_run(hash),
    }
}

/// Streams the bounds store's deterministic `progress.jsonl` (see
/// [`mpvsim_core::bounds::ProgressEvent`]) to the client, tailing it
/// while the search runs, and terminates with one
/// `{"type":"bounds",...}` state line. Returns the HTTP status it wrote.
fn stream_bounds_events(
    inner: &Inner,
    hash: &str,
    stream: &mut TcpStream,
    request_id: &str,
) -> std::io::Result<u16> {
    let key = bounds_key(hash);
    let known = safe_hash(hash)
        && (bounds_report_bytes(&inner.opts, hash).is_some()
            || inner.runs.lock().expect("run table poisoned").contains_key(&key));
    if !known {
        let response = unknown_run(hash).header("x-request-id", request_id.to_owned());
        return response.write(stream).map(|()| response.status);
    }
    write_stream_head(stream, 200, &[("x-request-id", request_id)])?;
    let path = bounds_root(&inner.opts.dir).join(hash).join("progress.jsonl");
    let mut offset = 0_u64;
    loop {
        // Resolution before drain, as in `stream_events`: the solver
        // appends every progress line before writing report.json.
        let resolved: Option<&'static str> = if bounds_report_bytes(&inner.opts, hash).is_some() {
            Some("done")
        } else {
            match inner.runs.lock().expect("run table poisoned").get(&key) {
                Some(RunState::Failed(_)) => Some("failed"),
                Some(RunState::Queued | RunState::Running) => None,
                None => Some("done"),
            }
        };
        offset = drain_file(&path, offset, stream)?;
        if let Some(state) = resolved {
            let line = format!("{{\"type\":\"bounds\",\"hash\":{hash:?},\"state\":{state:?}}}\n");
            stream.write_all(line.as_bytes())?;
            return stream.flush().map(|()| 200);
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return stream.flush().map(|()| 200);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Copies bytes `offset..` of `path` (if it exists yet) to `out`;
/// returns the new offset.
fn drain_file(path: &Path, offset: u64, out: &mut impl Write) -> std::io::Result<u64> {
    let Ok(mut file) = fs::File::open(path) else { return Ok(offset) };
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    if buf.is_empty() {
        return Ok(offset);
    }
    out.write_all(&buf)?;
    out.flush()?;
    Ok(offset + buf.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_core::{PopulationConfig, ScenarioConfig, VirusProfile};
    use mpvsim_des::{DelaySpec, SimDuration};
    use mpvsim_topology::GraphSpec;

    fn tiny_spec() -> ScenarioSpec {
        let mut config = ScenarioConfig::baseline(VirusProfile::virus3());
        config.population = PopulationConfig {
            topology: GraphSpec::erdos_renyi(40, 6.0),
            vulnerable_fraction: 0.8,
        };
        config.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
        config.horizon = SimDuration::from_hours(4);
        ScenarioSpec::new("unit", config).with_replication(2, 11)
    }

    #[test]
    fn hashes_are_validated_strictly() {
        assert!(safe_hash("0123456789abcdef"));
        assert!(!safe_hash("0123456789abcde"), "too short");
        assert!(!safe_hash("0123456789abcdeg"), "not hex");
        assert!(!safe_hash("../../etc/passwd"), "path traversal");
        assert!(!safe_hash(""));
    }

    #[test]
    fn a_run_is_a_single_cell_sweep_named_by_its_hash() {
        let spec = tiny_spec();
        let sweep = single_run_sweep(&spec).expect("valid one-cell sweep");
        assert_eq!(sweep.name, spec.content_hash());
        assert!(safe_hash(&sweep.name));
        assert_eq!(sweep.cells.len(), 1);
        assert_eq!(sweep.cells[0].id, RUN_CELL_ID);
        assert_eq!(sweep.cells[0].spec, spec, "the stored spec is the submitted spec");
        assert_eq!((sweep.reps, sweep.master_seed), (2, 11));
    }

    #[test]
    fn run_documents_serialize_with_stable_shape() {
        let body = state_body("00000000deadbeef", "queued", None);
        let doc: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(doc["schema"], RUN_SCHEMA);
        assert_eq!(doc["state"], "queued");
        assert_eq!(doc["hash"], "00000000deadbeef");
        assert!(doc.get("result").is_none(), "absent fields are omitted, not null");
        let body = state_body("00000000deadbeef", "failed", Some("boom".to_owned()));
        let doc: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(doc["error"], "boom");
    }

    #[test]
    fn error_documents_carry_the_structured_kind() {
        let response = error_response(422, &ConfigError::invalid("reps", "zero"));
        assert_eq!(response.status, 422);
        let doc: serde_json::Value = serde_json::from_slice(&response.body).unwrap();
        assert_eq!(doc["schema"], ERROR_SCHEMA);
        assert_eq!(doc["error"]["kind"], "invalid");
        assert_eq!(doc["error"]["field"], "reps");
    }
}
