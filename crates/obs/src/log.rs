//! Structured leveled logging: JSONL or human-readable text events with
//! a target, level, message, and typed `key=value` fields, plus span
//! timing.
//!
//! The logger is process-global and writes to stderr by default (tests
//! can redirect it into a buffer). Filtering follows the `MPVSIM_LOG`
//! spec: a comma-separated list of `level` and `target=level`
//! directives, e.g. `info`, `mpvsim_serve=debug,warn`, where the
//! longest matching target prefix wins. Unset means `warn`.
//!
//! Log output never feeds back into simulation state and is never
//! written into stores or golden artifacts, so any level/format
//! combination is trajectory-neutral.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work: accept failures, worker panics.
    Error = 1,
    /// Suspicious but handled.
    Warn = 2,
    /// Request/job lifecycle: access log lines, sweep/bounds milestones.
    Info = 3,
    /// Per-cell / per-replication detail.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as emitted in log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive). `off` parses to `None`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

/// Wire format for emitted lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable single line: `ts level target: msg k=v ...`.
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parse `json` or `text` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.trim().to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" | "jsonl" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// A typed field value attached to a log event.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// String value.
    Str(String),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

enum Sink {
    Stderr,
    Buffer(Arc<Mutex<String>>),
}

struct LoggerInner {
    /// Level for targets with no matching directive; 0 = off.
    default_level: usize,
    /// `(target_prefix, level)` directives; longest matching prefix wins.
    directives: Vec<(String, usize)>,
    format: LogFormat,
    sink: Sink,
}

fn logger() -> &'static Mutex<LoggerInner> {
    static LOGGER: OnceLock<Mutex<LoggerInner>> = OnceLock::new();
    LOGGER.get_or_init(|| {
        Mutex::new(LoggerInner {
            default_level: Level::Warn as usize,
            directives: Vec::new(),
            format: LogFormat::Text,
            sink: Sink::Stderr,
        })
    })
}

/// Fast-reject ceiling: the maximum level any directive allows. A log
/// call above this is dropped with one relaxed load and no lock.
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(Level::Warn as usize);

fn recompute_max(inner: &LoggerInner) {
    let max =
        inner.directives.iter().map(|(_, l)| *l).chain([inner.default_level]).max().unwrap_or(0);
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Configure the logger from the environment: `MPVSIM_LOG` (filter
/// spec, default `warn`) and `MPVSIM_LOG_FORMAT` (`json`/`text`,
/// default `text`). Unparseable values are ignored. Idempotent;
/// explicit `set_*` calls afterwards still win.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("MPVSIM_LOG") {
        set_spec(&spec);
    }
    if let Ok(fmt) = std::env::var("MPVSIM_LOG_FORMAT") {
        if let Some(f) = LogFormat::parse(&fmt) {
            set_format(f);
        }
    }
}

/// Apply a filter spec: comma-separated `level` (sets the default) and
/// `target=level` directives. Unknown fragments are ignored. Examples:
/// `info`, `debug,mpvsim_serve=trace`, `mpvsim_core::sweep=debug`.
pub fn set_spec(spec: &str) {
    let mut inner = logger().lock().expect("logger poisoned");
    inner.directives.clear();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((target, level)) = part.split_once('=') {
            if let Some(level) = Level::parse(level) {
                inner
                    .directives
                    .push((target.trim().to_string(), level.map(|l| l as usize).unwrap_or(0)));
            }
        } else if let Some(level) = Level::parse(part) {
            inner.default_level = level.map(|l| l as usize).unwrap_or(0);
        }
    }
    recompute_max(&inner);
}

/// Set the output format.
pub fn set_format(format: LogFormat) {
    logger().lock().expect("logger poisoned").format = format;
}

/// Set the default level for targets without a directive (`None` = off).
pub fn set_default_level(level: Option<Level>) {
    let mut inner = logger().lock().expect("logger poisoned");
    inner.default_level = level.map(|l| l as usize).unwrap_or(0);
    recompute_max(&inner);
}

/// Redirect output into a shared buffer (for tests). Returns the buffer.
pub fn capture_to_buffer() -> Arc<Mutex<String>> {
    let buf = Arc::new(Mutex::new(String::new()));
    logger().lock().expect("logger poisoned").sink = Sink::Buffer(Arc::clone(&buf));
    buf
}

/// Whether an event at `level` for `target` would be emitted.
pub fn enabled(level: Level, target: &str) -> bool {
    if level as usize > MAX_LEVEL.load(Ordering::Relaxed) {
        return false;
    }
    let inner = logger().lock().expect("logger poisoned");
    level as usize <= effective_level(&inner, target)
}

fn effective_level(inner: &LoggerInner, target: &str) -> usize {
    let mut best: Option<(usize, usize)> = None; // (prefix_len, level)
    for (prefix, lvl) in &inner.directives {
        if target.starts_with(prefix.as_str()) && best.is_none_or(|(len, _)| prefix.len() > len) {
            best = Some((prefix.len(), *lvl));
        }
    }
    best.map(|(_, lvl)| lvl).unwrap_or(inner.default_level)
}

/// Emit one structured event.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    if level as usize > MAX_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let ts_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
    let mut inner = logger().lock().expect("logger poisoned");
    if level as usize > effective_level(&inner, target) {
        return;
    }
    let line = format_event(inner.format, ts_ms, level, target, msg, fields);
    match &mut inner.sink {
        Sink::Stderr => {
            let stderr = std::io::stderr();
            let mut handle = stderr.lock();
            let _ = handle.write_all(line.as_bytes());
        }
        Sink::Buffer(buf) => buf.lock().expect("log buffer poisoned").push_str(&line),
    }
}

/// Emit at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Error, target, msg, fields);
}

/// Emit at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// Emit at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Info, target, msg, fields);
}

/// Emit at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Debug, target, msg, fields);
}

/// Emit at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Trace, target, msg, fields);
}

/// Render one event as a single `\n`-terminated line. Pure — exposed so
/// tests can golden the formats without touching the global sink.
pub fn format_event(
    format: LogFormat,
    ts_ms: u64,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut out = String::new();
    match format {
        LogFormat::Json => {
            out.push_str("{\"ts_ms\":");
            let _ = write!(out, "{ts_ms}");
            out.push_str(",\"level\":\"");
            out.push_str(level.as_str());
            out.push_str("\",\"target\":\"");
            json_escape_into(&mut out, target);
            out.push_str("\",\"msg\":\"");
            json_escape_into(&mut out, msg);
            out.push('"');
            for (k, v) in fields {
                out.push_str(",\"");
                json_escape_into(&mut out, k);
                out.push_str("\":");
                match v {
                    FieldValue::Str(s) => {
                        out.push('"');
                        json_escape_into(&mut out, s);
                        out.push('"');
                    }
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::F64(f) => {
                        if f.is_finite() {
                            let _ = write!(out, "{f}");
                        } else {
                            let _ = write!(out, "\"{f}\"");
                        }
                    }
                    FieldValue::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                }
            }
            out.push_str("}\n");
        }
        LogFormat::Text => {
            let _ = write!(out, "[{ts_ms} {} {target}] {msg}", level.as_str());
            for (k, v) in fields {
                match v {
                    FieldValue::Str(s) => {
                        if s.chars().any(|c| c.is_whitespace() || c == '"') {
                            let _ = write!(out, " {k}={s:?}");
                        } else {
                            let _ = write!(out, " {k}={s}");
                        }
                    }
                    FieldValue::U64(n) => {
                        let _ = write!(out, " {k}={n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(out, " {k}={n}");
                    }
                    FieldValue::F64(f) => {
                        let _ = write!(out, " {k}={f}");
                    }
                    FieldValue::Bool(b) => {
                        let _ = write!(out, " {k}={b}");
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A timed scope. Build with [`Span::start`], attach fields, and call
/// [`Span::finish`] to emit one event carrying a `duration_ms` field.
/// Dropping a span without finishing it emits nothing.
pub struct Span {
    level: Level,
    target: String,
    name: String,
    start: Instant,
    fields: Vec<(String, FieldValue)>,
}

impl Span {
    /// Start a span; emits at [`Level::Debug`] unless overridden.
    pub fn start(target: &str, name: &str) -> Span {
        Span {
            level: Level::Debug,
            target: target.to_string(),
            name: name.to_string(),
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Override the emit level.
    pub fn level(mut self, level: Level) -> Span {
        self.level = level;
        self
    }

    /// Attach a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Span {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Attach a field to a span in place.
    pub fn add_field(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Emit the span event with its `duration_ms` field.
    pub fn finish(self) {
        let duration_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let mut fields: Vec<(&str, FieldValue)> =
            self.fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        fields.push(("duration_ms", FieldValue::F64(duration_ms)));
        log(self.level, &self.target, &self.name, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("INFO"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn format_parsing() {
        assert_eq!(LogFormat::parse("JSON"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("xml"), None);
    }

    #[test]
    fn json_event_golden() {
        let line = format_event(
            LogFormat::Json,
            1700000000123,
            Level::Info,
            "mpvsim_serve",
            "request",
            &[
                ("method", "POST".into()),
                ("path", "/v1/runs".into()),
                ("status", 200u64.into()),
                ("duration_ms", 1.5.into()),
                ("cache_hit", true.into()),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1700000000123,\"level\":\"info\",\"target\":\"mpvsim_serve\",\
             \"msg\":\"request\",\"method\":\"POST\",\"path\":\"/v1/runs\",\"status\":200,\
             \"duration_ms\":1.5,\"cache_hit\":true}\n"
        );
    }

    #[test]
    fn json_escaping() {
        let line = format_event(
            LogFormat::Json,
            0,
            Level::Error,
            "t",
            "quote \" slash \\ newline \n ctl \u{1}",
            &[],
        );
        assert!(line.contains("quote \\\" slash \\\\ newline \\n ctl \\u0001"));
        // The payload must itself be one line.
        assert_eq!(line.matches('\n').count(), 1);
    }

    #[test]
    fn text_event_golden() {
        let line = format_event(
            LogFormat::Text,
            42,
            Level::Warn,
            "mpvsim_core::sweep",
            "cell failed",
            &[("cell", "fig1/0".into()), ("note", "has space".into()), ("attempt", 2u64.into())],
        );
        assert_eq!(
            line,
            "[42 warn mpvsim_core::sweep] cell failed cell=fig1/0 note=\"has space\" attempt=2\n"
        );
    }

    #[test]
    fn directive_prefix_matching() {
        let inner = LoggerInner {
            default_level: Level::Warn as usize,
            directives: vec![
                ("mpvsim_serve".to_string(), Level::Debug as usize),
                ("mpvsim_core::sweep".to_string(), Level::Trace as usize),
                ("mpvsim_core".to_string(), 0),
            ],
            format: LogFormat::Text,
            sink: Sink::Stderr,
        };
        // Longest prefix wins over the shorter `mpvsim_core` off-switch.
        assert_eq!(effective_level(&inner, "mpvsim_core::sweep"), Level::Trace as usize);
        assert_eq!(effective_level(&inner, "mpvsim_core::bounds"), 0);
        assert_eq!(effective_level(&inner, "mpvsim_serve"), Level::Debug as usize);
        assert_eq!(effective_level(&inner, "other"), Level::Warn as usize);
    }

    /// One test owns the global logger (capture + spec + format) so
    /// parallel test threads never contend over the shared sink.
    #[test]
    fn global_logger_end_to_end() {
        let buf = capture_to_buffer();
        set_spec("info,quiet_target=off");
        set_format(LogFormat::Json);

        info("any_target", "hello", &[("n", 1u64.into())]);
        debug("any_target", "dropped: below default", &[]);
        error("quiet_target", "dropped: target off", &[]);
        assert!(!enabled(Level::Debug, "any_target"));
        assert!(enabled(Level::Info, "any_target"));
        assert!(!enabled(Level::Error, "quiet_target"));

        let span = Span::start("any_target", "work").level(Level::Info).field("k", "v");
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.finish();

        set_format(LogFormat::Text);
        warn("any_target", "textual", &[("q", "quoted str".into())]);

        let text = buf.lock().unwrap().clone();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "unexpected lines: {lines:?}");
        assert!(lines[0].contains("\"msg\":\"hello\"") && lines[0].contains("\"n\":1"));
        assert!(lines[1].contains("\"msg\":\"work\"") && lines[1].contains("\"duration_ms\":"));
        // The span slept 2ms, so duration_ms must be >= 2.
        let dur: f64 = lines[1]
            .split("\"duration_ms\":")
            .nth(1)
            .and_then(|s| s.trim_end_matches('}').parse().ok())
            .unwrap();
        assert!(dur >= 2.0, "span duration {dur} < sleep");
        assert!(lines[2].contains("warn any_target] textual q=\"quoted str\""));
    }
}
