//! Integration tests for the contact-list file workflow (the paper's
//! NGCE → file → model pipeline): generate once, persist, reload, and
//! run the same topology across experiments.

use std::io::BufReader;

use mpvsim::prelude::*;
use mpvsim::topology::io::{read_contact_lists, to_contact_list_string, write_contact_lists};
use mpvsim::topology::{analysis, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn generated() -> Graph {
    let mut rng = StdRng::seed_from_u64(99);
    GraphSpec::power_law(300, 20.0).generate(&mut rng).expect("valid spec")
}

#[test]
fn file_roundtrip_through_disk() {
    let g = generated();
    let dir = std::env::temp_dir().join("mpvsim-topology-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("contacts.txt");

    let file = std::fs::File::create(&path).unwrap();
    write_contact_lists(&g, std::io::BufWriter::new(file)).unwrap();

    let file = std::fs::File::open(&path).unwrap();
    let back = read_contact_lists(BufReader::new(file)).unwrap();

    assert_eq!(back.node_count(), g.node_count());
    assert_eq!(back.edge_count(), g.edge_count());
    assert!(back.validate().is_ok());
    let a = analysis::degree_stats(&g);
    let b = analysis::degree_stats(&back);
    assert_eq!(a.mean, b.mean);
    assert_eq!(a.max, b.max);
}

#[test]
fn persisted_topology_is_experiment_reusable() {
    // The file format preserves everything the epidemic model consumes:
    // running on the original and the reloaded graph must agree exactly.
    let g = generated();
    let back = read_contact_lists(to_contact_list_string(&g).as_bytes()).unwrap();

    // Compare neighbourhood sets node by node (order may differ).
    for v in g.nodes() {
        let mut orig: Vec<NodeId> = g.neighbors(v).to_vec();
        let mut copy: Vec<NodeId> = back.neighbors(v).to_vec();
        orig.sort_unstable();
        copy.sort_unstable();
        assert_eq!(orig, copy, "neighbourhood of {v} changed across persistence");
    }
}

#[test]
fn hand_written_topology_drives_a_scenario() {
    // A hand-authored 4-phone chain: the virus can only walk it in order.
    let text = "# nodes: 4\n0: 1\n1: 0 2\n2: 1 3\n3: 2\n";
    let g = read_contact_lists(text.as_bytes()).unwrap();
    assert_eq!(g.edge_count(), 3);
    assert_eq!(analysis::component_sizes(&g), vec![4]);

    // The Graph type slots straight into a scenario via GraphSpec-free
    // population construction — exercised here through the public
    // Population API.
    let mut rng = StdRng::seed_from_u64(1);
    let pop = Population::from_graph(&g, 1.0, &mut rng);
    assert_eq!(pop.len(), 4);
    assert_eq!(pop.contacts(PhoneId(1)).len(), 2);
    assert_eq!(pop.degree(PhoneId(1)), 2);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any graph — including ones with isolated nodes and none of the
    /// generators' structure — survives the contact-list file format
    /// bit-for-bit: same node count, same edge count, same neighbourhoods.
    #[test]
    fn prop_contact_list_roundtrip_preserves_any_graph(
        n in 2usize..40,
        raw_edges in proptest::collection::vec((0usize..1000, 0usize..1000), 0..120),
    ) {
        let mut g = Graph::with_nodes(n);
        let mut inserted = Vec::new();
        for (a, b) in raw_edges {
            let (a, b) = (NodeId(a % n), NodeId(b % n));
            if g.add_edge(a, b) {
                inserted.push((a.min(b), a.max(b)));
                // Re-adding an existing edge (either orientation) is
                // rejected and must not inflate the edge count.
                prop_assert!(!g.add_edge(a, b), "duplicate edge accepted");
                prop_assert!(!g.add_edge(b, a), "reversed duplicate accepted");
            }
        }
        prop_assert_eq!(g.edge_count(), inserted.len());

        let back = read_contact_lists(to_contact_list_string(&g).as_bytes())
            .expect("round-trip of a valid graph");
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            let mut orig: Vec<NodeId> = g.neighbors(v).to_vec();
            let mut copy: Vec<NodeId> = back.neighbors(v).to_vec();
            orig.sort_unstable();
            copy.sort_unstable();
            prop_assert_eq!(orig, copy, "neighbourhood of {} changed", v);
        }
    }
}

#[test]
fn isolated_nodes_survive_the_roundtrip() {
    // A graph whose last and first nodes have no contacts at all: the
    // header's node count — not the per-line ids — must define the size.
    let mut g = Graph::with_nodes(5);
    assert!(g.add_edge(NodeId(1), NodeId(2)));
    assert!(g.add_edge(NodeId(2), NodeId(3)));
    let back = read_contact_lists(to_contact_list_string(&g).as_bytes()).unwrap();
    assert_eq!(back.node_count(), 5);
    assert_eq!(back.edge_count(), 2);
    assert!(back.neighbors(NodeId(0)).is_empty());
    assert!(back.neighbors(NodeId(4)).is_empty());
}

#[test]
fn corrupted_files_are_rejected_not_miscounted() {
    for (case, text) in [
        ("truncated reciprocity", "# nodes: 3\n0: 1 2\n1: 0\n"),
        ("self-loop", "# nodes: 2\n0: 0 1\n1: 0\n"),
        ("dangling id", "# nodes: 2\n0: 9\n9: 0\n"),
        ("garbage line", "# nodes: 2\n0 1\n"),
    ] {
        assert!(
            read_contact_lists(text.as_bytes()).is_err(),
            "{case}: corrupted file was accepted"
        );
    }
}
