//! The provider's MMS gateway bookkeeping.
//!
//! All MMS traffic transits the provider's gateways, which gives the
//! provider three observation channels the response mechanisms build on:
//!
//! 1. **Total infected messages observed** — drives the "virus reaches a
//!    detectable level" clock that starts signature-scan, detection-
//!    algorithm and patch-development timers.
//! 2. **Per-phone outgoing volume over a sliding window** — the
//!    monitoring mechanism's anomaly signal ("a count of the number of
//!    MMS messages sent from a particular phone during a period of time").
//! 3. **Per-phone cumulative suspected-infected count** — the blacklist
//!    trigger. Invalid random dials (Virus 3) still count: the gateway
//!    sees the send attempt even though no phone receives it.
//!
//! # Ring-slab windows
//!
//! The sliding windows live in one flat slab: `ring_capacity` timestamp
//! slots per phone in a single `Vec<u64>`, addressed as bounded ring
//! buffers by per-phone `head`/`len` arrays — no per-phone `VecDeque`
//! allocations. A full ring evicts its oldest entry, so the reported
//! window count is `min(true count, ring_capacity)`. The monitoring
//! mechanism only ever asks "is the count **greater than** the
//! threshold?", so any capacity of at least `threshold + 1` makes the
//! clamped count decide that predicate exactly; throttling is permanent,
//! so nothing downstream sees the clamp either.

use mpvsim_des::{SimDuration, SimTime};

use crate::arena::BufferPool;
use crate::phone::PhoneId;

/// Ring slots per phone when no explicit capacity is given — far above
/// any threshold the paper's monitoring mechanism uses.
const DEFAULT_RING_CAPACITY: u32 = 64;

/// Gateway-side counters for a population of phones.
#[derive(Debug, Clone)]
pub struct Gateway {
    monitor_window: SimDuration,
    /// Timestamp slots per phone; 0 disables window tracking entirely.
    ring_capacity: u32,
    /// Send timestamps in whole seconds, `ring_capacity` slots per phone.
    times: Vec<u64>,
    /// Ring start index per phone.
    head: Vec<u32>,
    /// Live entries per phone.
    len: Vec<u32>,
    suspected: Vec<u32>,
    infected_observed: u64,
}

impl Gateway {
    /// Creates gateway state for `population_size` phones with the given
    /// monitoring window and a default ring capacity.
    pub fn new(population_size: usize, monitor_window: SimDuration) -> Self {
        Self::with_capacity(population_size, monitor_window, DEFAULT_RING_CAPACITY)
    }

    /// Creates gateway state with `ring_capacity` window slots per phone.
    ///
    /// Pass the monitoring threshold + 1 when monitoring is enabled (the
    /// clamped count then decides `count > threshold` exactly), or 0 when
    /// no mechanism reads the window (no slab is allocated at all).
    pub fn with_capacity(
        population_size: usize,
        monitor_window: SimDuration,
        ring_capacity: u32,
    ) -> Self {
        Gateway {
            monitor_window,
            ring_capacity,
            times: vec![0; population_size * ring_capacity as usize],
            head: vec![0; population_size],
            len: vec![0; population_size],
            suspected: vec![0; population_size],
            infected_observed: 0,
        }
    }

    /// Like [`Gateway::with_capacity`], taking the slab arrays from `pool`.
    pub fn with_capacity_pooled(
        population_size: usize,
        monitor_window: SimDuration,
        ring_capacity: u32,
        pool: &mut BufferPool,
    ) -> Self {
        Gateway {
            monitor_window,
            ring_capacity,
            times: pool.take_u64(population_size * ring_capacity as usize, 0),
            head: pool.take_u32(population_size, 0),
            len: pool.take_u32(population_size, 0),
            suspected: pool.take_u32(population_size, 0),
            infected_observed: 0,
        }
    }

    /// Returns the slab arrays to `pool` for the next replication.
    pub fn recycle(self, pool: &mut BufferPool) {
        pool.recycle_u64(self.times);
        pool.recycle_u32(self.head);
        pool.recycle_u32(self.len);
        pool.recycle_u32(self.suspected);
    }

    /// The sliding-window length used for outgoing-volume monitoring.
    pub fn monitor_window(&self) -> SimDuration {
        self.monitor_window
    }

    /// Records one outgoing MMS from `phone` at `now` and returns how many
    /// outgoing messages the window now holds (including this one),
    /// clamped to the ring capacity.
    ///
    /// A multi-recipient MMS counts once: the monitor counts *messages*,
    /// not deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn record_outgoing(&mut self, phone: PhoneId, now: SimTime) -> usize {
        let i = phone.index();
        assert!(i < self.len.len(), "phone out of range: {phone}");
        if self.ring_capacity == 0 {
            return 0;
        }
        if self.len[i] == self.ring_capacity {
            // Full: evict the oldest entry (the reported count saturates).
            self.head[i] = (self.head[i] + 1) % self.ring_capacity;
            self.len[i] -= 1;
        }
        let base = i * self.ring_capacity as usize;
        let tail = (self.head[i] + self.len[i]) % self.ring_capacity;
        self.times[base + tail as usize] = now.as_secs();
        self.len[i] += 1;
        self.prune(i, now);
        self.len[i] as usize
    }

    /// How many outgoing messages from `phone` fall inside the window
    /// ending at `now` (clamped to the ring capacity).
    pub fn outgoing_in_window(&mut self, phone: PhoneId, now: SimTime) -> usize {
        let i = phone.index();
        assert!(i < self.len.len(), "phone out of range: {phone}");
        if self.ring_capacity == 0 {
            return 0;
        }
        self.prune(i, now);
        self.len[i] as usize
    }

    fn prune(&mut self, i: usize, now: SimTime) {
        let cutoff = now.saturating_duration_since(SimTime::ZERO);
        // Entries exactly `window` old are still inside the closed window;
        // whole-second comparison is exact because the boundary is a whole
        // second and `t < boundary` ⟺ `t.as_secs() < boundary` for any t.
        let earliest_kept = if cutoff.as_secs() > self.monitor_window.as_secs() {
            now.as_secs() - self.monitor_window.as_secs()
        } else {
            0
        };
        let base = i * self.ring_capacity as usize;
        while self.len[i] > 0 && self.times[base + self.head[i] as usize] < earliest_kept {
            self.head[i] = (self.head[i] + 1) % self.ring_capacity;
            self.len[i] -= 1;
        }
    }

    /// Records one suspected-infected message from `phone` (the provider's
    /// heuristic flagged it) and returns the new cumulative total.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn record_suspected(&mut self, phone: PhoneId) -> u32 {
        let c = &mut self.suspected[phone.index()];
        *c += 1;
        *c
    }

    /// Cumulative suspected-infected count for `phone`.
    pub fn suspected_count(&self, phone: PhoneId) -> u32 {
        self.suspected[phone.index()]
    }

    /// Resident bytes of the per-phone arrays (timestamp rings, ring
    /// cursors, suspicion counters).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self.times.as_slice())
            + std::mem::size_of_val(self.head.as_slice())
            + std::mem::size_of_val(self.len.as_slice())
            + std::mem::size_of_val(self.suspected.as_slice())
    }

    /// Records `count` infected messages observed in transit; returns the
    /// new total. This is the input to the detectability clock.
    pub fn record_infected_observed(&mut self, count: u64) -> u64 {
        self.infected_observed += count;
        self.infected_observed
    }

    /// Total infected messages the gateway has seen in transit.
    pub fn infected_observed(&self) -> u64 {
        self.infected_observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw() -> Gateway {
        Gateway::new(4, SimDuration::from_hours(1))
    }

    #[test]
    fn outgoing_counts_within_window() {
        let mut g = gw();
        let p = PhoneId(1);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(0)), 1);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(10)), 2);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(50)), 3);
        // The t=0 entry falls outside the 1 h window at t=70 min.
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(70)), 3);
        assert_eq!(g.outgoing_in_window(p, SimTime::from_mins(70)), 3);
    }

    #[test]
    fn window_prunes_fully_after_quiet_period() {
        let mut g = gw();
        let p = PhoneId(0);
        g.record_outgoing(p, SimTime::from_mins(0));
        g.record_outgoing(p, SimTime::from_mins(1));
        assert_eq!(g.outgoing_in_window(p, SimTime::from_hours(5)), 0);
    }

    #[test]
    fn boundary_timestamp_kept() {
        let mut g = gw();
        let p = PhoneId(0);
        g.record_outgoing(p, SimTime::from_hours(1));
        // Exactly `window` old: still inside the closed window.
        assert_eq!(g.outgoing_in_window(p, SimTime::from_hours(2)), 1);
        assert_eq!(g.outgoing_in_window(p, SimTime::from_secs(2 * 3600 + 1)), 0);
    }

    #[test]
    fn phones_tracked_independently() {
        let mut g = gw();
        g.record_outgoing(PhoneId(0), SimTime::ZERO);
        assert_eq!(g.outgoing_in_window(PhoneId(1), SimTime::ZERO), 0);
    }

    #[test]
    fn suspected_counts_accumulate_forever() {
        let mut g = gw();
        let p = PhoneId(2);
        assert_eq!(g.record_suspected(p), 1);
        assert_eq!(g.record_suspected(p), 2);
        assert_eq!(g.suspected_count(p), 2);
        assert_eq!(g.suspected_count(PhoneId(3)), 0);
    }

    #[test]
    fn infected_observed_totals() {
        let mut g = gw();
        assert_eq!(g.infected_observed(), 0);
        assert_eq!(g.record_infected_observed(3), 3);
        assert_eq!(g.record_infected_observed(2), 5);
        assert_eq!(g.infected_observed(), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_phone_panics() {
        let mut g = gw();
        g.record_outgoing(PhoneId(99), SimTime::ZERO);
    }

    #[test]
    fn full_ring_saturates_at_capacity() {
        let mut g = Gateway::with_capacity(1, SimDuration::from_hours(1), 2);
        let p = PhoneId(0);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(0)), 1);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(10)), 2);
        // True in-window count is 3, reported count clamps to capacity.
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(50)), 2);
        // At t=70 the evicted t=0 entry is outside the window anyway:
        // min(true=3, cap=2) = 2 still holds.
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(70)), 2);
        // After the window empties, the ring empties with it.
        assert_eq!(g.outgoing_in_window(p, SimTime::from_hours(5)), 0);
    }

    #[test]
    fn threshold_predicate_exact_with_threshold_plus_one_capacity() {
        // threshold = 2; capacity threshold + 1 = 3. The clamped count
        // decides `count > threshold` identically to an unbounded window.
        let threshold = 2usize;
        let mut bounded = Gateway::with_capacity(1, SimDuration::from_hours(1), 3);
        let mut unbounded = gw();
        let p = PhoneId(0);
        for k in 0..6u64 {
            let t = SimTime::from_mins(k);
            let b = bounded.record_outgoing(p, t);
            let u = unbounded.record_outgoing(p, t);
            assert_eq!(b > threshold, u > threshold, "send {k}");
        }
    }

    #[test]
    fn zero_capacity_tracks_nothing_but_checks_range() {
        let mut g = Gateway::with_capacity(2, SimDuration::from_hours(1), 0);
        assert_eq!(g.record_outgoing(PhoneId(1), SimTime::from_mins(5)), 0);
        assert_eq!(g.outgoing_in_window(PhoneId(1), SimTime::from_mins(5)), 0);
        assert_eq!(g.record_suspected(PhoneId(0)), 1);
        let result = std::panic::catch_unwind(move || g.record_outgoing(PhoneId(9), SimTime::ZERO));
        assert!(result.is_err(), "out-of-range must still panic with capacity 0");
    }

    #[test]
    fn pooled_gateway_starts_clean() {
        let mut pool = BufferPool::new();
        let mut stale = Gateway::with_capacity_pooled(3, SimDuration::from_hours(1), 2, &mut pool);
        stale.record_outgoing(PhoneId(1), SimTime::from_mins(1));
        stale.record_suspected(PhoneId(2));
        stale.record_infected_observed(9);
        stale.recycle(&mut pool);
        let mut g = Gateway::with_capacity_pooled(3, SimDuration::from_hours(1), 2, &mut pool);
        assert_eq!(g.outgoing_in_window(PhoneId(1), SimTime::from_mins(1)), 0);
        assert_eq!(g.suspected_count(PhoneId(2)), 0);
        assert_eq!(g.infected_observed(), 0);
    }
}
