//! Benchmarks for the epidemic model itself: one replication of each
//! canonical virus at a reduced scale, plus the response-mechanism
//! pipeline overhead (an ablation of the gateway hook points).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use mpvsim_core::{
    run_scenario, Blacklist, DetectionAlgorithm, Immunization, Monitoring, PopulationConfig,
    ResponseConfig, ScenarioConfig, SignatureScan, UserEducation, VirusProfile,
};
use mpvsim_des::SimDuration;

fn reduced(virus: VirusProfile, horizon_h: u64) -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(virus);
    c.population = PopulationConfig::paper_default(200);
    c.horizon = SimDuration::from_hours(horizon_h);
    c
}

fn bench_viruses(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    group.sample_size(20);
    for (virus, horizon_h) in [
        (VirusProfile::virus1(), 72),
        (VirusProfile::virus2(), 72),
        (VirusProfile::virus3(), 24),
        (VirusProfile::virus4(), 72),
    ] {
        let name = virus.name.replace(' ', "_").to_lowercase();
        let config = reduced(virus, horizon_h);
        group.bench_function(format!("{name}_n200"), |b| {
            b.iter(|| black_box(run_scenario(&config, 7).expect("valid")))
        });
    }
    group.finish();
}

/// Ablation: the incremental cost of each gateway hook on the hot path,
/// measured against the same Virus 3 scenario.
fn bench_response_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("response_overhead");
    group.sample_size(20);

    let arms: Vec<(&str, ResponseConfig)> = vec![
        ("baseline", ResponseConfig::none()),
        (
            "scan",
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(6),
            }),
        ),
        (
            "detection",
            ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(0.95)),
        ),
        (
            "education",
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
        ),
        (
            "immunization",
            ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(6),
                SimDuration::from_hours(1),
            )),
        ),
        (
            "monitoring",
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(15))),
        ),
        ("blacklist", ResponseConfig::none().with_blacklist(Blacklist { threshold: 30 })),
        (
            "all_six",
            ResponseConfig::none()
                .with_signature_scan(SignatureScan { activation_delay: SimDuration::from_hours(6) })
                .with_detection(DetectionAlgorithm::with_accuracy(0.95))
                .with_education(UserEducation { acceptance_scale: 0.5 })
                .with_immunization(Immunization::uniform(
                    SimDuration::from_hours(6),
                    SimDuration::from_hours(1),
                ))
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(15)))
                .with_blacklist(Blacklist { threshold: 30 }),
        ),
    ];

    for (name, response) in arms {
        let config = reduced(VirusProfile::virus3(), 24).with_response(response);
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_scenario(&config, 7).expect("valid")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_viruses, bench_response_overhead);
criterion_main!(benches);
