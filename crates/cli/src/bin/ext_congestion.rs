//! Deprecated shim: forwards to `mpvsim study ext_congestion`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("ext_congestion");
}
