//! Integration tests: reproducibility guarantees across the whole stack.
//!
//! A `(ScenarioConfig, seed)` pair must determine the trajectory exactly,
//! independent of thread count, and different seeds must explore
//! different topologies and dynamics.

use mpvsim::prelude::*;

fn config() -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
    c.population = PopulationConfig::paper_default(200);
    c.horizon = SimDuration::from_hours(12);
    c
}

#[test]
fn identical_seeds_identical_runs() {
    let c = config();
    let a = run_scenario(&c, 11).expect("valid");
    let b = run_scenario(&c, 11).expect("valid");
    assert_eq!(a.series, b.series);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.final_infected, b.final_infected);
    assert_eq!(a.activation.detected_at, b.activation.detected_at);
}

#[test]
fn different_seeds_diverge() {
    let c = config();
    let a = run_scenario(&c, 1).expect("valid");
    let b = run_scenario(&c, 2).expect("valid");
    assert!(
        a.series != b.series || a.stats != b.stats,
        "two seeds produced byte-identical trajectories"
    );
}

#[test]
fn experiment_is_thread_count_invariant() {
    let c = config();
    let serial = ExperimentPlan::new(6).master_seed(42).threads(1).run(&c).expect("valid");
    let parallel = ExperimentPlan::new(6).master_seed(42).threads(6).run(&c).expect("valid");
    assert_eq!(serial.aggregate.mean, parallel.aggregate.mean);
    assert_eq!(serial.aggregate.ci95_half_width, parallel.aggregate.ci95_half_width);
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(s.final_infected, p.final_infected);
        assert_eq!(s.stats, p.stats);
    }
}

#[test]
fn replications_within_an_experiment_differ() {
    let c = config();
    let e = ExperimentPlan::new(4).master_seed(7).threads(2).run(&c).expect("valid");
    let finals: Vec<usize> = e.runs.iter().map(|r| r.final_infected).collect();
    let all_same = finals.windows(2).all(|w| w[0] == w[1]);
    let stats_same = e.runs.windows(2).all(|w| w[0].stats == w[1].stats);
    assert!(
        !(all_same && stats_same),
        "replications must use independent random streams: {finals:?}"
    );
}

#[test]
fn master_seed_changes_every_replication() {
    let c = config();
    let a = ExperimentPlan::new(3).master_seed(100).threads(2).run(&c).expect("valid");
    let b = ExperimentPlan::new(3).master_seed(101).threads(2).run(&c).expect("valid");
    assert_ne!(
        a.aggregate.mean, b.aggregate.mean,
        "different master seeds must give different aggregates"
    );
}

#[test]
fn config_is_serializable_data() {
    // Scenario configurations are plain data; a round-trip through the
    // serde data model must preserve them so experiments can be archived
    // alongside their results.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<ScenarioConfig>();
    assert_serde::<VirusProfile>();
    assert_serde::<ResponseConfig>();
    assert_serde::<GraphSpec>();
}
