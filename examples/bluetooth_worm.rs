//! Bluetooth worm: the paper's §6 future-work vector, runnable.
//!
//! A Cabir-style worm spreads only to phones within radio range of its
//! host, carried through a 1 km² downtown by random-waypoint pedestrians.
//! Compare how the paper's mechanisms fare against it — and see why the
//! provider-side ones are helpless.
//!
//! ```text
//! cargo run --release --example bluetooth_worm
//! ```

use mpvsim::prelude::*;

fn main() -> Result<(), ConfigError> {
    let base = ScenarioConfig::baseline(VirusProfile::bluetooth_worm())
        .with_horizon(SimDuration::from_hours(72))
        .with_mobility(MobilityConfig::downtown());

    println!("Bluetooth worm, 1000 phones, 1 km² arena, 72 h, 5 replications\n");
    println!("{:<40} {:>10}", "defense", "infected");

    let arms: Vec<(&str, ResponseConfig)> = vec![
        ("none (baseline)", ResponseConfig::none()),
        (
            "gateway scan, instant signature",
            ResponseConfig::none()
                .with_signature_scan(SignatureScan { activation_delay: SimDuration::ZERO }),
        ),
        (
            "user education (acceptance halved)",
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
        ),
        (
            "immunization (6 h dev + 1 h rollout)",
            ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(6),
                SimDuration::from_hours(1),
            )),
        ),
    ];
    for (name, response) in arms {
        let mut config = base.clone().with_response(response);
        // The worm sends no MMS, so detectability must come from user
        // reports rather than gateway counts; model that as a low
        // threshold on observed infections via the hybrid's BT offers.
        config.detect_threshold = 1;
        let result = ExperimentPlan::new(5)
            .master_seed(7)
            .engine(EngineOptions::new().with_threads(4))
            .run(&config)?;
        println!("{:<40} {:>10.1}", name, result.final_infected.mean);
    }

    println!(
        "\nThe MMS gateways never see a proximity transfer, so the scan is\n\
         inert. Only the phone-resident defenses — education and patching —\n\
         touch a Bluetooth worm, and the patch must be fast: this worm\n\
         reaches half its plateau in ≈ 16 hours."
    );
    Ok(())
}
