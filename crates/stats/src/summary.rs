//! Scalar statistics over replication results.

use serde::{Deserialize, Serialize};

/// Normal-approximation critical value for a two-sided 95 % interval.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Mean, spread and a 95 % confidence half-width for a sample of scalars
/// (one value per replication).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (0 when `n < 2`).
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Half-width of the normal-approximation 95 % confidence interval on
    /// the mean (0 when `n < 2`).
    pub ci95_half_width: f64,
}

impl Summary {
    /// Summarizes `values`. Returns `None` for an empty sample.
    ///
    /// ```rust
    /// let s = mpvsim_stats::Summary::of(&[2.0, 4.0, 6.0]).unwrap();
    /// assert_eq!(s.mean, 4.0);
    /// assert_eq!(s.min, 2.0);
    /// assert_eq!(s.max, 6.0);
    /// ```
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let std_err = (variance / n as f64).sqrt();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Some(Summary { n, mean, variance, min, max, ci95_half_width: Z_95 * std_err })
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// The `q`-th quantile (0 ≤ q ≤ 1) by linear interpolation of the sorted
/// sample. Returns `None` for an empty sample.
///
/// ```rust
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(mpvsim_stats::summary::quantile(&xs, 0.5), Some(2.5));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(quantile(&[], 0.5).is_none());
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn known_variance() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let big_values: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let big = Summary::of(&big_values).unwrap();
        assert!(big.ci95_half_width < small.ci95_half_width / 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(50.0));
        assert_eq!(quantile(&xs, 0.5), Some(30.0));
        assert_eq!(quantile(&xs, 0.25), Some(20.0));
        assert_eq!(quantile(&xs, 0.1), Some(14.0));
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.5), Some(2.0));
    }

    proptest! {
        #[test]
        fn prop_mean_within_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.variance >= 0.0);
        }

        #[test]
        fn prop_quantiles_monotone(values in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
            let q1 = quantile(&values, 0.25).unwrap();
            let q2 = quantile(&values, 0.5).unwrap();
            let q3 = quantile(&values, 0.75).unwrap();
            prop_assert!(q1 <= q2 + 1e-9);
            prop_assert!(q2 <= q3 + 1e-9);
        }
    }
}
