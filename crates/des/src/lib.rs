//! # mpvsim-des — discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation (DES) engine used as the
//! execution substrate for the mobile-phone-virus propagation model of
//! *Van Ruitenbeek et al., DSN 2007*. The paper implemented its stochastic
//! model in the Möbius tool; this crate provides the equivalent executor:
//! a future-event list with a total, reproducible event order, a simulation
//! clock, per-replication random streams, and a replication runner.
//!
//! ## Design
//!
//! * **Time** is an integer count of seconds ([`SimTime`]), so event ordering
//!   is exact — no floating-point tie ambiguity.
//! * **Determinism**: events scheduled for the same instant fire in FIFO
//!   order of scheduling (a monotone sequence number breaks ties). Running
//!   the same model with the same seed yields the identical trajectory.
//! * **Randomness** is owned by the simulation and exposed to the model
//!   through [`Context::rng`]; replication seeds are derived with a
//!   SplitMix64 mix so that replication streams are statistically
//!   independent ([`seed::derive_seed`]).
//!
//! ## Example
//!
//! ```rust
//! use mpvsim_des::{Model, Context, Simulation, SimTime, SimDuration};
//!
//! /// A process that counts down and reschedules itself.
//! struct Countdown { remaining: u32, fired_at: Vec<SimTime> }
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! enum Tick { Tick }
//!
//! impl Model for Countdown {
//!     type Event = Tick;
//!     fn handle(&mut self, _ev: Tick, ctx: &mut Context<'_, Tick>) {
//!         self.fired_at.push(ctx.now());
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             ctx.schedule_in(SimDuration::from_secs(10), Tick::Tick);
//!         }
//!     }
//! }
//!
//! let model = Countdown { remaining: 3, fired_at: Vec::new() };
//! let mut sim = Simulation::new(model, 42);
//! sim.schedule(SimTime::ZERO, Tick::Tick);
//! let model = sim.run();
//! assert_eq!(model.fired_at.len(), 4);
//! assert_eq!(model.fired_at[3], SimTime::from_secs(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod fel;
pub mod hash;
pub mod observe;
pub mod random;
pub mod replication;
pub mod seed;
pub mod shard;
pub mod time;
pub mod trace;

pub use engine::{Context, Model, RunOutcome, SimMetrics, Simulation};
pub use event::EventQueue;
pub use fel::{BinaryHeapFel, CalendarQueue, FelKind, FutureEventList, Scheduled};
pub use hash::Fnv1a64;
pub use observe::{
    ExperimentMetrics, ExperimentObserver, FanoutObserver, JsonlObserver, NoopObserver,
    ObserverHandle, ProgressObserver, ReplicationMetrics,
};
pub use random::DelaySpec;
pub use replication::{
    run_replications, run_replications_parallel, try_run_replications,
    try_run_replications_parallel, try_run_replications_sink,
};
pub use shard::{
    plan_round, BarrierStats, Envelope, Lookahead, Round, ShardQueue, ShardRouter,
    ZeroLookaheadError,
};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceRing, Traced};
