//! # mpvsim-stats — time-series statistics and report rendering
//!
//! The paper's figures are infection-count-vs-time curves, and its claims
//! are statements about those curves (plateau levels, times to reach an
//! infection level, relative penetration). This crate provides:
//!
//! * [`TimeSeries`] — a step function sampled on a fixed grid, the raw
//!   output of one simulation replication;
//! * [`aggregate`] — pointwise mean and confidence intervals across
//!   replications, producing the expected trajectories the paper plots;
//! * [`summary`] — scalar statistics (mean, variance, confidence
//!   half-width, percentiles);
//! * [`render`] — CSV emission and a terminal ASCII chart so every figure
//!   binary can show its curves without a plotting stack.
//!
//! ```rust
//! use mpvsim_stats::{TimeSeries, aggregate::mean_series};
//!
//! let a = TimeSeries::from_values(1.0, vec![0.0, 1.0, 4.0]);
//! let b = TimeSeries::from_values(1.0, vec![0.0, 3.0, 6.0]);
//! let mean = mean_series(&[a, b]).unwrap();
//! assert_eq!(mean.values(), &[0.0, 2.0, 5.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod gof;
pub mod render;
pub mod series;
pub mod summary;
pub mod welford;

pub use aggregate::{mean_series, AggregateSeries, OnlineAggregate};
pub use gof::{ci95_contains, ks_critical_value, ks_distance, SequentialGate};
pub use series::TimeSeries;
pub use summary::Summary;
pub use welford::RunningSummary;
