//! An undirected simple graph stored as adjacency lists.
//!
//! Nodes are dense indices (`NodeId`), matching the paper's "each phone is
//! assigned a unique identification number". Edges are reciprocal by
//! construction: inserting `(a, b)` makes `b` a neighbour of `a` *and*
//! `a` a neighbour of `b`, which is the paper's reciprocal-contact-list
//! invariant ("if phone 22 is in the contact list of phone 83, then phone
//! 83 is in the contact list of phone 22").

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A node (phone) index in a [`Graph`]; dense in `0..node_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// An undirected simple graph: no self-loops, no parallel edges.
///
/// ```rust
/// use mpvsim_topology::{Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// assert!(g.add_edge(NodeId(0), NodeId(1)));
/// assert!(!g.add_edge(NodeId(1), NodeId(0)), "duplicate (reciprocal) edge");
/// assert_eq!(g.degree(NodeId(0)), 1);
/// assert!(g.contains_edge(NodeId(1), NodeId(0)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with no nodes.
    pub fn new() -> Self {
        Graph::default()
    }

    /// A graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph { adjacency: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() - 1)
    }

    /// Inserts the undirected edge `{a, b}`.
    ///
    /// Returns `true` if the edge was new, `false` if it already existed or
    /// was a self-loop (both are ignored, keeping the graph simple).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let n = self.node_count();
        assert!(a.0 < n && b.0 < n, "edge endpoint out of range");
        if a == b || self.contains_edge(a, b) {
            return false;
        }
        self.adjacency[a.0].push(b);
        self.adjacency[b.0].push(a);
        self.edge_count += 1;
        true
    }

    /// True when `{a, b}` is an edge. Out-of-range ids are simply absent.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        match self.adjacency.get(a.0) {
            Some(neigh) => neigh.contains(&b),
            None => false,
        }
    }

    /// The neighbours of `node` (its contact list).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0]
    }

    /// The degree (contact-list size) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.0].len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterates over each undirected edge once, as `(low, high)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, neigh)| {
            neigh.iter().filter(move |j| i < j.0).map(move |&j| (NodeId(i), j))
        })
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.adjacency.len() as f64
        }
    }

    /// Checks the reciprocal-contact-list invariant and simplicity;
    /// used by tests and after deserializing untrusted graphs.
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        let mut counted = 0usize;
        for (i, neigh) in self.adjacency.iter().enumerate() {
            let mut seen = HashSet::with_capacity(neigh.len());
            for &NodeId(j) in neigh {
                if j >= n {
                    return Err(format!("node {i} links to out-of-range node {j}"));
                }
                if j == i {
                    return Err(format!("self-loop at node {i}"));
                }
                if !seen.insert(j) {
                    return Err(format!("parallel edge {i}-{j}"));
                }
                if !self.adjacency[j].contains(&NodeId(i)) {
                    return Err(format!("edge {i}->{j} not reciprocated"));
                }
                counted += 1;
            }
        }
        if counted != 2 * self.edge_count {
            return Err(format!(
                "edge_count {} inconsistent with adjacency ({} directed entries)",
                self.edge_count, counted
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(4);
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(g.add_edge(NodeId(1), NodeId(2)));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.degree(NodeId(3)), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_are_reciprocal() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(g.contains_edge(NodeId(0), NodeId(1)));
        assert!(g.contains_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn self_loops_and_duplicates_rejected() {
        let mut g = Graph::with_nodes(2);
        assert!(!g.add_edge(NodeId(0), NodeId(0)));
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn add_node_returns_fresh_id() {
        let mut g = Graph::with_nodes(1);
        let id = g.add_node();
        assert_eq!(id, NodeId(1));
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(1));
        g.add_edge(NodeId(3), NodeId(0));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn mean_degree_matches_handshake_lemma() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_detects_corruption() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        // Corrupt: drop the reciprocal entry via serde round-trip surgery.
        let mut bad = g.clone();
        // Reach into the struct through its serialized representation is
        // overkill; construct the corruption directly instead.
        bad.adjacency[1].clear();
        assert!(bad.validate().is_err());
        assert!(g.validate().is_ok());
    }

    proptest! {
        /// Randomly built graphs always satisfy the structural invariants.
        #[test]
        fn prop_random_graphs_valid(
            n in 1usize..40,
            pairs in proptest::collection::vec((0usize..40, 0usize..40), 0..200)
        ) {
            let mut g = Graph::with_nodes(n);
            for (a, b) in pairs {
                let (a, b) = (a % n, b % n);
                g.add_edge(NodeId(a), NodeId(b));
            }
            prop_assert!(g.validate().is_ok());
            // Handshake lemma.
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
            // edges() agrees with edge_count.
            prop_assert_eq!(g.edges().count(), g.edge_count());
        }
    }
}
