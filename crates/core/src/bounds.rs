//! The response-time bounds solver: how *fast* must a response deploy?
//!
//! The paper measures how well each mechanism contains a virus at fixed
//! response speeds; this module answers the operational inverse
//! question: given a scenario and a containment target (final
//! infections below a fraction of the susceptible population), find the
//! **critical value** of a response knob — the largest signature
//! activation delay, patch development time, or blacklist threshold
//! that still contains the outbreak.
//!
//! ## Bracket → confirm → store
//!
//! 1. **Bracket** — the mean-field ODE
//!    ([`crate::meanfield::integrate_response`]) is a cheap monotone
//!    proxy for the knob. A bisection over the proxy yields an analytic
//!    critical value, widened into a generous `[ode/4, ode×4]` search
//!    bracket.
//! 2. **Confirm** — each candidate knob value is evaluated with real
//!    DES replications under CI-aware sequential stopping
//!    ([`mpvsim_stats::SequentialGate`]): replications accumulate into
//!    a Welford summary until the 95 % CI on the mean final infection
//!    count separates from the containment threshold (or a rep cap is
//!    hit). The bracket endpoints are confirmed first and expanded if
//!    the proxy misjudged, so the DES-confirmed critical value always
//!    lies inside the final bracket; then an integer bisection narrows
//!    the bracket to the requested tolerance.
//! 3. **Store** — every evaluation lands in a versioned on-disk store
//!    (`<dir>/<spec-hash>/…`) with atomic writes and no wall-clock
//!    state, so an interrupted query resumes and a repeated query is a
//!    byte-identical cache hit.
//!
//! The wire document is [`BoundsSpec`] (`mpvsim-bounds/1`), entering
//! through the same validate-then-hash funnel as
//! [`ScenarioSpec`](crate::spec::ScenarioSpec); the result is a
//! [`BoundsReport`] (`mpvsim-bounds-report/1`).

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mpvsim_des::hash::Fnv1a64;
use mpvsim_des::seed::derive_seed;
use mpvsim_des::SimDuration;
use mpvsim_stats::{RunningSummary, SequentialGate};

use crate::config::{ConfigError, ScenarioConfig};
use crate::meanfield::{integrate_response, MeanFieldParams, ResponseProxy};
use crate::probe::ProbeKind;
use crate::response::{Blacklist, Immunization, SignatureScan};
use crate::run::{run_scenario_configured, EngineOptions, TopologyCache};
use crate::sweep::SweepError;
use crate::virus::TargetingStrategy;

/// The bounds-query schema tag this build reads and writes.
pub const BOUNDS_SCHEMA: &str = "mpvsim-bounds/1";
/// The bounds-report schema tag.
pub const BOUNDS_REPORT_SCHEMA: &str = "mpvsim-bounds-report/1";

/// Default containment target: final infections below 5 % of the
/// susceptible population.
pub const DEFAULT_TARGET: f64 = 0.05;
/// Default master seed (the paper's publication year, as everywhere).
pub const DEFAULT_MASTER_SEED: u64 = 2007;
/// Rollout window assumed when the scenario has no immunization entry
/// and the knob is [`BoundsKnob::PatchDelay`].
pub const DEFAULT_ROLLOUT: SimDuration = SimDuration::from_hours(6);

fn default_schema() -> String {
    BOUNDS_SCHEMA.to_owned()
}

fn default_target() -> f64 {
    DEFAULT_TARGET
}

fn default_master_seed() -> u64 {
    DEFAULT_MASTER_SEED
}

/// Which response knob the solver searches over. All three are monotone
/// the same way: a larger value means a slower / laxer response and at
/// least as many final infections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum BoundsKnob {
    /// Signature activation delay, in seconds
    /// ([`SignatureScan::activation_delay`]).
    ScanDelay,
    /// Patch development time, in seconds
    /// ([`Immunization::development_time`]); the rollout window is
    /// taken from the scenario (or [`DEFAULT_ROLLOUT`]).
    PatchDelay,
    /// Blacklist threshold, in suspected-infected messages
    /// ([`Blacklist::threshold`]).
    BlacklistThreshold,
}

impl BoundsKnob {
    /// Stable CLI / report name (`scan-delay`, `patch-delay`,
    /// `blacklist-threshold`).
    pub fn cli_name(&self) -> &'static str {
        match self {
            BoundsKnob::ScanDelay => "scan-delay",
            BoundsKnob::PatchDelay => "patch-delay",
            BoundsKnob::BlacklistThreshold => "blacklist-threshold",
        }
    }

    /// Parses a [`BoundsKnob::cli_name`].
    pub fn from_cli_name(name: &str) -> Option<Self> {
        match name {
            "scan-delay" => Some(BoundsKnob::ScanDelay),
            "patch-delay" => Some(BoundsKnob::PatchDelay),
            "blacklist-threshold" => Some(BoundsKnob::BlacklistThreshold),
            _ => None,
        }
    }

    /// The unit of the knob's integer values.
    pub fn unit(&self) -> &'static str {
        match self {
            BoundsKnob::ScanDelay | BoundsKnob::PatchDelay => "seconds",
            BoundsKnob::BlacklistThreshold => "messages",
        }
    }

    /// The default search range: 15 min – 48 h at 15-minute tolerance
    /// for the delay knobs, 1 – 200 messages at single-message tolerance
    /// for the blacklist.
    pub fn default_search(&self) -> SearchRange {
        match self {
            BoundsKnob::ScanDelay | BoundsKnob::PatchDelay => {
                SearchRange { min: 900, max: 172_800, tolerance: 900 }
            }
            BoundsKnob::BlacklistThreshold => SearchRange { min: 1, max: 200, tolerance: 1 },
        }
    }

    /// The scenario with this knob forced to `value` (other response
    /// mechanisms are left untouched, so bounds queries compose with a
    /// pre-configured defense-in-depth scenario).
    pub fn apply(&self, scenario: &ScenarioConfig, value: u64) -> ScenarioConfig {
        let mut s = scenario.clone();
        match self {
            BoundsKnob::ScanDelay => {
                s.response.signature_scan =
                    Some(SignatureScan { activation_delay: SimDuration::from_secs(value) });
            }
            BoundsKnob::PatchDelay => {
                let rollout =
                    s.response.immunization.map_or(DEFAULT_ROLLOUT, |i| i.rollout_duration);
                let order = s.response.immunization.map(|i| i.order).unwrap_or_default();
                s.response.immunization = Some(Immunization {
                    development_time: SimDuration::from_secs(value),
                    rollout_duration: rollout,
                    order,
                });
            }
            BoundsKnob::BlacklistThreshold => {
                s.response.blacklist =
                    Some(Blacklist { threshold: u32::try_from(value).unwrap_or(u32::MAX) });
            }
        }
        s
    }

    /// The mean-field caricature of this knob at `value` for `scenario`
    /// (see [`ResponseProxy`]).
    pub fn proxy(&self, scenario: &ScenarioConfig, value: u64) -> ResponseProxy {
        let attempts = gateway_attempts_per_hour(scenario);
        let (cutoff, window) = match self {
            BoundsKnob::ScanDelay => (Some(value as f64 / 3600.0), None),
            BoundsKnob::PatchDelay => {
                let rollout =
                    scenario.response.immunization.map_or(DEFAULT_ROLLOUT, |i| i.rollout_duration);
                // The uniform rollout patches half the population by its
                // midpoint — treat that as the effective stop instant.
                (Some((value as f64 + rollout.as_hours_f64() * 1800.0) / 3600.0), None)
            }
            BoundsKnob::BlacklistThreshold => {
                (None, Some(value as f64 / attempts.max(f64::MIN_POSITIVE)))
            }
        };
        ResponseProxy {
            detect_threshold: scenario.detect_threshold as f64,
            attempts_per_hour: attempts,
            cutoff_after_detect: cutoff,
            active_window: window,
        }
    }
}

/// Send attempts per infected phone per hour *as the gateway sees
/// them*: invalid random dials count (they trip detection and
/// blacklists), and every addressed recipient is one gateway copy.
fn gateway_attempts_per_hour(scenario: &ScenarioConfig) -> f64 {
    let gap_h = scenario.virus.send_gap.mean().as_hours_f64().max(1e-6);
    scenario.virus.recipients_per_message as f64 / gap_h
}

/// Mean-field parameters matching `scenario`'s epidemic dynamics (used
/// by the solver's bracket pass; for contact-list viruses this is a
/// rough uniform-mixing approximation, which is all a bracket needs).
fn proxy_params(scenario: &ScenarioConfig) -> MeanFieldParams {
    let valid = match scenario.virus.targeting {
        TargetingStrategy::ContactList => 1.0,
        TargetingStrategy::RandomDialing { valid_fraction } => valid_fraction,
    };
    MeanFieldParams {
        population: scenario.population.size(),
        vulnerable: (scenario.population.vulnerable_fraction * scenario.population.size() as f64)
            .round() as usize,
        initial_infected: scenario.initial_infections as usize,
        valid_messages_per_hour: gateway_attempts_per_hour(scenario) * valid,
        read_delay: scenario.behavior.read_delay.mean(),
        acceptance: scenario.behavior.acceptance,
    }
}

/// The integer interval the solver searches, inclusive on both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SearchRange {
    /// Smallest knob value considered (fastest / strictest response).
    pub min: u64,
    /// Largest knob value considered.
    pub max: u64,
    /// Stop bisecting when the bracket is at most this wide (≥ 1).
    pub tolerance: u64,
}

/// When the DES confirmation of a candidate may stop sampling (see
/// [`SequentialGate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields, default)]
pub struct ConfirmPolicy {
    /// Replications before the CI test may stop a candidate.
    pub min_reps: u64,
    /// Hard cap on replications per candidate.
    pub max_reps: u64,
    /// Floor on the CI half-width (in infected phones) used by the
    /// containment test.
    pub min_half_width: f64,
}

impl Default for ConfirmPolicy {
    fn default() -> Self {
        ConfirmPolicy { min_reps: 4, max_reps: 16, min_half_width: 0.5 }
    }
}

/// A complete, self-describing bounds query: the scenario, the knob,
/// the containment target and the search/confirmation policy — the
/// `mpvsim-bounds/1` wire document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BoundsSpec {
    /// Schema tag; must be [`BOUNDS_SCHEMA`]. Defaults to it when
    /// omitted, but a *wrong* tag is always an error.
    #[serde(default = "default_schema")]
    pub schema: String,
    /// Human-readable label for reports and store headers.
    pub name: String,
    /// The knob to solve for.
    pub knob: BoundsKnob,
    /// The integer interval to search.
    pub search: SearchRange,
    /// Containment target as a fraction of the initially susceptible
    /// population, in `(0, 1)`: the outbreak counts as contained when
    /// the mean final infection count stays at or below
    /// `initial_infections + target × vulnerable`.
    #[serde(default = "default_target")]
    pub target: f64,
    /// Sequential-stopping policy for the DES confirmation runs.
    #[serde(default)]
    pub confirm: ConfirmPolicy,
    /// Master seed; candidate evaluations reuse replication seeds
    /// `derive_seed(master_seed, r)` across candidates (common random
    /// numbers).
    #[serde(default = "default_master_seed")]
    pub master_seed: u64,
    /// The scenario under study.
    pub scenario: ScenarioConfig,
}

impl BoundsSpec {
    /// A query over `scenario` for `knob` with the knob's default
    /// search range and the default target / confirmation policy.
    pub fn new(name: impl Into<String>, knob: BoundsKnob, scenario: ScenarioConfig) -> Self {
        BoundsSpec {
            schema: BOUNDS_SCHEMA.to_owned(),
            name: name.into(),
            knob,
            search: knob.default_search(),
            target: DEFAULT_TARGET,
            confirm: ConfirmPolicy::default(),
            master_seed: DEFAULT_MASTER_SEED,
            scenario,
        }
    }

    /// Builder-style: replaces the search range.
    pub fn with_search(mut self, search: SearchRange) -> Self {
        self.search = search;
        self
    }

    /// Builder-style: replaces the containment target.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = target;
        self
    }

    /// Builder-style: replaces the confirmation policy.
    pub fn with_confirm(mut self, confirm: ConfirmPolicy) -> Self {
        self.confirm = confirm;
        self
    }

    /// Builder-style: replaces the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Validates the whole document: schema tag, search range, target,
    /// confirmation policy, then the scenario itself.
    ///
    /// # Errors
    ///
    /// Returns the first problem found, as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.schema != BOUNDS_SCHEMA {
            return Err(ConfigError::schema(&self.schema, BOUNDS_SCHEMA));
        }
        if self.name.is_empty() {
            return Err(ConfigError::invalid("name", "must not be empty"));
        }
        if self.search.min >= self.search.max {
            return Err(ConfigError::invalid(
                "search",
                format!("min {} must be below max {}", self.search.min, self.search.max),
            ));
        }
        if self.search.tolerance == 0 {
            return Err(ConfigError::invalid("search.tolerance", "must be at least 1"));
        }
        if self.knob == BoundsKnob::BlacklistThreshold {
            if self.search.min == 0 {
                return Err(ConfigError::invalid("search.min", "blacklist thresholds start at 1"));
            }
            if self.search.max > u64::from(u32::MAX) {
                return Err(ConfigError::out_of_range(
                    "search.max",
                    self.search.max,
                    format!("1..={} (blacklist thresholds are u32)", u32::MAX),
                ));
            }
        }
        if !(self.target > 0.0 && self.target < 1.0 && self.target.is_finite()) {
            return Err(ConfigError::out_of_range("target", self.target, "(0, 1)"));
        }
        if self.confirm.min_reps < 2 {
            return Err(ConfigError::invalid(
                "confirm.min_reps",
                "need at least 2 replications for a variance estimate",
            ));
        }
        if self.confirm.max_reps < self.confirm.min_reps {
            return Err(ConfigError::invalid(
                "confirm.max_reps",
                format!("must be at least min_reps ({})", self.confirm.min_reps),
            ));
        }
        if !self.confirm.min_half_width.is_finite() || self.confirm.min_half_width < 0.0 {
            return Err(ConfigError::out_of_range(
                "confirm.min_half_width",
                self.confirm.min_half_width,
                "[0, ∞)",
            ));
        }
        self.scenario.validate()
    }

    /// The containment threshold in infected phones:
    /// `initial_infections + target × vulnerable`.
    pub fn threshold_infections(&self) -> f64 {
        let n = self.scenario.population.size() as f64;
        let vulnerable = self.scenario.population.vulnerable_fraction * n;
        f64::from(self.scenario.initial_infections) + self.target * vulnerable
    }

    /// The canonical serialized form: compact JSON with every field
    /// present, in declaration order.
    pub fn canonical_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("bounds specs always serialize")
    }

    /// The 16-hex-digit FNV-1a digest of the canonical JSON — the
    /// query's identity in the store and the `mpvsim serve` cache.
    pub fn content_hash(&self) -> String {
        let mut h = Fnv1a64::new();
        h.write_bytes(&self.canonical_json());
        format!("{:016x}", h.finish())
    }

    /// Parses a spec document from JSON bytes (shape only; semantic
    /// checks happen in [`BoundsSpec::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Malformed`] with the parser's diagnostic.
    pub fn from_json(bytes: &[u8]) -> Result<Self, ConfigError> {
        serde_json::from_slice(bytes).map_err(|e| ConfigError::malformed(e.to_string()))
    }
}

/// One DES-confirmed candidate evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The knob value evaluated.
    pub value: u64,
    /// Replications the sequential gate consumed.
    pub reps: u64,
    /// Mean final infection count.
    pub mean: f64,
    /// 95 % CI half-width on the mean.
    pub ci95_half_width: f64,
    /// Whether the mean met the containment threshold.
    pub contained: bool,
}

/// How the search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BoundsOutcome {
    /// The bisection converged: `critical` is the largest confirmed
    /// contained value, `violated_at` the smallest confirmed violating
    /// one, at most `tolerance` apart.
    Converged,
    /// Even the fastest response in range (`search.min`) fails the
    /// target — the true critical value, if any, lies below the range.
    BelowMin,
    /// Even the slowest response in range (`search.max`) contains the
    /// outbreak — the true critical value lies at or above the range.
    AboveMax,
}

/// The result of one bounds query — the `mpvsim-bounds-report/1` wire
/// document, persisted as the store's completion certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundsReport {
    /// Schema tag ([`BOUNDS_REPORT_SCHEMA`]).
    pub schema: String,
    /// The query's name.
    pub name: String,
    /// Content hash of the query spec (the store key).
    pub spec_hash: String,
    /// The knob searched.
    pub knob: BoundsKnob,
    /// Unit of every knob value in this report.
    pub unit: String,
    /// Containment target as a fraction of the susceptible population.
    pub target: f64,
    /// The containment threshold in infected phones.
    pub threshold_infections: f64,
    /// The mean-field proxy's own critical value.
    pub ode_critical: u64,
    /// Lower edge of the DES-confirmed bracket.
    pub bracket_lo: u64,
    /// Upper edge of the DES-confirmed bracket.
    pub bracket_hi: u64,
    /// Whether DES endpoint confirmation had to widen the ODE bracket.
    pub bracket_expanded: bool,
    /// How the search ended.
    pub outcome: BoundsOutcome,
    /// The critical knob value: largest DES-confirmed contained value
    /// (`None` when even `search.min` fails).
    pub critical: Option<u64>,
    /// Smallest DES-confirmed violating value (`None` when even
    /// `search.max` contains).
    pub violated_at: Option<u64>,
    /// Every candidate evaluated, in increasing knob order.
    pub evaluations: Vec<Evaluation>,
    /// Total DES replications consumed.
    pub total_reps: u64,
}

/// A deterministic progress event, emitted to the solver's callback and
/// appended (one JSON line each, no timestamps) to the store's
/// `progress.jsonl` — which is what `mpvsim serve` streams as NDJSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum ProgressEvent {
    /// The query was accepted and the search is starting.
    Start {
        /// Query name.
        name: String,
        /// Spec content hash.
        hash: String,
        /// Containment threshold in infected phones.
        threshold: f64,
        /// Search floor.
        min: u64,
        /// Search ceiling.
        max: u64,
    },
    /// The ODE pass produced a bracket.
    Bracket {
        /// The proxy's critical value.
        ode_critical: u64,
        /// Bracket floor handed to DES confirmation.
        lo: u64,
        /// Bracket ceiling handed to DES confirmation.
        hi: u64,
    },
    /// One candidate was DES-confirmed.
    Eval {
        /// Knob value.
        value: u64,
        /// Replications consumed.
        reps: u64,
        /// Mean final infections.
        mean: f64,
        /// CI half-width.
        ci95_half_width: f64,
        /// Containment verdict.
        contained: bool,
    },
    /// The search finished.
    Done {
        /// How it ended.
        outcome: BoundsOutcome,
        /// The critical value, when one exists in range.
        critical: Option<u64>,
        /// Total replications consumed.
        total_reps: u64,
    },
}

/// Execution knobs of a bounds query. Like everywhere else in the
/// workspace, nothing here changes a bit of the result — threads only
/// partition candidate replications, and the sequential gate is applied
/// in global replication order.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundsOptions {
    /// Engine knobs for the confirmation replications.
    pub engine: EngineOptions,
}

/// What [`solve_bounds`] did.
#[derive(Debug, Clone)]
pub struct BoundsRun {
    /// The report (freshly computed or loaded from the store).
    pub report: BoundsReport,
    /// `true` when the store already held this query's completed report
    /// and nothing was recomputed.
    pub cached: bool,
}

/// The on-disk store of one bounds query:
///
/// ```text
/// <dir>/<hash>/manifest.json     canonical BoundsSpec
/// <dir>/<hash>/evals/<value>.json  one per confirmed candidate
/// <dir>/<hash>/progress.jsonl    deterministic NDJSON progress log
/// <dir>/<hash>/report.json       completion certificate
/// ```
///
/// All writes are atomic (temp + rename). An eval file's existence
/// certifies a finished candidate, so re-running an interrupted query
/// re-uses them; `report.json`'s existence certifies the whole query,
/// making a repeat run a byte-identical cache hit.
#[derive(Debug)]
pub struct BoundsStore {
    dir: PathBuf,
}

impl BoundsStore {
    /// Creates (or re-opens) the store for `spec` under `root`.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure, [`SweepError::Store`]
    /// when the directory already holds a *different* spec under the
    /// same hash.
    pub fn init(root: &Path, spec: &BoundsSpec) -> Result<Self, SweepError> {
        let store = BoundsStore { dir: root.join(spec.content_hash()) };
        fs::create_dir_all(store.dir.join("evals"))?;
        let manifest = store.dir.join("manifest.json");
        match fs::read(&manifest) {
            Ok(existing) => {
                if existing != spec.canonical_json() {
                    return Err(SweepError::Store(format!(
                        "{} already holds a different bounds query; refusing to mix results",
                        manifest.display()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_atomic(&manifest, &spec.canonical_json())?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(store)
    }

    /// The store's directory (`<root>/<hash>`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The progress NDJSON file.
    pub fn progress_path(&self) -> PathBuf {
        self.dir.join("progress.jsonl")
    }

    /// The completion certificate.
    pub fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    fn eval_path(&self, value: u64) -> PathBuf {
        self.dir.join("evals").join(format!("{value}.json"))
    }

    /// Loads the completed report, if this query already ran to the end.
    pub fn load_report(&self) -> Option<BoundsReport> {
        let bytes = fs::read(self.report_path()).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    fn load_eval(&self, value: u64) -> Option<Evaluation> {
        let bytes = fs::read(self.eval_path(value)).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    fn save_eval(&self, eval: &Evaluation) -> Result<(), SweepError> {
        write_atomic(&self.eval_path(eval.value), &serde_json::to_vec(eval)?)
    }

    fn save_report(&self, report: &BoundsReport) -> Result<(), SweepError> {
        write_atomic(&self.report_path(), &serde_json::to_vec_pretty(report)?)
    }

    fn append_progress(&self, event: &ProgressEvent) -> Result<(), SweepError> {
        let mut f = fs::OpenOptions::new().create(true).append(true).open(self.progress_path())?;
        f.write_all(&serde_json::to_vec(event)?)?;
        f.write_all(b"\n")?;
        Ok(())
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SweepError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Integer bisection for the largest `x` in `[lo, hi]` with
/// `contained(x)` true, given `contained(lo) == true` and
/// `contained(hi) == false`, to within `tolerance` (≥ 1).
///
/// Returns `(lo, hi)` with `contained(lo)`, `!contained(hi)` and
/// `hi − lo ≤ tolerance`. The predicate is assumed monotone (contained
/// below some critical point, violated above); a non-monotone predicate
/// still terminates but the bracket only certifies its own endpoints.
///
/// # Errors
///
/// Propagates the first predicate error.
pub fn bisect_largest_contained<E>(
    mut lo: u64,
    mut hi: u64,
    tolerance: u64,
    mut contained: impl FnMut(u64) -> Result<bool, E>,
) -> Result<(u64, u64), E> {
    debug_assert!(lo < hi);
    let tolerance = tolerance.max(1);
    while hi - lo > tolerance {
        let mid = lo + (hi - lo) / 2;
        if contained(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo, hi))
}

/// Log target of the bounds solver.
const LOG_TARGET: &str = "mpvsim_core::bounds";

/// Registry handles of the bounds solver, looked up once.
struct BoundsMetrics {
    ode_steps: mpvsim_obs::Counter,
    des_confirmations: mpvsim_obs::Counter,
    gate_stops: mpvsim_obs::Counter,
}

fn bounds_metrics() -> &'static BoundsMetrics {
    static METRICS: std::sync::OnceLock<BoundsMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mpvsim_obs::metrics::global();
        BoundsMetrics {
            ode_steps: reg.counter(
                "mpvsim_bounds_ode_steps_total",
                "ODE integrations evaluated while bracketing bounds queries",
            ),
            des_confirmations: reg.counter(
                "mpvsim_bounds_des_confirmations_total",
                "Candidate knob values confirmed by DES replication batches",
            ),
            gate_stops: reg.counter(
                "mpvsim_bounds_gate_stops_total",
                "DES confirmations the sequential gate stopped before max_reps",
            ),
        }
    })
}

/// The ODE pass: the proxy's own critical value of `spec.knob` within
/// the search range (clamped to the range edges when the proxy never /
/// always contains).
fn ode_critical(spec: &BoundsSpec, threshold: f64) -> u64 {
    let params = proxy_params(&spec.scenario);
    let horizon = spec.scenario.horizon;
    let step = spec.scenario.sample_step;
    let contained = |x: u64| -> Result<bool, std::convert::Infallible> {
        bounds_metrics().ode_steps.inc();
        let series =
            integrate_response(&params, &spec.knob.proxy(&spec.scenario, x), horizon, step);
        Ok(series.final_value().unwrap_or(f64::INFINITY) <= threshold)
    };
    let (min, max) = (spec.search.min, spec.search.max);
    match (contained(min), contained(max)) {
        (Ok(false), _) => min,
        (_, Ok(true)) => max,
        _ => {
            let (lo, _) = bisect_largest_contained(min, max, spec.search.tolerance, contained)
                .unwrap_or((min, max));
            lo
        }
    }
}

/// Runs (or resumes, or cache-hits) the bounds query `spec` into the
/// store at `root`, reporting progress through `progress`.
///
/// Determinism contract: the report (and every byte in the store) is a
/// pure function of the spec — engine knobs in `opts` never change it,
/// and the sequential gate consumes replications in global order so the
/// stopping index is thread-count-independent. A repeat call with the
/// same spec returns the stored report untouched
/// ([`BoundsRun::cached`]).
///
/// # Errors
///
/// [`SweepError::Config`] when the spec is invalid or a replication
/// fails, [`SweepError::Io`] / [`SweepError::Store`] on store trouble.
pub fn solve_bounds(
    spec: &BoundsSpec,
    root: &Path,
    opts: &BoundsOptions,
    mut progress: impl FnMut(&ProgressEvent),
) -> Result<BoundsRun, SweepError> {
    spec.validate()?;
    let store = BoundsStore::init(root, spec)?;
    if let Some(report) = store.load_report() {
        mpvsim_obs::log::debug(
            LOG_TARGET,
            "bounds cache hit",
            &[("name", spec.name.as_str().into()), ("hash", spec.content_hash().into())],
        );
        return Ok(BoundsRun { report, cached: true });
    }
    let span = mpvsim_obs::Span::start(LOG_TARGET, "bounds")
        .level(mpvsim_obs::Level::Info)
        .field("name", spec.name.as_str())
        .field("hash", spec.content_hash());
    // Fresh (or resumed) run: rebuild the progress log from scratch so
    // an interrupted run's partial log never leaves duplicate lines.
    let _ = fs::remove_file(store.progress_path());

    let hash = spec.content_hash();
    let threshold = spec.threshold_infections();
    let mut emit = |store: &BoundsStore, ev: ProgressEvent| -> Result<(), SweepError> {
        store.append_progress(&ev)?;
        progress(&ev);
        Ok(())
    };
    emit(
        &store,
        ProgressEvent::Start {
            name: spec.name.clone(),
            hash: hash.clone(),
            threshold,
            min: spec.search.min,
            max: spec.search.max,
        },
    )?;

    // 1. Bracket: the ODE's critical value, widened generously. The
    //    proxy is crude, so give DES confirmation a 4× margin each way.
    let ode = ode_critical(spec, threshold);
    let mut lo = ode.max(1).saturating_div(4).max(spec.search.min);
    let mut hi = ode
        .saturating_mul(4)
        .max(ode.saturating_add(spec.search.tolerance.saturating_mul(4)))
        .min(spec.search.max);
    if lo >= hi {
        // Degenerate clamp (critical pinned at a range edge): fall back
        // to the full range rather than a one-point bracket.
        lo = spec.search.min;
        hi = spec.search.max;
    }
    emit(&store, ProgressEvent::Bracket { ode_critical: ode, lo, hi })?;

    // 2. Confirm: DES evaluations, cached in the store and deduplicated
    //    in-process.
    let gate = SequentialGate {
        min_reps: spec.confirm.min_reps,
        max_reps: spec.confirm.max_reps,
        min_half_width: spec.confirm.min_half_width,
        threshold,
    };
    let cache = TopologyCache::shared();
    let mut evals: BTreeMap<u64, Evaluation> = BTreeMap::new();
    let eval = |value: u64,
                evals: &mut BTreeMap<u64, Evaluation>,
                progress: &mut dyn FnMut(&ProgressEvent)|
     -> Result<bool, SweepError> {
        if let Some(e) = evals.get(&value) {
            return Ok(e.contained);
        }
        let e = match store.load_eval(value) {
            Some(e) => e,
            None => {
                let e = confirm_candidate(spec, value, &gate, &opts.engine, &cache)?;
                store.save_eval(&e)?;
                e
            }
        };
        let ev = ProgressEvent::Eval {
            value,
            reps: e.reps,
            mean: e.mean,
            ci95_half_width: e.ci95_half_width,
            contained: e.contained,
        };
        store.append_progress(&ev)?;
        progress(&ev);
        let contained = e.contained;
        evals.insert(value, e);
        Ok(contained)
    };

    // Confirm the bracket endpoints, expanding toward the range edges
    // when the proxy misjudged — this is what guarantees the final
    // bracket contains the DES-confirmed critical value.
    let mut expanded = false;
    let mut outcome = None;
    while !eval(lo, &mut evals, &mut progress)? {
        if lo == spec.search.min {
            outcome = Some(BoundsOutcome::BelowMin);
            break;
        }
        hi = lo;
        lo = (lo / 2).max(spec.search.min);
        expanded = true;
    }
    if outcome.is_none() {
        while eval(hi, &mut evals, &mut progress)? {
            if hi == spec.search.max {
                outcome = Some(BoundsOutcome::AboveMax);
                break;
            }
            lo = hi;
            hi = hi.saturating_mul(2).min(spec.search.max);
            expanded = true;
        }
    }

    // 3. Narrow: integer bisection inside the confirmed bracket.
    let (outcome, critical, violated_at) = match outcome {
        Some(BoundsOutcome::BelowMin) => (BoundsOutcome::BelowMin, None, Some(spec.search.min)),
        Some(BoundsOutcome::AboveMax) => (BoundsOutcome::AboveMax, Some(spec.search.max), None),
        _ => {
            let (clo, chi) = bisect_largest_contained(lo, hi, spec.search.tolerance, |x| {
                eval(x, &mut evals, &mut progress)
            })?;
            (BoundsOutcome::Converged, Some(clo), Some(chi))
        }
    };

    let evaluations: Vec<Evaluation> = evals.into_values().collect();
    let total_reps = evaluations.iter().map(|e| e.reps).sum();
    let report = BoundsReport {
        schema: BOUNDS_REPORT_SCHEMA.to_owned(),
        name: spec.name.clone(),
        spec_hash: hash,
        knob: spec.knob,
        unit: spec.knob.unit().to_owned(),
        target: spec.target,
        threshold_infections: threshold,
        ode_critical: ode,
        bracket_lo: lo,
        bracket_hi: hi,
        bracket_expanded: expanded,
        outcome,
        critical,
        violated_at,
        evaluations,
        total_reps,
    };
    store.append_progress(&ProgressEvent::Done { outcome, critical, total_reps })?;
    progress(&ProgressEvent::Done { outcome, critical, total_reps });
    store.save_report(&report)?;
    span.field("outcome", format!("{outcome:?}"))
        .field("critical", critical.map_or_else(|| "-".to_owned(), |c| c.to_string()))
        .field("ode_critical", ode)
        .field("total_reps", total_reps)
        .finish();
    Ok(BoundsRun { report, cached: false })
}

/// DES-confirms one candidate: replications in global seed order under
/// the sequential gate, batched `engine.threads` at a time. The gate is
/// applied in global order and late batch results past the stopping
/// index are discarded, so `reps` is independent of the thread count.
fn confirm_candidate(
    spec: &BoundsSpec,
    value: u64,
    gate: &SequentialGate,
    engine: &EngineOptions,
    cache: &TopologyCache,
) -> Result<Evaluation, ConfigError> {
    let scenario = spec.knob.apply(&spec.scenario, value);
    scenario.validate()?;
    let threads = engine.threads.max(1);
    let mut acc = RunningSummary::new();
    let mut next = 0u64;
    let mut decided = false;
    while !decided && acc.n() < gate.max_reps {
        let batch = threads.min((gate.max_reps - next).max(1) as usize);
        let results: Vec<Result<f64, ConfigError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..batch)
                .map(|i| {
                    let scenario = &scenario;
                    let seed = derive_seed(spec.master_seed, next + i as u64);
                    scope.spawn(move || {
                        run_scenario_configured(
                            scenario,
                            seed,
                            engine.fel,
                            Some(cache),
                            ProbeKind::None,
                            engine.layout,
                        )
                        .map(|(run, _)| run.final_infected as f64)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("replication thread panicked")).collect()
        });
        next += batch as u64;
        for r in results {
            if decided {
                break; // past the stopping index: discard, errors included
            }
            acc.push(r?);
            if gate.decided(&acc) {
                decided = true;
            }
        }
    }
    let metrics = bounds_metrics();
    metrics.des_confirmations.inc();
    if decided && acc.n() < gate.max_reps {
        metrics.gate_stops.inc();
    }
    mpvsim_obs::log::debug(
        LOG_TARGET,
        "des confirmation",
        &[
            ("value", value.into()),
            ("reps", acc.n().into()),
            ("mean", acc.mean().into()),
            ("gate_stopped", (decided && acc.n() < gate.max_reps).into()),
        ],
    );
    Ok(Evaluation {
        value,
        reps: acc.n(),
        mean: acc.mean(),
        ci95_half_width: acc.ci95_half_width(),
        contained: gate.below(&acc),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PopulationConfig;
    use crate::virus::VirusProfile;
    use mpvsim_des::DelaySpec;
    use mpvsim_topology::GraphSpec;

    fn tiny_scenario() -> ScenarioConfig {
        let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
        c.population = PopulationConfig {
            topology: GraphSpec::erdos_renyi(40, 6.0),
            vulnerable_fraction: 0.8,
        };
        c.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
        c.horizon = SimDuration::from_hours(6);
        c.detect_threshold = 5;
        c
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mpvsim-bounds-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spec_round_trips_and_canonicalizes_defaults() {
        let spec = BoundsSpec::new("q", BoundsKnob::ScanDelay, tiny_scenario());
        let json = spec.canonical_json();
        let back = BoundsSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.content_hash(), spec.content_hash());
        assert_eq!(spec.content_hash().len(), 16);
        // Terse documents take the defaults and canonicalize to them.
        let terse = format!(
            "{{\"name\":\"q\",\"knob\":{{\"kind\":\"scan_delay\"}},\
             \"search\":{{\"min\":900,\"max\":172800,\"tolerance\":900}},\"scenario\":{}}}",
            serde_json::to_string(&spec.scenario).unwrap()
        );
        let parsed = BoundsSpec::from_json(terse.as_bytes()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn unknown_fields_and_wrong_schema_are_rejected() {
        let spec = BoundsSpec::new("q", BoundsKnob::ScanDelay, tiny_scenario());
        let json = String::from_utf8(spec.canonical_json()).unwrap();
        let doc = format!("{{\"surprise\":1,{}", &json[1..]);
        let err = BoundsSpec::from_json(doc.as_bytes()).unwrap_err();
        assert!(matches!(err, ConfigError::Malformed { .. }), "got {err:?}");

        let mut wrong = spec.clone();
        wrong.schema = "mpvsim-bounds/9".to_owned();
        assert_eq!(
            wrong.validate().unwrap_err(),
            ConfigError::schema("mpvsim-bounds/9", BOUNDS_SCHEMA)
        );
    }

    #[test]
    fn validation_rejects_bad_ranges_targets_and_policies() {
        let base = BoundsSpec::new("q", BoundsKnob::ScanDelay, tiny_scenario());
        let cases: Vec<(BoundsSpec, &str)> = vec![
            (base.clone().with_search(SearchRange { min: 10, max: 10, tolerance: 1 }), "search"),
            (
                base.clone().with_search(SearchRange { min: 1, max: 9, tolerance: 0 }),
                "search.tolerance",
            ),
            (base.clone().with_target(0.0), "target"),
            (base.clone().with_target(1.0), "target"),
            (
                base.clone()
                    .with_confirm(ConfirmPolicy { min_reps: 1, ..ConfirmPolicy::default() }),
                "confirm.min_reps",
            ),
            (
                base.clone().with_confirm(ConfirmPolicy {
                    min_reps: 8,
                    max_reps: 4,
                    ..ConfirmPolicy::default()
                }),
                "confirm.max_reps",
            ),
        ];
        for (spec, field) in cases {
            let err = spec.validate().unwrap_err();
            assert_eq!(err.field(), Some(field), "got {err}");
        }
        let bl = BoundsSpec::new("q", BoundsKnob::BlacklistThreshold, tiny_scenario())
            .with_search(SearchRange { min: 1, max: u64::from(u32::MAX) + 1, tolerance: 1 });
        assert_eq!(bl.validate().unwrap_err().field(), Some("search.max"));
    }

    #[test]
    fn knob_names_round_trip() {
        for knob in [BoundsKnob::ScanDelay, BoundsKnob::PatchDelay, BoundsKnob::BlacklistThreshold]
        {
            assert_eq!(BoundsKnob::from_cli_name(knob.cli_name()), Some(knob));
        }
        assert_eq!(BoundsKnob::from_cli_name("nonsense"), None);
    }

    #[test]
    fn knobs_apply_to_the_right_response_slot() {
        let s = tiny_scenario();
        let scan = BoundsKnob::ScanDelay.apply(&s, 7200);
        assert_eq!(
            scan.response.signature_scan.unwrap().activation_delay,
            SimDuration::from_hours(2)
        );
        let patch = BoundsKnob::PatchDelay.apply(&s, 3600);
        let imm = patch.response.immunization.unwrap();
        assert_eq!(imm.development_time, SimDuration::from_hours(1));
        assert_eq!(imm.rollout_duration, DEFAULT_ROLLOUT);
        let bl = BoundsKnob::BlacklistThreshold.apply(&s, 25);
        assert_eq!(bl.response.blacklist.unwrap().threshold, 25);
        // A pre-configured rollout window survives the knob.
        let mut pre = s.clone();
        pre.response.immunization =
            Some(Immunization::uniform(SimDuration::from_hours(48), SimDuration::from_hours(1)));
        let patched = BoundsKnob::PatchDelay.apply(&pre, 7200);
        assert_eq!(
            patched.response.immunization.unwrap().rollout_duration,
            SimDuration::from_hours(1)
        );
    }

    #[test]
    fn bisection_converges_on_a_synthetic_monotone_predicate() {
        for critical in [5u64, 77, 899, 4999] {
            let mut calls = 0u32;
            let (lo, hi) = bisect_largest_contained(1, 5000, 1, |x| {
                calls += 1;
                Ok::<bool, std::convert::Infallible>(x <= critical)
            })
            .unwrap();
            assert_eq!(lo, critical, "largest contained value");
            assert_eq!(hi, critical + 1, "smallest violating value");
            assert!(calls <= 14, "log2(5000) ≈ 12.3 probes, used {calls}");
        }
    }

    #[test]
    fn bisection_respects_tolerance() {
        let (lo, hi) = bisect_largest_contained(0, 1 << 20, 1000, |x| {
            Ok::<bool, std::convert::Infallible>(x <= 123_456)
        })
        .unwrap();
        assert!(hi - lo <= 1000);
        assert!(lo <= 123_456 && 123_456 < hi);
    }

    #[test]
    fn bisection_propagates_predicate_errors() {
        let r =
            bisect_largest_contained(
                0,
                100,
                1,
                |x| {
                    if x == 50 {
                        Err("boom")
                    } else {
                        Ok(x <= 10)
                    }
                },
            );
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn sequential_confirmation_is_thread_count_invariant() {
        let spec = BoundsSpec::new("t", BoundsKnob::ScanDelay, tiny_scenario())
            .with_confirm(ConfirmPolicy { min_reps: 3, max_reps: 9, min_half_width: 0.5 });
        let gate = SequentialGate {
            min_reps: 3,
            max_reps: 9,
            min_half_width: 0.5,
            threshold: spec.threshold_infections(),
        };
        let cache = TopologyCache::shared();
        let one = confirm_candidate(&spec, 3600, &gate, &EngineOptions::new(), &cache).unwrap();
        for threads in [2usize, 4, 8] {
            let many = confirm_candidate(
                &spec,
                3600,
                &gate,
                &EngineOptions::new().with_threads(threads),
                &cache,
            )
            .unwrap();
            assert_eq!(many, one, "stopping index must not depend on thread count");
        }
    }

    #[test]
    fn solve_is_deterministic_cached_and_bracket_contains_critical() {
        let spec = BoundsSpec::new("scan", BoundsKnob::ScanDelay, tiny_scenario())
            .with_search(SearchRange { min: 900, max: 21_600, tolerance: 900 })
            .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 4, min_half_width: 1.0 });
        let root_a = tmp_root("solve-a");
        let root_b = tmp_root("solve-b");
        let run_a = solve_bounds(&spec, &root_a, &BoundsOptions::default(), |_| {}).unwrap();
        let run_b = solve_bounds(&spec, &root_b, &BoundsOptions::default(), |_| {}).unwrap();
        assert!(!run_a.cached && !run_b.cached);
        assert_eq!(run_a.report, run_b.report, "two fresh runs must agree exactly");

        let report = &run_a.report;
        assert_eq!(report.schema, BOUNDS_REPORT_SCHEMA);
        if report.outcome == BoundsOutcome::Converged {
            let critical = report.critical.expect("converged has a critical value");
            assert!(report.bracket_lo <= critical && critical <= report.bracket_hi);
            assert!(report.violated_at.unwrap() - critical <= spec.search.tolerance);
        }
        assert!(!report.evaluations.is_empty());
        assert!(report.total_reps >= spec.confirm.min_reps);

        // Repeat into the same store: a cache hit, byte-identical files.
        let bytes_before = fs::read(root_a.join(spec.content_hash()).join("report.json")).unwrap();
        let progress_before =
            fs::read(root_a.join(spec.content_hash()).join("progress.jsonl")).unwrap();
        let again = solve_bounds(&spec, &root_a, &BoundsOptions::default(), |_| {}).unwrap();
        assert!(again.cached);
        assert_eq!(again.report, run_a.report);
        assert_eq!(
            fs::read(root_a.join(spec.content_hash()).join("report.json")).unwrap(),
            bytes_before
        );
        assert_eq!(
            fs::read(root_a.join(spec.content_hash()).join("progress.jsonl")).unwrap(),
            progress_before
        );
        let _ = fs::remove_dir_all(&root_a);
        let _ = fs::remove_dir_all(&root_b);
    }

    #[test]
    fn engine_knobs_never_change_the_report() {
        let spec = BoundsSpec::new("scan", BoundsKnob::ScanDelay, tiny_scenario())
            .with_search(SearchRange { min: 900, max: 14_400, tolerance: 1800 })
            .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 1.0 });
        let root_a = tmp_root("engine-a");
        let root_b = tmp_root("engine-b");
        let single = solve_bounds(&spec, &root_a, &BoundsOptions::default(), |_| {}).unwrap();
        let threaded = solve_bounds(
            &spec,
            &root_b,
            &BoundsOptions { engine: EngineOptions::new().with_threads(4) },
            |_| {},
        )
        .unwrap();
        assert_eq!(single.report, threaded.report);
        let _ = fs::remove_dir_all(&root_a);
        let _ = fs::remove_dir_all(&root_b);
    }

    #[test]
    fn impossible_target_reports_below_min() {
        // Virus 3 on a tiny graph always infects more than ~0 phones:
        // an absurdly tight target cannot be met even at min delay.
        let mut spec = BoundsSpec::new("hopeless", BoundsKnob::ScanDelay, tiny_scenario())
            .with_search(SearchRange { min: 900, max: 7200, tolerance: 900 })
            .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 0.1 });
        spec.target = 1e-9;
        let root = tmp_root("belowmin");
        let run = solve_bounds(&spec, &root, &BoundsOptions::default(), |_| {}).unwrap();
        assert_eq!(run.report.outcome, BoundsOutcome::BelowMin);
        assert_eq!(run.report.critical, None);
        assert_eq!(run.report.violated_at, Some(900));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn trivial_target_reports_above_max() {
        // A target of 99.9 % of susceptible is met even with the slowest
        // response in range.
        let mut spec = BoundsSpec::new("trivial", BoundsKnob::ScanDelay, tiny_scenario())
            .with_search(SearchRange { min: 900, max: 7200, tolerance: 900 })
            .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 0.1 });
        spec.target = 0.999;
        let root = tmp_root("abovemax");
        let run = solve_bounds(&spec, &root, &BoundsOptions::default(), |_| {}).unwrap();
        assert_eq!(run.report.outcome, BoundsOutcome::AboveMax);
        assert_eq!(run.report.critical, Some(7200));
        assert_eq!(run.report.violated_at, None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn store_refuses_a_different_spec_under_the_same_path() {
        let spec = BoundsSpec::new("a", BoundsKnob::ScanDelay, tiny_scenario());
        let root = tmp_root("mix");
        let store = BoundsStore::init(&root, &spec).unwrap();
        // Corrupt the manifest to simulate a hash collision / tamper.
        fs::write(store.dir().join("manifest.json"), b"{}").unwrap();
        let err = BoundsStore::init(&root, &spec).unwrap_err();
        assert!(matches!(err, SweepError::Store(_)), "got {err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn progress_events_serialize_without_timestamps() {
        let ev = ProgressEvent::Eval {
            value: 3600,
            reps: 4,
            mean: 12.5,
            ci95_half_width: 1.25,
            contained: true,
        };
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.contains("\"event\":\"eval\""), "got {line}");
        assert!(!line.contains("time"), "progress lines must be wall-clock-free: {line}");
        let back: ProgressEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
    }
}
