//! Deprecated shim: forwards to `mpvsim study fig6_monitoring`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig6_monitoring");
}
