//! Deprecated shim: forwards to `mpvsim study matrix`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("matrix");
}
