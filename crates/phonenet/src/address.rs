//! Random dialing: the number space a random-propagation virus dials into.
//!
//! Virus 3 propagates "by dialing random mobile phone numbers … in France
//! all mobile phone numbers start with the same prefix, and approximately
//! one third of the possible phone numbers with the mobile phone prefix
//! are valid". [`AddressSpace`] models exactly that: each dial attempt
//! hits a real phone with probability `valid_fraction`, chosen uniformly
//! from the population; otherwise the number is unassigned and the message
//! vanishes (while still counting as a send attempt on the sender side).

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::phone::PhoneId;

/// The dialable number space over a population of `population_size`
/// phones, of which a `valid_fraction` of random dials reach a real phone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AddressSpace {
    population_size: u32,
    valid_fraction: f64,
}

impl AddressSpace {
    /// The paper's default: one third of dialed numbers are valid.
    pub const DEFAULT_VALID_FRACTION: f64 = 1.0 / 3.0;

    /// Creates an address space.
    ///
    /// # Panics
    ///
    /// Panics if `valid_fraction` is not within `[0, 1]` or the population
    /// is empty.
    pub fn new(population_size: u32, valid_fraction: f64) -> Self {
        assert!(population_size > 0, "address space needs a population");
        assert!(
            (0.0..=1.0).contains(&valid_fraction) && valid_fraction.is_finite(),
            "valid_fraction must be in [0, 1]"
        );
        AddressSpace { population_size, valid_fraction }
    }

    /// Population size covered by the valid numbers.
    pub fn population_size(&self) -> u32 {
        self.population_size
    }

    /// Fraction of random dials that reach a real phone.
    pub fn valid_fraction(&self) -> f64 {
        self.valid_fraction
    }

    /// Dials a uniformly random number: `Some(phone)` with probability
    /// `valid_fraction` (uniform over the population), `None` for an
    /// unassigned number.
    pub fn dial_random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PhoneId> {
        if rng.random::<f64>() < self.valid_fraction {
            Some(PhoneId(rng.random_range(0..self.population_size)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_fraction_respected() {
        let space = AddressSpace::new(1000, 1.0 / 3.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000;
        let hits = (0..n).filter(|_| space.dial_random(&mut rng).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 1.0 / 3.0).abs() < 0.01, "valid rate {rate}");
    }

    #[test]
    fn dials_cover_population_uniformly() {
        let space = AddressSpace::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let id = space.dial_random(&mut rng).expect("fraction 1.0 always valid");
            counts[id.index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "phone {i} hit {c} times, expected ≈1000");
        }
    }

    #[test]
    fn zero_fraction_never_connects() {
        let space = AddressSpace::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..1000).all(|_| space.dial_random(&mut rng).is_none()));
    }

    #[test]
    fn accessors() {
        let space = AddressSpace::new(50, 0.25);
        assert_eq!(space.population_size(), 50);
        assert_eq!(space.valid_fraction(), 0.25);
    }

    #[test]
    #[should_panic(expected = "needs a population")]
    fn empty_population_rejected() {
        let _ = AddressSpace::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_rejected() {
        let _ = AddressSpace::new(10, 1.5);
    }
}
