//! Integration tests: reproducibility guarantees across the whole stack.
//!
//! A `(ScenarioConfig, seed)` pair must determine the trajectory exactly,
//! independent of thread count, and different seeds must explore
//! different topologies and dynamics.

use mpvsim::prelude::*;

fn config() -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(VirusProfile::virus3());
    c.population = PopulationConfig::paper_default(200);
    c.horizon = SimDuration::from_hours(12);
    c
}

#[test]
fn identical_seeds_identical_runs() {
    let c = config();
    let a = run_scenario(&c, 11).expect("valid");
    let b = run_scenario(&c, 11).expect("valid");
    assert_eq!(a.series, b.series);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.final_infected, b.final_infected);
    assert_eq!(a.activation.detected_at, b.activation.detected_at);
}

#[test]
fn different_seeds_diverge() {
    let c = config();
    let a = run_scenario(&c, 1).expect("valid");
    let b = run_scenario(&c, 2).expect("valid");
    assert!(
        a.series != b.series || a.stats != b.stats,
        "two seeds produced byte-identical trajectories"
    );
}

#[test]
fn experiment_is_thread_count_invariant() {
    let c = config();
    let engine = |t| EngineOptions::new().with_threads(t);
    let serial = ExperimentPlan::new(6).master_seed(42).engine(engine(1)).run(&c).expect("valid");
    let parallel = ExperimentPlan::new(6).master_seed(42).engine(engine(6)).run(&c).expect("valid");
    assert_eq!(serial.aggregate.mean, parallel.aggregate.mean);
    assert_eq!(serial.aggregate.ci95_half_width, parallel.aggregate.ci95_half_width);
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(s.final_infected, p.final_infected);
        assert_eq!(s.stats, p.stats);
    }
}

#[test]
fn replications_within_an_experiment_differ() {
    let c = config();
    let e = ExperimentPlan::new(4)
        .master_seed(7)
        .engine(EngineOptions::new().with_threads(2))
        .run(&c)
        .expect("valid");
    let finals: Vec<usize> = e.runs.iter().map(|r| r.final_infected).collect();
    let all_same = finals.windows(2).all(|w| w[0] == w[1]);
    let stats_same = e.runs.windows(2).all(|w| w[0].stats == w[1].stats);
    assert!(
        !(all_same && stats_same),
        "replications must use independent random streams: {finals:?}"
    );
}

#[test]
fn master_seed_changes_every_replication() {
    let c = config();
    let two = EngineOptions::new().with_threads(2);
    let a = ExperimentPlan::new(3).master_seed(100).engine(two).run(&c).expect("valid");
    let b = ExperimentPlan::new(3).master_seed(101).engine(two).run(&c).expect("valid");
    assert_ne!(
        a.aggregate.mean, b.aggregate.mean,
        "different master seeds must give different aggregates"
    );
}

#[test]
fn figure_runs_are_fel_backend_invariant() {
    // A whole figure workload — topology generation, replications,
    // aggregation — must be byte-identical across future-event-list
    // backends: the FEL is a pure performance knob.
    use mpvsim::core::figures::{fig6_monitoring, FigureOptions};

    let opts = |fel| FigureOptions {
        reps: 2,
        master_seed: 5,
        population: 60,
        engine: EngineOptions::new().with_threads(2).with_fel(fel),
        ..FigureOptions::default()
    };
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    let heap = fig6_monitoring(&opts(FelKind::BinaryHeap)).expect("valid");
    for fel in
        [FelKind::Calendar, FelKind::CalendarTuned { bucket_width_secs: 32, bucket_count: 64 }]
    {
        let cal = fig6_monitoring(&opts(fel)).expect("valid");
        assert_eq!(heap.len(), cal.len());
        for (h, c) in heap.iter().zip(&cal) {
            assert_eq!(h.label, c.label);
            assert_eq!(
                bits(&h.result.aggregate.mean),
                bits(&c.result.aggregate.mean),
                "{fel:?} changed the mean curve of {}",
                h.label
            );
            assert_eq!(
                bits(&h.result.aggregate.ci95_half_width),
                bits(&c.result.aggregate.ci95_half_width),
                "{fel:?} changed the confidence band of {}",
                h.label
            );
            assert_eq!(
                h.result.final_infected.mean.to_bits(),
                c.result.final_infected.mean.to_bits(),
                "{fel:?} changed the final-infected summary of {}",
                h.label
            );
            for (a, b) in h.result.runs.iter().zip(&c.result.runs) {
                assert_eq!(bits(a.series.values()), bits(b.series.values()), "{fel:?}");
                assert_eq!(bits(a.traffic.values()), bits(b.traffic.values()), "{fel:?}");
                assert_eq!(a.stats, b.stats, "{fel:?}");
                assert_eq!(a.final_infected, b.final_infected, "{fel:?}");
            }
        }
    }
}

#[test]
fn config_is_serializable_data() {
    // Scenario configurations are plain data; a round-trip through the
    // serde data model must preserve them so experiments can be archived
    // alongside their results.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<ScenarioConfig>();
    assert_serde::<VirusProfile>();
    assert_serde::<ResponseConfig>();
    assert_serde::<GraphSpec>();
}
