//! Pointwise aggregation of replication time series.
//!
//! The paper plots expected infection trajectories; we estimate them as the
//! pointwise mean over replications, with a normal-approximation 95 %
//! confidence band to make the Monte-Carlo error visible.

use serde::{Deserialize, Serialize};

use crate::series::TimeSeries;
use crate::summary::Z_95;

/// The pointwise mean of replication series, with a 95 % confidence band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSeries {
    /// Sampling step shared by all replications, in hours.
    pub step_hours: f64,
    /// Pointwise means.
    pub mean: Vec<f64>,
    /// Pointwise 95 % confidence half-widths.
    pub ci95_half_width: Vec<f64>,
    /// Number of replications aggregated.
    pub replications: usize,
}

impl AggregateSeries {
    /// The mean trajectory as a [`TimeSeries`].
    pub fn mean_series(&self) -> TimeSeries {
        TimeSeries::from_values(self.step_hours, self.mean.clone())
    }

    /// `(time_hours, mean, ci_half_width)` triples.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.mean
            .iter()
            .zip(&self.ci95_half_width)
            .enumerate()
            .map(move |(k, (&m, &c))| (k as f64 * self.step_hours, m, c))
    }
}

/// Aggregates replications pointwise.
///
/// All series must share the same step; series shorter than the longest
/// one are treated as holding their final value (the infection count is a
/// plateauing step function, so this is the right extension).
///
/// Returns `None` when `series` is empty or any series is empty.
pub fn aggregate(series: &[TimeSeries]) -> Option<AggregateSeries> {
    let first = series.first()?;
    let step = first.step_hours();
    if series.iter().any(|s| s.is_empty()) {
        return None;
    }
    assert!(
        series.iter().all(|s| (s.step_hours() - step).abs() < 1e-12),
        "aggregate: all series must share the same sampling step"
    );
    let len = series.iter().map(|s| s.len()).max().expect("nonempty");
    let n = series.len();
    let mut mean = Vec::with_capacity(len);
    let mut ci = Vec::with_capacity(len);
    for k in 0..len {
        let value_at = |s: &TimeSeries| -> f64 {
            let vals = s.values();
            vals[k.min(vals.len() - 1)]
        };
        let m = series.iter().map(value_at).sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            series.iter().map(|s| (value_at(s) - m).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        mean.push(m);
        ci.push(Z_95 * (var / n as f64).sqrt());
    }
    Some(AggregateSeries {
        step_hours: step,
        mean,
        ci95_half_width: ci,
        replications: n,
    })
}

/// Convenience: the pointwise-mean trajectory of `series`.
///
/// See [`aggregate`] for the alignment rules.
pub fn mean_series(series: &[TimeSeries]) -> Option<TimeSeries> {
    aggregate(series).map(|a| a.mean_series())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_none() {
        assert!(aggregate(&[]).is_none());
        assert!(mean_series(&[]).is_none());
        assert!(aggregate(&[TimeSeries::new(1.0)]).is_none());
    }

    #[test]
    fn single_series_is_its_own_mean() {
        let s = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0]);
        let agg = aggregate(std::slice::from_ref(&s)).unwrap();
        assert_eq!(agg.mean, vec![1.0, 2.0, 3.0]);
        assert_eq!(agg.ci95_half_width, vec![0.0, 0.0, 0.0]);
        assert_eq!(agg.replications, 1);
    }

    #[test]
    fn pointwise_mean_of_two() {
        let a = TimeSeries::from_values(1.0, vec![0.0, 2.0, 4.0]);
        let b = TimeSeries::from_values(1.0, vec![2.0, 4.0, 8.0]);
        let m = mean_series(&[a, b]).unwrap();
        assert_eq!(m.values(), &[1.0, 3.0, 6.0]);
    }

    #[test]
    fn shorter_series_extends_with_final_value() {
        let a = TimeSeries::from_values(1.0, vec![0.0, 10.0]);
        let b = TimeSeries::from_values(1.0, vec![0.0, 0.0, 0.0, 0.0]);
        let m = mean_series(&[a, b]).unwrap();
        // a holds 10.0 after its end.
        assert_eq!(m.values(), &[0.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn ci_positive_when_replications_disagree() {
        let a = TimeSeries::from_values(1.0, vec![0.0, 0.0]);
        let b = TimeSeries::from_values(1.0, vec![0.0, 10.0]);
        let agg = aggregate(&[a, b]).unwrap();
        assert_eq!(agg.ci95_half_width[0], 0.0);
        assert!(agg.ci95_half_width[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "same sampling step")]
    fn mismatched_steps_panic() {
        let a = TimeSeries::from_values(1.0, vec![0.0]);
        let b = TimeSeries::from_values(2.0, vec![0.0]);
        let _ = aggregate(&[a, b]);
    }

    #[test]
    fn points_iterate_triples() {
        let a = TimeSeries::from_values(0.5, vec![1.0, 3.0]);
        let agg = aggregate(std::slice::from_ref(&a)).unwrap();
        let pts: Vec<_> = agg.points().collect();
        assert_eq!(pts, vec![(0.0, 1.0, 0.0), (0.5, 3.0, 0.0)]);
    }
}
