//! One experiment definition per figure (and per quantitative prose
//! claim) of the paper's evaluation section. Each study is **declarative
//! first**: a `*_cells` function builds the labelled `(label, config)`
//! cells, and the classic `figN(...)` entry points simply execute those
//! cells with [`run_cells`]. The CLI binaries, the sweep orchestrator
//! (see [`crate::sweep`]) and the benchmark harness all consume these
//! definitions, so each figure lives in exactly one place.
//!
//! | id | paper artefact | function |
//! |---|---|---|
//! | FIG1 | Fig. 1 baseline curves, 4 viruses | [`fig1_baseline`] |
//! | FIG2 | Fig. 2 signature scan, delays 6/12/24 h (Virus 1) | [`fig2_virus_scan`] |
//! | FIG3 | Fig. 3 detection accuracy .80–.99 (Virus 2) | [`fig3_detection`] |
//! | FIG4 | Fig. 4 user education (all viruses) | [`fig4_education`] |
//! | FIG5 | Fig. 5 immunization, dev × rollout (Virus 4) | [`fig5_immunization`] |
//! | FIG6 | Fig. 6 monitoring waits 15/30/60 min (Virus 3) | [`fig6_monitoring`] |
//! | FIG7 | Fig. 7 blacklist thresholds 10–40 (Virus 3) | [`fig7_blacklist`] |
//! | TXT-BL | §5.2 blacklisting vs Viruses 1/2/4 | [`blacklist_matrix`] |
//! | TXT-SCALE | §5.3 "results scale … to 2000 phones" | [`scaling_study`] |
//! | EXT-COMBO | §6 combined mechanisms | [`combo_study`] |
//!
//! The stable-name registry over all of these lives in
//! [`crate::studies`].

use std::sync::Arc;

use mpvsim_des::{ObserverHandle, SimDuration};

use crate::config::{ConfigError, MobilityConfig, PopulationConfig, ScenarioConfig};
use crate::response::{
    Blacklist, DetectionAlgorithm, Immunization, Monitoring, ResponseConfig, SignatureScan,
    UserEducation,
};
use crate::run::{EngineOptions, ExperimentPlan, ExperimentResult, TopologyCache};
use crate::spec::ScenarioSpec;
use crate::virus::{BluetoothVector, VirusProfile};

/// Common knobs for every figure experiment.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Replications per scenario.
    pub reps: u64,
    /// Master seed; replication `r` of every scenario derives from it.
    pub master_seed: u64,
    /// Population size (the paper uses 1000; the scaling study overrides
    /// this).
    pub population: usize,
    /// Observer attached to every experiment the figure runs (progress
    /// reporting, metrics capture); defaults to a no-op and never affects
    /// the curves.
    pub observer: ObserverHandle,
    /// Engine knobs (FEL backend, layout, probe, threads); all pure
    /// performance/instrumentation switches that never affect the curves
    /// (see [`EngineOptions`]). Defaults to four worker threads.
    pub engine: EngineOptions,
    /// Shared topology cache; cells on the same `(GraphSpec, seed)`
    /// network skip regeneration. A pure performance knob that never
    /// affects the curves (see [`TopologyCache`]).
    pub topology_cache: Option<Arc<TopologyCache>>,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            reps: 10,
            master_seed: 2007,
            population: 1000,
            observer: ObserverHandle::noop(),
            engine: EngineOptions::new().with_threads(4),
            topology_cache: None,
        }
    }
}

impl FigureOptions {
    /// A faster variant for smoke tests and benches: fewer replications.
    pub fn quick() -> Self {
        FigureOptions { reps: 3, ..FigureOptions::default() }
    }

    /// The [`ExperimentPlan`] these options describe.
    pub fn plan(&self) -> ExperimentPlan {
        let plan = ExperimentPlan::new(self.reps)
            .master_seed(self.master_seed)
            .engine(self.engine)
            .observer_handle(self.observer.clone());
        match &self.topology_cache {
            Some(cache) => plan.topology_cache(cache.clone()),
            None => plan,
        }
    }
}

/// One declarative cell of a study: a labelled scenario, not yet run.
///
/// A cell is a thin wrapper over the canonical wire document
/// ([`ScenarioSpec`]) — the registry, the sweep store and the
/// `mpvsim serve` API all speak the same spec, and execution always
/// goes through the spec's validation funnel
/// ([`ScenarioSpec::to_config`]).
#[derive(Debug, Clone)]
pub struct StudyCell {
    /// The complete scenario this cell runs, in wire form. The spec's
    /// `name` is the legend label, matching the paper's (e.g.
    /// "6-Hour Delay").
    pub spec: ScenarioSpec,
}

impl StudyCell {
    /// Legend label, matching the paper's (e.g. "6-Hour Delay").
    pub fn label(&self) -> &str {
        &self.spec.name
    }

    /// The scenario this cell runs, without validation; execution paths
    /// use [`ScenarioSpec::to_config`] instead.
    pub fn config(&self) -> &ScenarioConfig {
        &self.spec.scenario
    }
}

fn cell(label: impl Into<String>, config: ScenarioConfig) -> StudyCell {
    StudyCell { spec: ScenarioSpec::new(label, config) }
}

/// One labelled curve of a figure.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LabeledResult {
    /// Legend label, matching the paper's (e.g. "6-Hour Delay").
    pub label: String,
    /// The replicated, aggregated experiment behind the curve.
    pub result: ExperimentResult,
}

/// Executes study cells in order with the replication plan described by
/// `opts`. Every `figN` entry point is exactly
/// `run_cells(&figN_cells(opts), opts)`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation or failed
/// replications.
pub fn run_cells(
    cells: &[StudyCell],
    opts: &FigureOptions,
) -> Result<Vec<LabeledResult>, ConfigError> {
    cells
        .iter()
        .map(|c| {
            let config = c.spec.to_config()?;
            Ok(LabeledResult { label: c.spec.name.clone(), result: opts.plan().run(config)? })
        })
        .collect()
}

fn base_config(virus: VirusProfile, opts: &FigureOptions) -> ScenarioConfig {
    ScenarioConfig::baseline(virus)
        .with_population(PopulationConfig::paper_default(opts.population))
}

/// **Figure 1** cells — baseline infection curves for all four viruses,
/// no response mechanisms.
pub fn fig1_baseline_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    VirusProfile::all_four()
        .into_iter()
        .map(|v| {
            let label = v.name.clone();
            cell(label, base_config(v, opts))
        })
        .collect()
}

/// **Figure 1** — baseline infection curves for all four viruses, no
/// response mechanisms.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig1_baseline(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig1_baseline_cells(opts), opts)
}

/// **Figure 2** cells — gateway signature scan against Virus 1,
/// activation delay 6 / 12 / 24 h after detectability (plus baseline).
pub fn fig2_virus_scan_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = vec![cell("Baseline", base_config(VirusProfile::virus1(), opts))];
    for delay_h in [6u64, 12, 24] {
        let config = base_config(VirusProfile::virus1(), opts).with_response(
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(delay_h),
            }),
        );
        out.push(cell(format!("{delay_h}-Hour Delay"), config));
    }
    out
}

/// **Figure 2** — gateway signature scan against Virus 1, activation
/// delay 6 / 12 / 24 h after detectability (plus the baseline).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig2_virus_scan(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig2_virus_scan_cells(opts), opts)
}

/// **Figure 3** cells — gateway detection algorithm against Virus 2 at
/// accuracies 0.99 / 0.95 / 0.90 / 0.85 / 0.80 (plus baseline).
pub fn fig3_detection_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = vec![cell("Baseline", base_config(VirusProfile::virus2(), opts))];
    for accuracy in [0.99, 0.95, 0.90, 0.85, 0.80] {
        let config = base_config(VirusProfile::virus2(), opts).with_response(
            ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(accuracy)),
        );
        out.push(cell(format!("{accuracy:.2} Accuracy"), config));
    }
    out
}

/// **Figure 3** — gateway detection algorithm against Virus 2 at
/// accuracies 0.99 / 0.95 / 0.90 / 0.85 / 0.80 (plus the baseline).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig3_detection(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig3_detection_cells(opts), opts)
}

/// **Figure 4** cells — user education: every virus's baseline (total
/// acceptance 0.40) against acceptance scaled to ≈ 0.20 and ≈ 0.10.
pub fn fig4_education_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = Vec::new();
    for v in VirusProfile::all_four() {
        let name = v.name.clone();
        out.push(cell(name.clone(), base_config(v.clone(), opts)));
        for (scale, tag) in [(0.5, "User Ed 0.20"), (0.25, "User Ed 0.10")] {
            let config = base_config(v.clone(), opts).with_response(
                ResponseConfig::none().with_education(UserEducation { acceptance_scale: scale }),
            );
            out.push(cell(format!("{name} {tag}"), config));
        }
    }
    out
}

/// **Figure 4** — user education: every virus's baseline (total
/// acceptance 0.40) against acceptance scaled to ≈ 0.20, plus the ≈ 0.10
/// case the text discusses.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig4_education(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig4_education_cells(opts), opts)
}

/// **Figure 5** cells — immunization against Virus 4: patch development
/// 24 or 48 h, rollout 1 / 6 / 24 h (plus baseline).
pub fn fig5_immunization_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = vec![cell("Baseline", base_config(VirusProfile::virus4(), opts))];
    for dev_h in [24u64, 48] {
        for rollout_h in [1u64, 6, 24] {
            let config = base_config(VirusProfile::virus4(), opts).with_response(
                ResponseConfig::none().with_immunization(Immunization::uniform(
                    SimDuration::from_hours(dev_h),
                    SimDuration::from_hours(rollout_h),
                )),
            );
            out.push(cell(format!("Hours {dev_h}-{}", dev_h + rollout_h), config));
        }
    }
    out
}

/// **Figure 5** — immunization against Virus 4: patch development 24 or
/// 48 h, rollout 1 / 6 / 24 h (plus the baseline). Labels follow the
/// paper's "Hours 24-30" convention (development end — rollout end).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig5_immunization(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig5_immunization_cells(opts), opts)
}

/// **Figure 6** cells — monitoring against Virus 3: forced waits of
/// 15 / 30 / 60 minutes (plus baseline), observed over 25 hours.
pub fn fig6_monitoring_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let horizon = SimDuration::from_hours(25);
    let mut out =
        vec![cell("Baseline", base_config(VirusProfile::virus3(), opts).with_horizon(horizon))];
    for wait_min in [15u64, 30, 60] {
        let config = base_config(VirusProfile::virus3(), opts).with_horizon(horizon).with_response(
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(wait_min))),
        );
        out.push(cell(format!("{wait_min}-Minute Wait"), config));
    }
    out
}

/// **Figure 6** — monitoring against Virus 3: forced waits of 15 / 30 /
/// 60 minutes (plus the baseline), observed over 25 hours.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig6_monitoring(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig6_monitoring_cells(opts), opts)
}

/// **Figure 7** cells — blacklisting against Virus 3: thresholds of
/// 10 / 20 / 30 / 40 suspected messages (plus baseline), over 25 h.
pub fn fig7_blacklist_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let horizon = SimDuration::from_hours(25);
    let mut out =
        vec![cell("Baseline", base_config(VirusProfile::virus3(), opts).with_horizon(horizon))];
    for threshold in [10u32, 20, 30, 40] {
        let config = base_config(VirusProfile::virus3(), opts)
            .with_horizon(horizon)
            .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold }));
        out.push(cell(format!("{threshold} Messages"), config));
    }
    out
}

/// **Figure 7** — blacklisting against Virus 3: thresholds of 10 / 20 /
/// 30 / 40 suspected messages (plus the baseline), observed over 25 h.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn fig7_blacklist(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&fig7_blacklist_cells(opts), opts)
}

/// **§5.2 prose claim** cells — blacklisting against the contact-list
/// viruses 1, 2 and 4 at thresholds 10 / 20 / 30 / 40, plus baselines.
pub fn blacklist_matrix_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = Vec::new();
    for v in [VirusProfile::virus1(), VirusProfile::virus2(), VirusProfile::virus4()] {
        let name = v.name.clone();
        out.push(cell(format!("{name} Baseline"), base_config(v.clone(), opts)));
        for threshold in [10u32, 20, 30, 40] {
            let config = base_config(v.clone(), opts)
                .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold }));
            out.push(cell(format!("{name} Threshold {threshold}"), config));
        }
    }
    out
}

/// **§5.2 prose claim** — blacklisting against the contact-list viruses:
/// Viruses 1, 2 and 4 at thresholds 10 / 20 / 30 / 40, plus their
/// baselines. The paper: threshold 10 restricts Viruses 1 and 4 to
/// ≈ 60 % of baseline penetration; all thresholds are ineffective against
/// multi-recipient Virus 2.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn blacklist_matrix(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&blacklist_matrix_cells(opts), opts)
}

/// Population size from which scaling cells switch to bounded-memory
/// settings (see [`scaling_study_cells`]).
pub const SCALING_BOUNDED_MIN_POPULATION: usize = 100_000;

/// Inbox admission cap the large scaling cells run with. 64 pending
/// messages per phone is far above anything the paper's viruses sustain
/// at a single phone, so small-population trajectories are unaffected,
/// while at 10^5–10^6 phones it bounds the FEL and inbox state to
/// O(population · cap) instead of letting message bursts stack without
/// limit.
pub const SCALING_INBOX_CAP: u32 = 64;

/// **§5.3 prose claim** cells — baselines for Viruses 1 and 3 at
/// `opts.population` and at twice that.
///
/// Cells at or above [`SCALING_BOUNDED_MIN_POPULATION`] phones run with
/// the bounded inbox admission cap ([`SCALING_INBOX_CAP`]) and an event
/// budget scaled to the population, so a single replication at 10^6
/// phones completes in bounded memory instead of tripping the default
/// runaway guard.
pub fn scaling_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = Vec::new();
    for v in [VirusProfile::virus1(), VirusProfile::virus3()] {
        for size in [opts.population, 2 * opts.population] {
            let name = v.name.clone();
            let scaled_opts = FigureOptions { population: size, ..opts.clone() };
            let mut config = base_config(v.clone(), &scaled_opts);
            if size >= SCALING_BOUNDED_MIN_POPULATION {
                config.inbox_cap.get_or_insert(SCALING_INBOX_CAP);
                config
                    .event_budget
                    .get_or_insert(crate::run::DEFAULT_EVENT_BUDGET.max(size as u64 * 2_000));
            }
            out.push(cell(format!("{name} n={size}"), config));
        }
    }
    out
}

/// **§5.3 prose claim** — the results scale with population size (the
/// paper compares 1000 against 2000 phones): baselines for Viruses 1 and
/// 3 at `opts.population` and at twice that. Penetration *fractions*
/// (infected / vulnerable) should match across sizes.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn scaling_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&scaling_study_cells(opts), opts)
}

/// **§6 future work** cells — baseline, monitoring alone, scan alone,
/// and both combined, against fast Virus 3.
pub fn combo_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let horizon = SimDuration::from_hours(25);
    let monitoring = Monitoring::with_forced_wait(SimDuration::from_mins(30));
    let scan = SignatureScan { activation_delay: SimDuration::from_hours(6) };
    let base = base_config(VirusProfile::virus3(), opts).with_horizon(horizon);
    vec![
        cell("Baseline", base.clone()),
        cell(
            "Monitoring only",
            base.clone().with_response(ResponseConfig::none().with_monitoring(monitoring)),
        ),
        cell(
            "Scan only",
            base.clone().with_response(ResponseConfig::none().with_signature_scan(scan)),
        ),
        cell(
            "Monitoring + Scan",
            base.with_response(
                ResponseConfig::none().with_monitoring(monitoring).with_signature_scan(scan),
            ),
        ),
    ]
}

/// **§6 future work** — combined mechanisms against fast Virus 3: the
/// monitoring mechanism buys time, a signature scan then halts the virus.
/// Compares baseline, monitoring alone, scan alone, and both.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn combo_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&combo_study_cells(opts), opts)
}

/// **§6 future work** cells — the Bluetooth propagation vector over a
/// random-waypoint mobility field (see [`bluetooth_study`] for the arms).
pub fn bluetooth_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let horizon = SimDuration::from_hours(72);
    let bt = BluetoothVector::default_class2();
    let mobility = MobilityConfig::downtown();

    let pure = base_config(VirusProfile::bluetooth_worm(), opts)
        .with_horizon(horizon)
        .with_mobility(mobility);
    let hybrid_profile = VirusProfile { bluetooth: Some(bt), ..VirusProfile::virus1() };
    let hybrid = {
        let mut c = base_config(hybrid_profile, opts).with_horizon(horizon).with_mobility(mobility);
        c.virus.name = "Hybrid MMS+BT".to_owned();
        c
    };

    vec![
        cell("BT worm baseline", pure.clone()),
        cell(
            "BT worm + perfect scan",
            pure.clone().with_response(
                ResponseConfig::none()
                    .with_signature_scan(SignatureScan { activation_delay: SimDuration::ZERO }),
            ),
        ),
        cell("Hybrid baseline", hybrid.clone()),
        cell(
            "Hybrid + blacklist 10",
            hybrid
                .clone()
                .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold: 10 })),
        ),
        cell(
            "Hybrid + patch 24h+6h",
            hybrid.clone().with_response(ResponseConfig::none().with_immunization(
                Immunization::uniform(SimDuration::from_hours(24), SimDuration::from_hours(6)),
            )),
        ),
        cell(
            "Hybrid + patch 6h+1h",
            hybrid.with_response(ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(6),
                SimDuration::from_hours(1),
            ))),
        ),
        cell(
            "BT worm + education 0.20",
            pure.with_response(
                ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
            ),
        ),
    ]
}

/// **§6 future work** — the Bluetooth propagation vector the paper names
/// but does not evaluate, implemented over a random-waypoint mobility
/// field. Four arms over 72 h in a 1 km² downtown arena:
///
/// 1. a pure Bluetooth worm (Cabir-style) — baseline;
/// 2. the same worm against a perfect gateway signature scan —
///    demonstrating that reception-point mechanisms are blind to
///    proximity transfers;
/// 3. a hybrid MMS+Bluetooth worm (CommWarrior-style) against
///    blacklisting — the MMS vector is cut, the Bluetooth vector is not;
/// 4. the hybrid worm against immunization — the only §3 mechanism that
///    stops both vectors.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn bluetooth_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&bluetooth_study_cells(opts), opts)
}

/// **Extension** cells — monitoring false positives: threshold sweep
/// against Virus 3 with legitimate traffic enabled.
pub fn false_positive_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let horizon = SimDuration::from_hours(25);
    let mut out = Vec::new();
    for threshold in [2u32, 3, 5, 10] {
        let mut config = base_config(VirusProfile::virus3(), opts).with_horizon(horizon);
        config.behavior =
            crate::behavior::BehaviorConfig::with_legitimate_traffic(SimDuration::from_hours(4));
        config.response = ResponseConfig::none().with_monitoring(Monitoring {
            window: SimDuration::from_hours(1),
            threshold,
            forced_wait: SimDuration::from_mins(30),
        });
        out.push(cell(format!("threshold {threshold}/h"), config));
    }
    out
}

/// **Extension** — monitoring false positives. The paper notes the
/// blacklist "threshold should ideally be as high as possible to avoid
/// false positive activation" but models no legitimate traffic to
/// measure it. With legitimate traffic enabled (≈ 6 MMS/day per phone),
/// this study sweeps the monitoring threshold against Virus 3 and
/// exposes the containment-vs-false-positive trade-off. Read the
/// false-positive counts from each arm's `runs[i].stats`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn false_positive_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&false_positive_study_cells(opts), opts)
}

/// **Extension** cells — uniform vs hubs-first patch rollout for
/// Viruses 1 and 4 (plus baselines).
pub fn rollout_order_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = Vec::new();
    for virus in [VirusProfile::virus1(), VirusProfile::virus4()] {
        let name = virus.name.clone();
        out.push(cell(format!("{name} Baseline"), base_config(virus.clone(), opts)));
        for (label, imm) in [
            (
                "uniform",
                Immunization::uniform(SimDuration::from_hours(24), SimDuration::from_hours(24)),
            ),
            (
                "hubs-first",
                Immunization::hubs_first(SimDuration::from_hours(24), SimDuration::from_hours(24)),
            ),
        ] {
            let config = base_config(virus.clone(), opts)
                .with_response(ResponseConfig::none().with_immunization(imm));
            out.push(cell(format!("{name} {label}"), config));
        }
    }
    out
}

/// **Extension** — patch rollout order: the paper's uniform rollout
/// against a hubs-first rollout (highest-degree phones patched first)
/// at the same development and rollout times, for Viruses 1 and 4.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn rollout_order_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&rollout_order_study_cells(opts), opts)
}

/// **§5.3 prose** cells — each mechanism's headline knob on a fine grid
/// (see [`diminishing_returns_study`]).
pub fn diminishing_returns_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mut out = Vec::new();

    for delay_h in [2u64, 4, 8, 16, 32, 48] {
        let config = base_config(VirusProfile::virus1(), opts).with_response(
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(delay_h),
            }),
        );
        out.push(cell(format!("scan delay {delay_h}h"), config));
    }

    let mut single = VirusProfile::virus3();
    single.name = "fast single-recipient".to_owned();
    for accuracy in [0.5, 0.8, 0.9, 0.95, 0.99, 0.995] {
        let mut config = base_config(single.clone(), opts)
            .with_horizon(SimDuration::from_hours(25))
            .with_response(ResponseConfig::none().with_detection(DetectionAlgorithm {
                accuracy,
                analysis_period: SimDuration::from_hours(1),
            }));
        config.detect_threshold = 5;
        out.push(cell(format!("detection acc {accuracy}"), config));
    }

    for wait_min in [5u64, 15, 30, 60, 120] {
        let config =
            base_config(VirusProfile::virus3(), opts)
                .with_horizon(SimDuration::from_hours(25))
                .with_response(ResponseConfig::none().with_monitoring(
                    Monitoring::with_forced_wait(SimDuration::from_mins(wait_min)),
                ));
        out.push(cell(format!("monitor wait {wait_min}min"), config));
    }

    for threshold in [5u32, 10, 20, 40, 60] {
        let config = base_config(VirusProfile::virus3(), opts)
            .with_horizon(SimDuration::from_hours(25))
            .with_response(ResponseConfig::none().with_blacklist(Blacklist { threshold }));
        out.push(cell(format!("blacklist @{threshold}"), config));
    }

    out
}

/// **§5.3 prose** — "the results of our experiments are useful for
/// locating the point of diminishing returns for each individual
/// response mechanism". This study sweeps each mechanism's headline knob
/// on a fine grid so the knee is visible:
///
/// * signature-scan delay 2–48 h (Virus 1),
/// * detection accuracy 0.50–0.995 (single-recipient fast virus),
/// * monitoring forced wait 5–120 min (Virus 3),
/// * blacklist threshold 5–60 (Virus 3).
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn diminishing_returns_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&diminishing_returns_study_cells(opts), opts)
}

/// **Extension** cells — Virus 3 against finite gateway capacity (plus
/// the paper's infinite-capacity baseline).
pub fn congestion_study_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let horizon = SimDuration::from_hours(25);
    let mut out = vec![cell(
        "infinite capacity (paper)",
        base_config(VirusProfile::virus3(), opts).with_horizon(horizon),
    )];
    for capacity in [3600u64, 1200, 300] {
        let mut config = base_config(VirusProfile::virus3(), opts).with_horizon(horizon);
        config.gateway_capacity_per_hour = Some(capacity);
        out.push(cell(format!("{capacity} msgs/h"), config));
    }
    out
}

/// **Extension** — gateway congestion. The paper assumes infinite MMS
/// capacity; this study gives the gateway a finite throughput and races
/// Virus 3 against it. Finite capacity both delays legitimate delivery
/// (the intro's congestion concern) and — an emergent effect — throttles
/// the virus itself, since its own messages queue too.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn congestion_study(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&congestion_study_cells(opts), opts)
}

/// **§5.3 synthesis** cells — all six mechanisms (at representative
/// settings) against all four viruses, with a baseline row per virus.
pub fn effectiveness_matrix_cells(opts: &FigureOptions) -> Vec<StudyCell> {
    let mechanisms: Vec<(&str, ResponseConfig)> = vec![
        (
            "scan",
            ResponseConfig::none().with_signature_scan(SignatureScan {
                activation_delay: SimDuration::from_hours(6),
            }),
        ),
        (
            "detection",
            ResponseConfig::none().with_detection(DetectionAlgorithm::with_accuracy(0.95)),
        ),
        (
            "education",
            ResponseConfig::none().with_education(UserEducation { acceptance_scale: 0.5 }),
        ),
        (
            "immunization",
            ResponseConfig::none().with_immunization(Immunization::uniform(
                SimDuration::from_hours(24),
                SimDuration::from_hours(6),
            )),
        ),
        (
            "monitoring",
            ResponseConfig::none()
                .with_monitoring(Monitoring::with_forced_wait(SimDuration::from_mins(30))),
        ),
        ("blacklist", ResponseConfig::none().with_blacklist(Blacklist { threshold: 10 })),
    ];

    let mut out = Vec::new();
    for virus in VirusProfile::all_four() {
        let name = virus.name.clone();
        out.push(cell(format!("{name} | baseline"), base_config(virus.clone(), opts)));
        for (mech, response) in &mechanisms {
            let config = base_config(virus.clone(), opts).with_response(*response);
            out.push(cell(format!("{name} | {mech}"), config));
        }
    }
    out
}

/// **§5.3 synthesis** — the paper's central conclusion as one table: all
/// six mechanisms (at representative settings) against all four viruses.
/// Labels are `"{virus} | {mechanism}"`, with a `"{virus} | baseline"`
/// row per virus; divide to get the effectiveness matrix.
///
/// Representative settings: scan 6 h delay, detection 0.95 accuracy,
/// education ×0.5, immunization 24 h + 6 h, monitoring 30 min wait,
/// blacklist threshold 10.
///
/// # Errors
///
/// Propagates [`ConfigError`] from scenario validation.
pub fn effectiveness_matrix(opts: &FigureOptions) -> Result<Vec<LabeledResult>, ConfigError> {
    run_cells(&effectiveness_matrix_cells(opts), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure tests at full scale are exercised by the integration suite
    /// and the CLI; here we verify the experiment *definitions* — label
    /// sets and parameter wiring — with a minimal population.
    fn tiny() -> FigureOptions {
        FigureOptions {
            reps: 1,
            master_seed: 1,
            engine: EngineOptions::new(),
            population: 40,
            ..FigureOptions::default()
        }
    }

    fn labels(results: &[LabeledResult]) -> Vec<&str> {
        results.iter().map(|r| r.label.as_str()).collect()
    }

    #[test]
    fn fig2_labels_match_paper() {
        // Shrink horizons via population only; the structure is what we
        // check here.
        let out = fig2_virus_scan(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "6-Hour Delay", "12-Hour Delay", "24-Hour Delay"]
        );
    }

    #[test]
    fn fig3_labels_match_paper() {
        let out = fig3_detection(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec![
                "Baseline",
                "0.99 Accuracy",
                "0.95 Accuracy",
                "0.90 Accuracy",
                "0.85 Accuracy",
                "0.80 Accuracy"
            ]
        );
    }

    #[test]
    fn fig5_labels_match_paper() {
        let out = fig5_immunization(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec![
                "Baseline",
                "Hours 24-25",
                "Hours 24-30",
                "Hours 24-48",
                "Hours 48-49",
                "Hours 48-54",
                "Hours 48-72"
            ]
        );
    }

    #[test]
    fn fig6_and_fig7_labels() {
        let out = fig6_monitoring(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "15-Minute Wait", "30-Minute Wait", "60-Minute Wait"]
        );
        let out = fig7_blacklist(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "10 Messages", "20 Messages", "30 Messages", "40 Messages"]
        );
    }

    #[test]
    fn scaling_study_sizes() {
        let out = scaling_study(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Virus 1 n=40", "Virus 1 n=80", "Virus 3 n=40", "Virus 3 n=80"]
        );
    }

    #[test]
    fn combo_study_labels() {
        let out = combo_study(&tiny()).unwrap();
        assert_eq!(
            labels(&out),
            vec!["Baseline", "Monitoring only", "Scan only", "Monitoring + Scan"]
        );
    }

    #[test]
    fn bluetooth_study_labels() {
        let out = bluetooth_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "BT worm baseline",
                "BT worm + perfect scan",
                "Hybrid baseline",
                "Hybrid + blacklist 10",
                "Hybrid + patch 24h+6h",
                "Hybrid + patch 6h+1h",
                "BT worm + education 0.20"
            ]
        );
    }

    #[test]
    fn false_positive_study_labels() {
        let out = false_positive_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["threshold 2/h", "threshold 3/h", "threshold 5/h", "threshold 10/h"]
        );
        // The hair-trigger arm must record false positives somewhere.
        let fp: u64 = out[0].result.runs.iter().map(|r| r.stats.false_positive_throttles).sum();
        assert!(fp > 0, "threshold 2 with ~6 legit msgs/day must flag innocents");
    }

    #[test]
    fn rollout_order_study_labels() {
        let out = rollout_order_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "Virus 1 Baseline",
                "Virus 1 uniform",
                "Virus 1 hubs-first",
                "Virus 4 Baseline",
                "Virus 4 uniform",
                "Virus 4 hubs-first"
            ]
        );
    }

    #[test]
    fn effectiveness_matrix_has_28_cells() {
        let out = effectiveness_matrix(&tiny()).unwrap();
        assert_eq!(out.len(), 4 * 7);
        assert!(out.iter().any(|r| r.label == "Virus 1 | baseline"));
        assert!(out.iter().any(|r| r.label == "Virus 3 | blacklist"));
    }

    #[test]
    fn congestion_study_labels_and_ordering() {
        let out = congestion_study(&tiny()).unwrap();
        let labels: Vec<&str> = out.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["infinite capacity (paper)", "3600 msgs/h", "1200 msgs/h", "300 msgs/h"]
        );
    }

    #[test]
    fn diminishing_returns_covers_four_mechanisms() {
        let out = diminishing_returns_study(&tiny()).unwrap();
        assert_eq!(out.len(), 6 + 6 + 5 + 5);
        assert!(out.iter().any(|r| r.label.starts_with("scan delay")));
        assert!(out.iter().any(|r| r.label.starts_with("detection acc")));
        assert!(out.iter().any(|r| r.label.starts_with("monitor wait")));
        assert!(out.iter().any(|r| r.label.starts_with("blacklist @")));
    }

    #[test]
    fn quick_options_reduce_reps() {
        assert!(FigureOptions::quick().reps < FigureOptions::default().reps);
    }

    #[test]
    fn cells_and_runner_agree_on_labels() {
        let opts = tiny();
        let cells = fig6_monitoring_cells(&opts);
        let ran = run_cells(&cells, &opts).unwrap();
        assert_eq!(
            cells.iter().map(|c| c.label()).collect::<Vec<_>>(),
            ran.iter().map(|r| r.label.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shared_cache_leaves_figures_bit_identical() {
        let mut opts = tiny();
        let plain = fig7_blacklist(&opts).unwrap();
        let cache = TopologyCache::shared();
        opts.topology_cache = Some(cache.clone());
        let cached = fig7_blacklist(&opts).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.label, b.label);
            assert_eq!(bits(&a.result.aggregate.mean), bits(&b.result.aggregate.mean));
        }
        // 5 arms × 1 rep on one network: 1 miss, 4 hits.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (4, 1));
    }
}
