//! The unified `mpvsim` binary's subcommands, and the forwarding shims
//! that keep the historical per-figure binaries working.
//!
//! ```text
//! mpvsim list
//! mpvsim study fig1_baseline --reps 10
//! mpvsim all --quick
//! mpvsim report --reps 5
//! mpvsim sweep run --dir out --reps 3
//! mpvsim sweep resume --dir out
//! ```
//!
//! Every study runs through the [`mpvsim_core::studies`] registry, so a
//! study added there is immediately listable, runnable and sweepable here
//! without touching this module.

use std::fmt::Write as _;
use std::path::PathBuf;

use mpvsim_core::figures::LabeledResult;
use mpvsim_core::studies::{registry, StudyId, StudyKind};
use mpvsim_core::sweep::{resume_sweep, run_sweep, SweepOptions, SweepReport, SweepSpec};

use crate::{parse_options, render_report, usage, write_json_report, CliOptions};

const COMMANDS: &str = "\
usage: mpvsim <command> [flags]
commands:
  list                 list every registered study (name, kind, title)
  study <name>         run one study; see `mpvsim list` for names
  all                  run every registered study in sequence
  report               verify the paper's claims (PASS/FAIL scorecard)
  ablations            run the sensitivity/ablation studies
  perfsuite            benchmark the figure workloads under each FEL backend
  sweep run            execute a sweep of studies into a results store
  sweep resume         finish an interrupted sweep from its store
run `mpvsim <command> --help` (or pass bad flags) for per-command usage.
";

const SWEEP_USAGE: &str = "\
usage: mpvsim sweep run --dir PATH [--name N] [--study NAME]... [--reps N]
                        [--seed S] [--population P] [--cell-workers W]
                        [--rep-threads T] [--max-cells K] [--quick]
       mpvsim sweep resume --dir PATH [--cell-workers W] [--rep-threads T]
                        [--max-cells K]
  --dir PATH           results store directory (manifest + one file per cell)
  --name N             sweep name recorded in the manifest (default: studies)
  --study NAME         include only this study (repeatable; default: all)
  --reps N             replications per cell (default 10)
  --seed S             master seed (default 2007)
  --population P       population size (default 1000)
  --cell-workers W     cells executed concurrently (default 4)
  --rep-threads T      threads within each cell's replications (default 1)
  --max-cells K        stop after K newly-completed cells (CI interrupt knob)
  --quick              smoke-test scale: 2 reps, population 250
";

/// Entry point of the `mpvsim` binary: dispatch and exit.
pub fn main() -> ! {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

/// Runs one `mpvsim` invocation; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{COMMANDS}");
        return 2;
    };
    match command.as_str() {
        "list" => {
            print!("{}", render_list());
            0
        }
        "study" => cmd_study(rest),
        "all" => cmd_all(rest),
        "report" => cmd_report(rest),
        "ablations" => cmd_ablations(rest),
        "perfsuite" => crate::perfsuite::run(rest),
        "sweep" => cmd_sweep(rest),
        "--help" | "-h" | "help" => {
            print!("{COMMANDS}");
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n{COMMANDS}");
            2
        }
    }
}

/// Forwards a historical per-figure binary to the unified dispatcher,
/// with a deprecation note. The old binaries (`fig1_baseline`, `matrix`,
/// `all_figures`, ...) are kept as one-line shims over this.
pub fn deprecated_shim(old_bin: &str) -> ! {
    let mut args: Vec<String> = match old_bin {
        "all_figures" => vec!["all".to_owned()],
        "report" | "ablations" | "perfsuite" => vec![old_bin.to_owned()],
        study => vec!["study".to_owned(), study.to_owned()],
    };
    let replacement = args.join(" ");
    eprintln!(
        "note: the `{old_bin}` binary is deprecated; use `mpvsim {replacement}` \
         (forwarding this run)"
    );
    args.extend(std::env::args().skip(1));
    std::process::exit(run(&args));
}

/// The `mpvsim list` table.
fn render_list() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<20} {:<10} title", "name", "kind");
    for info in registry() {
        let kind = match info.kind {
            StudyKind::Figure => "figure",
            StudyKind::Claim => "claim",
            StudyKind::Extension => "extension",
        };
        let _ = writeln!(out, "{:<20} {:<10} {}", info.name, kind, info.title);
    }
    out
}

fn parse_figure_args(args: &[String]) -> Result<CliOptions, String> {
    parse_options(args.iter().cloned())
}

fn cmd_study(args: &[String]) -> i32 {
    let Some((name, rest)) = args.split_first() else {
        eprintln!("study needs a name; see `mpvsim list`\n{}", usage());
        return 2;
    };
    let Some(id) = StudyId::from_name(name) else {
        eprintln!("unknown study {name:?}; see `mpvsim list`");
        return 2;
    };
    let cli = match parse_figure_args(rest) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let opts = match cli.figure_with_observer() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let title = id.title();
    eprintln!(
        "running {title}: {} replications, seed {}, {} threads, population {}",
        opts.reps, opts.master_seed, opts.threads, opts.population
    );
    match id.run(&opts) {
        Ok(results) => {
            print!("{}", render_study(id, &results, opts.population));
            if let Some(path) = cli.json_out {
                match write_json_report(&path, title, &opts, &results) {
                    Ok(()) => eprintln!("archived results to {}", path.display()),
                    Err(e) => {
                        eprintln!("{e}");
                        return 1;
                    }
                }
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_all(args: &[String]) -> i32 {
    let opts = match parse_figure_args(args).and_then(|cli| cli.figure_with_observer()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    for info in registry() {
        eprintln!("running {} …", info.title);
        match info.id.run(&opts) {
            Ok(results) => print!("{}", render_study(info.id, &results, opts.population)),
            Err(e) => {
                eprintln!("{}: {e}", info.name);
                return 1;
            }
        }
        println!();
    }
    0
}

fn cmd_report(args: &[String]) -> i32 {
    let opts = match parse_figure_args(args).and_then(|cli| cli.figure_with_observer()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    eprintln!(
        "verifying paper claims: {} replications, seed {}, population {} …",
        opts.reps, opts.master_seed, opts.population
    );
    match mpvsim_core::claims::verify_all(&opts) {
        Ok(verdicts) => {
            let mut failures = 0;
            println!("{:<18} {:<6} claim / measured", "id", "result");
            for v in &verdicts {
                println!(
                    "{:<18} {:<6} {}\n{:<25} {}",
                    v.id,
                    if v.pass { "PASS" } else { "FAIL" },
                    v.claim,
                    "",
                    v.measured
                );
                if !v.pass {
                    failures += 1;
                }
            }
            println!(
                "\n{} of {} claims held in this run",
                verdicts.len() - failures,
                verdicts.len()
            );
            i32::from(failures > 0)
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_ablations(args: &[String]) -> i32 {
    use mpvsim_core::ablations as a;
    type Study = fn(
        &mpvsim_core::figures::FigureOptions,
    ) -> Result<Vec<LabeledResult>, mpvsim_core::ConfigError>;
    let opts = match parse_figure_args(args).and_then(|cli| cli.figure_with_observer()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let studies: Vec<(&str, Study)> = vec![
        ("Ablation — read-delay mean (Viruses 1 & 3)", a::ablation_read_delay as Study),
        ("Ablation — detectability threshold (scan vs Virus 1)", a::ablation_detect_threshold),
        ("Ablation — contact-graph family (Virus 1)", a::ablation_topology),
        ("Ablation — Virus 2 quota-day alignment", a::ablation_day_alignment),
        ("Ablation — acceptance factor (Virus 3)", a::ablation_acceptance_factor),
        ("Ablation — Virus 4 semantics: rate-paced vs piggyback", a::ablation_virus4_semantics),
    ];
    for (title, run) in studies {
        eprintln!("running {title} …");
        match run(&opts) {
            Ok(results) => print!("{}", render_report(title, &results)),
            Err(e) => {
                eprintln!("{title}: {e}");
                return 1;
            }
        }
        println!();
    }
    0
}

// ------------------------------------------------------------- sweeps

#[derive(Debug)]
struct SweepArgs {
    dir: PathBuf,
    name: String,
    studies: Vec<StudyId>,
    figure: mpvsim_core::figures::FigureOptions,
    sweep: SweepOptions,
}

fn parse_sweep_args(args: &[String], resume: bool) -> Result<SweepArgs, String> {
    let mut dir = None;
    let mut name = "studies".to_owned();
    let mut studies = Vec::new();
    let mut figure = mpvsim_core::figures::FigureOptions::default();
    let mut sweep = SweepOptions::default();
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{SWEEP_USAGE}"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--name" if !resume => name = value("--name")?,
            "--study" if !resume => {
                let v = value("--study")?;
                let id = StudyId::from_name(&v)
                    .ok_or_else(|| format!("unknown study {v:?}; see `mpvsim list`"))?;
                studies.push(id);
            }
            "--quick" if !resume => {
                figure.reps = 2;
                figure.population = 250;
            }
            "--reps" | "--seed" | "--population" | "--cell-workers" | "--rep-threads"
            | "--max-cells" => {
                let v = value(flag)?;
                let parsed: u64 = v
                    .parse()
                    .map_err(|_| format!("{flag} value {v:?} is not a number\n{SWEEP_USAGE}"))?;
                match flag.as_str() {
                    "--reps" if !resume => figure.reps = parsed,
                    "--seed" if !resume => figure.master_seed = parsed,
                    "--population" if !resume => figure.population = parsed as usize,
                    "--cell-workers" => sweep.cell_workers = parsed as usize,
                    "--rep-threads" => sweep.rep_threads = parsed as usize,
                    "--max-cells" => sweep.max_cells = Some(parsed as usize),
                    other => {
                        let why = "does not apply to resume (the manifest fixes it)";
                        return Err(format!("{other} {why}\n{SWEEP_USAGE}"));
                    }
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{SWEEP_USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("--dir is required\n{SWEEP_USAGE}"))?;
    if studies.is_empty() {
        studies = StudyId::all();
    }
    Ok(SweepArgs { dir, name, studies, figure, sweep })
}

fn cmd_sweep(args: &[String]) -> i32 {
    let Some((verb, rest)) = args.split_first() else {
        eprint!("{SWEEP_USAGE}");
        return 2;
    };
    let resume = match verb.as_str() {
        "run" => false,
        "resume" => true,
        other => {
            eprintln!("unknown sweep subcommand {other:?}\n{SWEEP_USAGE}");
            return 2;
        }
    };
    let parsed = match parse_sweep_args(rest, resume) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let report = if resume {
        resume_sweep(&parsed.dir, &parsed.sweep)
    } else {
        match SweepSpec::from_studies(parsed.name.clone(), &parsed.studies, &parsed.figure) {
            Ok(spec) => run_sweep(&spec, &parsed.dir, &parsed.sweep),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    };
    match report {
        Ok(report) => {
            print!("{}", render_sweep_report(&report));
            i32::from(report.remaining > 0)
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Renders a sweep run's outcome: the executed/skipped/remaining tally,
/// topology-cache counters, and one row per completed cell.
pub fn render_sweep_report(report: &SweepReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep {:?}: {} cells — {} executed, {} skipped, {} remaining",
        report.spec.name,
        report.spec.cells.len(),
        report.executed,
        report.skipped,
        report.remaining,
    );
    let _ = writeln!(
        out,
        "topology cache: {} hits, {} misses ({} networks held)",
        report.cache.hits, report.cache.misses, report.cache.entries
    );
    let _ = writeln!(out, "{:<44} {:>6} {:>10} {:>10}", "cell", "reps", "final", "ci95±");
    for cell in &report.cells {
        let _ = writeln!(
            out,
            "{:<44} {:>6} {:>10.1} {:>10.1}",
            cell.id,
            cell.final_infected.n,
            cell.final_infected.mean,
            cell.final_infected.ci95_half_width
        );
    }
    if report.remaining > 0 {
        let _ = writeln!(
            out,
            "interrupted with {} cells to go; finish with `mpvsim sweep resume --dir ...`",
            report.remaining
        );
    }
    out
}

// ------------------------------------------------ study-specific views

/// Renders one study's results: the standard report for most studies,
/// the specialised tables for the matrix / congestion / false-positive
/// studies (preserving the historical binaries' output).
pub fn render_study(id: StudyId, results: &[LabeledResult], population: usize) -> String {
    match id {
        StudyId::Matrix => render_matrix(results),
        StudyId::ExtCongestion => render_congestion(results),
        StudyId::ExtFalsePositives => render_false_positives(results, population),
        _ => render_report(id.title(), results),
    }
}

/// The §5.3 effectiveness matrix: final infections as a percentage of
/// each virus's baseline, mechanisms across the columns.
pub fn render_matrix(results: &[LabeledResult]) -> String {
    let get = |label: String| -> f64 {
        results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.result.final_infected.mean)
            .unwrap_or(f64::NAN)
    };
    let mechanisms = ["scan", "detection", "education", "immunization", "monitoring", "blacklist"];
    let mut out = String::new();
    let _ = writeln!(out, "== §5.3 — Effectiveness Matrix (final infections, % of baseline) ==\n");
    let _ = write!(out, "{:<10} {:>10}", "virus", "baseline");
    for m in mechanisms {
        let _ = write!(out, " {m:>13}");
    }
    let _ = writeln!(out);
    for virus in ["Virus 1", "Virus 2", "Virus 3", "Virus 4"] {
        let base = get(format!("{virus} | baseline"));
        let _ = write!(out, "{virus:<10} {base:>10.1}");
        for m in mechanisms {
            let v = get(format!("{virus} | {m}"));
            let _ = write!(out, " {:>12.0}%", 100.0 * v / base);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nReading: small numbers = the mechanism contains that virus.\n\
         The paper's conclusion is the *pattern*: reception/infection-point\n\
         mechanisms (scan, detection, education, immunization) beat the\n\
         self-throttled viruses 1/2/4 but are too slow for Virus 3, while\n\
         the dissemination-point mechanisms (monitoring, blacklisting)\n\
         catch exactly the aggressive Virus 3."
    );
    out
}

/// The gateway-congestion table: infection outcome plus the worst
/// transit delay each capacity setting inflicted.
pub fn render_congestion(results: &[LabeledResult]) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "== Extension — Gateway Congestion (Virus 3 vs finite MMS capacity) ==\n");
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>22}",
        "capacity", "infected", "t½ (h)", "peak transit delay"
    );
    for r in results {
        let t_half = r
            .result
            .mean_time_to_reach(r.result.final_infected.mean / 2.0)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "-".to_owned());
        let peak = r
            .result
            .runs
            .iter()
            .filter_map(|run| run.gateway_peak_delay)
            .max()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "0 (infinite)".to_owned());
        let _ = writeln!(
            out,
            "{:<28} {:>10.1} {:>10} {:>22}",
            r.label, r.result.final_infected.mean, t_half, peak
        );
    }
    let _ = writeln!(
        out,
        "\nThe virus outruns its own congestion: by the time its flood\n\
         saturates the gateway, the first-offer wave that does the real\n\
         damage has already been delivered — but every user of the network\n\
         is left staring at the transit delay in the last column."
    );
    out
}

/// The monitoring false-positive table: containment bought vs innocent
/// users flagged at each threshold.
pub fn render_false_positives(results: &[LabeledResult], population: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Extension — Monitoring False Positives (Virus 3 + legitimate traffic) ==\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>14} {:>16}",
        "threshold", "infected", "throttled", "false pos.", "FP per phone-day"
    );
    for r in results {
        let reps = r.result.runs.len() as f64;
        let throttled: u64 = r.result.runs.iter().map(|x| x.stats.throttled_phones).sum();
        let fp: u64 = r.result.runs.iter().map(|x| x.stats.false_positive_throttles).sum();
        let days = 25.0 / 24.0;
        let _ = writeln!(
            out,
            "{:<16} {:>10.1} {:>12.1} {:>14.1} {:>16.4}",
            r.label,
            r.result.final_infected.mean,
            throttled as f64 / reps,
            fp as f64 / reps,
            fp as f64 / reps / (population as f64 * days),
        );
    }
    let _ = writeln!(
        out,
        "\nLower thresholds contain the virus harder but flag more innocent\n\
         users — the provider picks the operating point (the paper raises\n\
         the trade-off for blacklisting but could not quantify it without\n\
         legitimate traffic in the model)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_core::figures::FigureOptions;

    fn tiny() -> FigureOptions {
        FigureOptions {
            reps: 1,
            master_seed: 5,
            threads: 1,
            population: 30,
            ..FigureOptions::default()
        }
    }

    #[test]
    fn list_names_every_registered_study() {
        let text = render_list();
        for info in registry() {
            assert!(text.contains(info.name), "list missing {}", info.name);
        }
    }

    #[test]
    fn study_renderer_picks_the_specialised_tables() {
        let opts = tiny();
        let fig7 = StudyId::Fig7Blacklist.run(&opts).unwrap();
        assert!(render_study(StudyId::Fig7Blacklist, &fig7, 30).contains("--- CSV ---"));
        let matrix = StudyId::Matrix.run(&opts).unwrap();
        let text = render_study(StudyId::Matrix, &matrix, 30);
        assert!(text.contains("Effectiveness Matrix"));
        assert!(text.contains("Virus 3"), "matrix rows missing:\n{text}");
        assert!(!text.contains("--- CSV ---"), "matrix keeps its dedicated table");
    }

    #[test]
    fn congestion_and_false_positive_renderers_keep_their_columns() {
        let opts = tiny();
        let cong = StudyId::ExtCongestion.run(&opts).unwrap();
        let text = render_congestion(&cong);
        assert!(text.contains("peak transit delay"));
        let fp = StudyId::ExtFalsePositives.run(&opts).unwrap();
        let text = render_false_positives(&fp, opts.population);
        assert!(text.contains("FP per phone-day"));
    }

    #[test]
    fn sweep_args_require_dir_and_validate_studies() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert!(parse_sweep_args(&args(&["--reps", "2"]), false).unwrap_err().contains("--dir"));
        assert!(parse_sweep_args(&args(&["--dir", "d", "--study", "nope"]), false).is_err());
        let parsed = parse_sweep_args(
            &args(&["--dir", "d", "--study", "fig1_baseline", "--max-cells", "3"]),
            false,
        )
        .unwrap();
        assert_eq!(parsed.studies, vec![StudyId::Fig1Baseline]);
        assert_eq!(parsed.sweep.max_cells, Some(3));
        // Resume rejects spec-changing flags: the manifest fixes them.
        assert!(parse_sweep_args(&args(&["--dir", "d", "--reps", "9"]), true).is_err());
        let resumed =
            parse_sweep_args(&args(&["--dir", "d", "--cell-workers", "2"]), true).unwrap();
        assert_eq!(resumed.sweep.cell_workers, 2);
    }

    #[test]
    fn sweep_run_and_resume_through_the_cli_paths() {
        let dir = std::env::temp_dir().join(format!("mpvsim-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = tiny();
        let spec = SweepSpec::from_studies("cli-test", &[StudyId::Fig7Blacklist], &opts).unwrap();
        let interrupted =
            run_sweep(&spec, &dir, &SweepOptions { max_cells: Some(2), ..SweepOptions::default() })
                .unwrap();
        assert!(interrupted.remaining > 0);
        let text = render_sweep_report(&interrupted);
        assert!(text.contains("sweep resume"), "interrupt hint missing:\n{text}");
        let finished = resume_sweep(&dir, &SweepOptions::default()).unwrap();
        assert_eq!(finished.remaining, 0);
        assert_eq!(finished.cells.len(), spec.cells.len());
        let text = render_sweep_report(&finished);
        assert!(text.contains("0 remaining"), "got:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
