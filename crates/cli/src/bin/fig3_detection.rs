//! Regenerates Figure 3: gateway detection algorithm vs. accuracy
//! (Virus 2).
fn main() {
    mpvsim_cli::figure_main(
        "Figure 3 — Virus Detection Algorithm: Varying Detection Accuracy (Virus 2)",
        mpvsim_core::figures::fig3_detection,
    );
}
