//! The unified `mpvsim` binary's subcommands, and the forwarding shims
//! that keep the historical per-figure binaries working.
//!
//! ```text
//! mpvsim list
//! mpvsim study fig1_baseline --reps 10
//! mpvsim all --quick
//! mpvsim report --reps 5
//! mpvsim sweep run --dir out --reps 3
//! mpvsim sweep resume --dir out
//! ```
//!
//! Every study runs through the [`mpvsim_core::studies`] registry, so a
//! study added there is immediately listable, runnable and sweepable here
//! without touching this module.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use mpvsim_core::bounds::{
    solve_bounds, BoundsKnob, BoundsOptions, BoundsOutcome, BoundsReport, BoundsSpec, ConfirmPolicy,
};
use mpvsim_core::figures::{FigureOptions, LabeledResult};
use mpvsim_core::studies::{registry, StudyId, StudyKind};
use mpvsim_core::sweep::{resume_sweep, run_sweep, slugify, SweepOptions, SweepReport, SweepSpec};
use mpvsim_core::validate::{
    bless_oracle, bless_study, bless_study_specs, check_oracle, check_sharded_consistency,
    check_study, check_study_specs, fuzz_cases, load_oracle_golden, load_study_golden,
    load_study_specs, save_oracle_golden, save_study_golden, save_study_specs, study_specs_path,
    GoldenScale, OracleScale, Variant,
};
use mpvsim_core::{
    run_scenario_probed, ProbeKind, ProbeOutput, ScenarioConfig, TopologyCache, VirusProfile,
};
use mpvsim_des::seed::derive_seed;

use crate::{
    apply_shared_flag, parse_options, render_report, usage, write_json_report, CliOptions,
    SharedFlag,
};

const COMMANDS: &str = "\
usage: mpvsim <command> [flags]
commands:
  list                 list every registered study (name, kind, title)
  study <name>         run one study; see `mpvsim list` for names
  all                  run every registered study in sequence
  report               verify the paper's claims (PASS/FAIL scorecard)
  trace <study>        record transmission chains + event timelines for a study
  ablations            run the sensitivity/ablation studies
  perfsuite            benchmark the figure workloads under each FEL backend
  sweep run            execute a sweep of studies into a results store
  sweep resume         finish an interrupted sweep from its store
  bounds               solve for critical response deadlines (ODE-bracketed)
  serve                HTTP/JSON simulation service over a results store
  submit <spec.json>   POST a scenario spec to a running `mpvsim serve`
  validate bless       (re)generate the golden-trajectory regression store
  validate check       verify studies against the committed goldens
  validate fuzz        random-scenario invariant checking
run `mpvsim <command> --help` (or pass bad flags) for per-command usage.
";

const SWEEP_USAGE: &str = "\
usage: mpvsim sweep run --dir PATH [--name N] [--study NAME]... [--reps N]
                        [--seed S] [--population P] [--cell-workers W]
                        [--rep-threads T] [--max-cells K] [--probe KIND]
                        [--fel KIND] [--quick]
       mpvsim sweep resume --dir PATH [--cell-workers W] [--rep-threads T]
                        [--max-cells K] [--probe KIND] [--fel KIND]
  --dir PATH           results store directory (manifest + one file per cell)
  --name N             sweep name recorded in the manifest (default: studies)
  --study NAME         include only this study (repeatable; default: all)
  --reps N             replications per cell (default 10)
  --seed S             master seed (default 2007)
  --population P       population size (default 1000)
  --cell-workers W     cells executed concurrently (default 4)
  --rep-threads T      threads within each cell's replications (default 1;
                       --threads is an alias shared with `mpvsim study`)
  --max-cells K        stop after K newly-completed cells (CI interrupt knob)
  --probe KIND         attach a probe to every replication (telemetry adds
                       per-mechanism records to the store; see `mpvsim trace`)
  --fel KIND           future-event-list backend: binary-heap|calendar
  --quick              smoke-test scale: 2 reps, population 250
";

const TRACE_USAGE: &str = "\
usage: mpvsim trace <study> [--out DIR] [shared flags]
  --out DIR            output directory (default: traces)
Runs every cell of the study with the transmission-chain probe, re-runs
replication 0 with the bounded event-trace probe, and writes per cell:
  <DIR>/<study>/<cell>.chain.json   JSON array, one who-infected-whom tree +
                                    empirical R(t) record per replication
  <DIR>/<study>/<cell>.trace.json   Chrome trace-event JSON for replication 0
                                    (load in Perfetto or chrome://tracing)
  <DIR>/<study>/<cell>.trace.jsonl  raw replication-0 event lines for jq/pandas
Shared flags (--reps, --seed, --population, ...) as for `mpvsim study`,
except --probe: trace always uses the chain and event-trace probes.
";

/// Entry point of the `mpvsim` binary: dispatch and exit.
pub fn main() -> ! {
    // Structured logging honors `MPVSIM_LOG` (level filter spec, default
    // `warn`) and `MPVSIM_LOG_FORMAT` (`json`|`text`) for every command;
    // `mpvsim serve --log-format` overrides the format after this.
    mpvsim_obs::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

/// Runs one `mpvsim` invocation; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{COMMANDS}");
        return 2;
    };
    match command.as_str() {
        "list" => {
            print!("{}", render_list());
            0
        }
        "study" => cmd_study(rest),
        "all" => cmd_all(rest),
        "report" => cmd_report(rest),
        "trace" => cmd_trace(rest),
        "ablations" => cmd_ablations(rest),
        "perfsuite" => crate::perfsuite::run(rest),
        "sweep" => cmd_sweep(rest),
        "bounds" => cmd_bounds(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "validate" => cmd_validate(rest),
        "--help" | "-h" | "help" => {
            print!("{COMMANDS}");
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n{COMMANDS}");
            2
        }
    }
}

/// The `mpvsim list` table.
fn render_list() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<20} {:<10} title", "name", "kind");
    for info in registry() {
        let kind = match info.kind {
            StudyKind::Figure => "figure",
            StudyKind::Claim => "claim",
            StudyKind::Extension => "extension",
        };
        let _ = writeln!(out, "{:<20} {:<10} {}", info.name, kind, info.title);
    }
    out
}

fn parse_figure_args(args: &[String]) -> Result<CliOptions, String> {
    parse_options(args.iter().cloned())
}

fn cmd_study(args: &[String]) -> i32 {
    let Some((name, rest)) = args.split_first() else {
        eprintln!("study needs a name; see `mpvsim list`\n{}", usage());
        return 2;
    };
    let Some(id) = StudyId::from_name(name) else {
        eprintln!("unknown study {name:?}; see `mpvsim list`");
        return 2;
    };
    let cli = match parse_figure_args(rest) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let opts = match cli.figure_with_observer() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let title = id.title();
    eprintln!(
        "running {title}: {} replications, seed {}, {} threads, population {}",
        opts.reps, opts.master_seed, opts.engine.threads, opts.population
    );
    match id.run(&opts) {
        Ok(results) => {
            print!("{}", render_study(id, &results, opts.population));
            if let Some(path) = cli.json_out {
                match write_json_report(&path, title, &opts, &results) {
                    Ok(()) => eprintln!("archived results to {}", path.display()),
                    Err(e) => {
                        eprintln!("{e}");
                        return 1;
                    }
                }
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_all(args: &[String]) -> i32 {
    let opts = match parse_figure_args(args).and_then(|cli| cli.figure_with_observer()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    for info in registry() {
        eprintln!("running {} …", info.title);
        match info.id.run(&opts) {
            Ok(results) => print!("{}", render_study(info.id, &results, opts.population)),
            Err(e) => {
                eprintln!("{}: {e}", info.name);
                return 1;
            }
        }
        println!();
    }
    0
}

fn cmd_report(args: &[String]) -> i32 {
    let opts = match parse_figure_args(args).and_then(|cli| cli.figure_with_observer()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    eprintln!(
        "verifying paper claims: {} replications, seed {}, population {} …",
        opts.reps, opts.master_seed, opts.population
    );
    match mpvsim_core::claims::verify_all(&opts) {
        Ok(verdicts) => {
            let mut failures = 0;
            println!("{:<18} {:<6} claim / measured", "id", "result");
            for v in &verdicts {
                println!(
                    "{:<18} {:<6} {}\n{:<25} {}",
                    v.id,
                    if v.pass { "PASS" } else { "FAIL" },
                    v.claim,
                    "",
                    v.measured
                );
                if !v.pass {
                    failures += 1;
                }
            }
            println!(
                "\n{} of {} claims held in this run",
                verdicts.len() - failures,
                verdicts.len()
            );
            i32::from(failures > 0)
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_ablations(args: &[String]) -> i32 {
    use mpvsim_core::ablations as a;
    type Study = fn(
        &mpvsim_core::figures::FigureOptions,
    ) -> Result<Vec<LabeledResult>, mpvsim_core::ConfigError>;
    let opts = match parse_figure_args(args).and_then(|cli| cli.figure_with_observer()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let studies: Vec<(&str, Study)> = vec![
        ("Ablation — read-delay mean (Viruses 1 & 3)", a::ablation_read_delay as Study),
        ("Ablation — detectability threshold (scan vs Virus 1)", a::ablation_detect_threshold),
        ("Ablation — contact-graph family (Virus 1)", a::ablation_topology),
        ("Ablation — Virus 2 quota-day alignment", a::ablation_day_alignment),
        ("Ablation — acceptance factor (Virus 3)", a::ablation_acceptance_factor),
        ("Ablation — Virus 4 semantics: rate-paced vs piggyback", a::ablation_virus4_semantics),
    ];
    for (title, run) in studies {
        eprintln!("running {title} …");
        match run(&opts) {
            Ok(results) => print!("{}", render_report(title, &results)),
            Err(e) => {
                eprintln!("{title}: {e}");
                return 1;
            }
        }
        println!();
    }
    0
}

// ------------------------------------------------------------- tracing

fn cmd_trace(args: &[String]) -> i32 {
    let Some((name, rest)) = args.split_first() else {
        eprint!("{TRACE_USAGE}");
        return 2;
    };
    let Some(id) = StudyId::from_name(name) else {
        eprintln!("unknown study {name:?}; see `mpvsim list`");
        return 2;
    };
    let mut out_dir = PathBuf::from("traces");
    let mut shared = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            let Some(v) = it.next() else {
                eprintln!("--out needs a path\n{TRACE_USAGE}");
                return 2;
            };
            out_dir = PathBuf::from(v);
        } else if arg == "--probe" {
            eprintln!("trace always uses the chain and event-trace probes; --probe is not accepted\n{TRACE_USAGE}");
            return 2;
        } else {
            shared.push(arg.clone());
        }
    }
    let cli = match parse_options(shared.into_iter()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let mut opts = match cli.figure_with_observer() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    opts.engine.probe = ProbeKind::Chain;
    opts.topology_cache = Some(TopologyCache::shared());
    let dir = out_dir.join(id.name());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return 1;
    }
    eprintln!(
        "tracing {}: {} replications, seed {}, population {}",
        id.title(),
        opts.reps,
        opts.master_seed,
        opts.population
    );
    match trace_study(id, &opts, &dir) {
        Ok(text) => {
            print!("{text}");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Median of each chain's time to `n` cumulative infections, over the
/// replications that reached `n` at all.
fn median_time_to(chains: &[&mpvsim_core::ChainRecord], n: usize) -> Option<f64> {
    let mut times: Vec<f64> = chains.iter().filter_map(|c| c.time_to_n(n)).collect();
    if times.is_empty() {
        return None;
    }
    times.sort_by(f64::total_cmp);
    Some(times[times.len() / 2])
}

/// Runs one study instrumented — the chain probe over every replication,
/// the event-trace probe over replication 0 — writing the per-cell
/// artifacts into `dir` and returning the terminal report.
fn trace_study(id: StudyId, opts: &FigureOptions, dir: &Path) -> Result<String, String> {
    let targets = [2usize.max(opts.population / 100), opts.population / 10, opts.population / 2];
    let mut out = String::new();
    let _ = writeln!(out, "== Trace — {} ==\n", id.title());
    let _ = write!(out, "{:<28} {:>6} {:>8} {:>7}", "cell", "reps", "infected", "peak R");
    for t in targets {
        let _ = write!(out, " {:>12}", format!("t({t}) p50 h"));
    }
    let _ = writeln!(out, " {:>10}", "trace ev");
    let mut files = 0usize;
    let cells = id.cells(opts);
    for cell in &cells {
        let slug = slugify(cell.label());
        let write_file = |suffix: &str, bytes: &[u8]| -> Result<(), String> {
            let path = dir.join(format!("{slug}.{suffix}"));
            std::fs::write(&path, bytes)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))
        };

        // Chains over every replication (config via the validation funnel).
        let config = cell.spec.to_config().map_err(|e| format!("{}: {e}", cell.label()))?;
        let result = opts.plan().run(config).map_err(|e| format!("{}: {e}", cell.label()))?;
        let chains: Vec<&mpvsim_core::ChainRecord> = result
            .runs
            .iter()
            .filter_map(|r| r.probe.as_ref().and_then(ProbeOutput::as_chain))
            .collect();
        if chains.is_empty() {
            return Err("chain probe produced no record".to_owned());
        }
        let chain_json = serde_json::to_vec_pretty(&chains)
            .map_err(|e| format!("serialize chain records: {e}"))?;
        write_file("chain.json", &chain_json)?;

        // Replication 0 again, recording the event timeline.
        let seed0 = derive_seed(opts.master_seed, 0);
        let (run0, _) = run_scenario_probed(
            config,
            seed0,
            opts.engine.fel,
            opts.topology_cache.as_deref(),
            ProbeKind::Trace,
        )
        .map_err(|e| format!("{}: {e}", cell.label()))?;
        let trace = run0
            .probe
            .as_ref()
            .and_then(ProbeOutput::as_trace)
            .ok_or_else(|| "trace probe produced no record".to_owned())?;
        write_file("trace.json", trace.to_chrome_trace_json().as_bytes())?;
        write_file("trace.jsonl", trace.to_jsonl().as_bytes())?;
        files += 3;

        let mean_infected =
            chains.iter().map(|c| c.total_infections()).sum::<usize>() as f64 / chains.len() as f64;
        let peak_r = chains.iter().map(|c| c.peak_r()).fold(0.0, f64::max);
        let _ = write!(
            out,
            "{:<28} {:>6} {:>8.1} {:>7.2}",
            cell.label(),
            chains.len(),
            mean_infected,
            peak_r
        );
        for t in targets {
            match median_time_to(&chains, t) {
                Some(h) => {
                    let _ = write!(out, " {h:>12.1}");
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = write!(out, " {:>10}", trace.total_recorded);
        if trace.dropped() > 0 {
            let _ = write!(out, " ({} evicted)", trace.dropped());
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nwrote {files} files to {} — load a .trace.json in Perfetto or \
         chrome://tracing",
        dir.display()
    );
    Ok(out)
}

// --------------------------------------------------------- validation

const VALIDATE_USAGE: &str = "\
usage: mpvsim validate bless [--dir DIR] [--study NAME]... [--population P]
                             [--reps R] [--seed S]
       mpvsim validate check [--dir DIR] [--study NAME]... [--threads T]
                             [--shards K] [--no-variants]
       mpvsim validate fuzz  [--cases N] [--seed S]
  bless    run the selected studies at golden scale (reference execution) and
           (re)write DIR/<study>.json, the canonical spec set
           DIR/specs/<study>.json (paper scale), and the differential-oracle
           golden DIR/oracle.json
  check    re-run the selected studies under the single-knob variant matrix
           (binary-heap vs calendar FEL, 1 vs T threads, none vs noop probe)
           and the differential oracle, hold the committed spec sets
           byte-exact (a missing spec set is blessed in place), and run the
           sharded self-consistency tier (shards ∈ {1, K} of the sharded
           engine must agree bit for bit); exit 1 on any drift
  fuzz     run N deterministic random-scenario invariant checks; exit 1 on
           any violation (failures name their exact replay)
  --dir DIR       golden store directory (default: goldens)
  --study NAME    restrict to this study; 'oracle' selects the differential
                  oracle (repeatable; default: every registry study + oracle)
  --population P  bless-time population per study cell (default 120)
  --reps R        bless-time replications per cell (default 2)
  --seed S        bless: master seed of the golden families (default 2007)
                  fuzz: seed of the fuzzing family (default 2007)
  --threads T     thread count of the 'threaded' check variant (default 4)
  --shards K      shard count of the sharded self-consistency tier (default 4)
  --no-variants   check only the reference execution (fast smoke; also skips
                  the sharded tier)
  --cases N       fuzz cases to run (default 32)
";

#[derive(Debug)]
struct ValidateSelection {
    studies: Vec<StudyId>,
    oracle: bool,
}

fn parse_validate_studies(names: &[String]) -> Result<ValidateSelection, String> {
    if names.is_empty() {
        return Ok(ValidateSelection { studies: StudyId::all(), oracle: true });
    }
    let mut studies = Vec::new();
    let mut oracle = false;
    for name in names {
        if name == "oracle" {
            oracle = true;
        } else {
            let id = StudyId::from_name(name)
                .ok_or_else(|| format!("unknown study {name:?}; see `mpvsim list`"))?;
            studies.push(id);
        }
    }
    Ok(ValidateSelection { studies, oracle })
}

fn cmd_validate(args: &[String]) -> i32 {
    let Some((verb, rest)) = args.split_first() else {
        eprint!("{VALIDATE_USAGE}");
        return 2;
    };
    let verb = verb.as_str();
    if matches!(verb, "--help" | "-h") {
        print!("{VALIDATE_USAGE}");
        return 0;
    }
    if !matches!(verb, "bless" | "check" | "fuzz") {
        eprintln!("unknown validate subcommand {verb:?}\n{VALIDATE_USAGE}");
        return 2;
    }

    let mut dir = PathBuf::from("goldens");
    let mut names: Vec<String> = Vec::new();
    let mut scale = GoldenScale::default();
    let mut no_variants = false;
    let mut threads = 4usize;
    let mut shards = 4usize;
    let mut cases = 32u64;
    let mut fuzz_seed = 2007u64;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{VALIDATE_USAGE}"))
        };
        let parsed: Result<(), String> = (|| {
            let number = |flag: &str, v: String| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("{flag} value {v:?} is not a number\n{VALIDATE_USAGE}"))
            };
            match flag.as_str() {
                "--dir" if verb != "fuzz" => dir = PathBuf::from(value("--dir")?),
                "--study" if verb != "fuzz" => names.push(value("--study")?),
                "--population" if verb == "bless" => {
                    scale.population = number("--population", value("--population")?)? as usize;
                }
                "--reps" if verb == "bless" => scale.reps = number("--reps", value("--reps")?)?,
                "--seed" if verb != "check" => {
                    let s = number("--seed", value("--seed")?)?;
                    scale.master_seed = s;
                    fuzz_seed = s;
                }
                "--threads" if verb == "check" => {
                    threads = number("--threads", value("--threads")?)? as usize;
                }
                "--shards" if verb == "check" => {
                    shards = number("--shards", value("--shards")?)?.max(1) as usize;
                }
                "--no-variants" if verb == "check" => no_variants = true,
                "--cases" if verb == "fuzz" => cases = number("--cases", value("--cases")?)?,
                other => {
                    return Err(format!(
                        "unknown flag {other:?} for `validate {verb}`\n{VALIDATE_USAGE}"
                    ))
                }
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return 2;
        }
    }

    if verb == "fuzz" {
        return validate_fuzz(fuzz_seed, cases);
    }
    let selection = match parse_validate_studies(&names) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    match verb {
        "bless" => validate_bless(&dir, &selection, &scale),
        _ => validate_check(&dir, &selection, no_variants, threads, shards),
    }
}

fn validate_bless(dir: &Path, selection: &ValidateSelection, scale: &GoldenScale) -> i32 {
    for id in &selection.studies {
        eprintln!(
            "blessing {} (population {}, {} reps, seed {}) …",
            id.name(),
            scale.population,
            scale.reps,
            scale.master_seed
        );
        let golden = match bless_study(*id, scale) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{}: {e}", id.name());
                return 1;
            }
        };
        match save_study_golden(dir, &golden) {
            Ok(path) => {
                println!(
                    "blessed {} ({} cells) -> {}",
                    id.name(),
                    golden.cells.len(),
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
        // The canonical wire form of the study is blessed alongside the
        // trajectory fingerprints — always at paper scale, since spec
        // blessing serializes cells without simulating them.
        let specs = match bless_study_specs(*id, &GoldenScale::paper()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{} specs: {e}", id.name());
                return 1;
            }
        };
        match save_study_specs(dir, &specs) {
            Ok(path) => {
                println!(
                    "blessed {} spec set ({} cells at paper scale) -> {}",
                    id.name(),
                    specs.specs.len(),
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }
    if selection.oracle {
        let oracle_scale = OracleScale::default();
        eprintln!(
            "blessing oracle (population {}, {} reps, seed {}) …",
            oracle_scale.population, oracle_scale.reps, oracle_scale.master_seed
        );
        let golden = match bless_oracle(&oracle_scale) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("oracle: {e}");
                return 1;
            }
        };
        match save_oracle_golden(dir, &golden) {
            Ok(path) => println!(
                "blessed oracle (mean final {:.1} of {}) -> {}",
                golden.final_mean,
                golden.scale.population,
                path.display()
            ),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    }
    0
}

fn validate_check(
    dir: &Path,
    selection: &ValidateSelection,
    no_variants: bool,
    threads: usize,
    shards: usize,
) -> i32 {
    let variants =
        if no_variants { vec![Variant::reference()] } else { Variant::standard(threads) };
    let mut drifts = Vec::new();
    for id in &selection.studies {
        eprintln!("checking {} ({} variants) …", id.name(), variants.len());
        let golden = match load_study_golden(dir, *id) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        match check_study(*id, &golden, &variants) {
            Ok(mut found) => drifts.append(&mut found),
            Err(e) => {
                eprintln!("{}: {e}", id.name());
                return 1;
            }
        }
        // Spec sets are pure serialization, so a missing file is
        // bootstrapped in place rather than failing the check; once the
        // file exists it is held byte-exact like any other golden.
        if !study_specs_path(dir, *id).exists() {
            let set = match bless_study_specs(*id, &GoldenScale::paper()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{} specs: {e}", id.name());
                    return 1;
                }
            };
            match save_study_specs(dir, &set) {
                Ok(path) => eprintln!("spec set was missing; blessed {}", path.display()),
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            }
        }
        let set = match load_study_specs(dir, *id) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        match check_study_specs(*id, &set) {
            Ok(mut found) => drifts.append(&mut found),
            Err(e) => {
                eprintln!("{} specs: {e}", id.name());
                return 1;
            }
        }
    }
    if !no_variants && shards > 1 {
        eprintln!("checking sharded self-consistency (shards 1 vs {shards}) …");
        match check_sharded_consistency(shards) {
            Ok(mut found) => drifts.append(&mut found),
            Err(e) => {
                eprintln!("sharded: {e}");
                return 1;
            }
        }
    }
    if selection.oracle {
        eprintln!("checking oracle …");
        let golden = match load_oracle_golden(dir) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        };
        match check_oracle(&golden) {
            Ok(mut found) => drifts.append(&mut found),
            Err(e) => {
                eprintln!("oracle: {e}");
                return 1;
            }
        }
    }
    if drifts.is_empty() {
        println!(
            "validate check: OK — {} studies{} bit-identical across {} execution variant(s)",
            selection.studies.len(),
            if selection.oracle { " + oracle" } else { "" },
            variants.len()
        );
        0
    } else {
        for d in &drifts {
            println!("DRIFT: {d}");
        }
        println!(
            "validate check: {} drift(s) detected — if intentional, re-bless with \
             `mpvsim validate bless`",
            drifts.len()
        );
        1
    }
}

fn validate_fuzz(seed: u64, cases: u64) -> i32 {
    eprintln!("fuzzing {cases} random scenarios from seed {seed} …");
    match fuzz_cases(seed, cases) {
        Ok(report) if report.failures.is_empty() => {
            println!("validate fuzz: OK — {} cases, 0 invariant violations", report.cases);
            0
        }
        Ok(report) => {
            for f in &report.failures {
                println!(
                    "FUZZ FAILURE: case {} of family {seed} (config = fuzz_case({seed}, {}), \
                     replication seed {}):",
                    f.case, f.case, f.seed
                );
                for v in &f.violations {
                    println!("  - {v}");
                }
            }
            println!(
                "validate fuzz: {} of {} cases violated invariants",
                report.failures.len(),
                report.cases
            );
            1
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

// ------------------------------------------------------------- sweeps

#[derive(Debug)]
struct SweepArgs {
    dir: PathBuf,
    name: String,
    studies: Vec<StudyId>,
    figure: mpvsim_core::figures::FigureOptions,
    sweep: SweepOptions,
}

fn parse_sweep_args(args: &[String], resume: bool) -> Result<SweepArgs, String> {
    let mut dir = None;
    let mut name = "studies".to_owned();
    let mut studies = Vec::new();
    let mut figure = mpvsim_core::figures::FigureOptions::default();
    let mut sweep = SweepOptions::default();
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        // Shared experiment flags first — one parser for `study`, `sweep`,
        // `trace` and `serve`, so `--probe`/`--threads`/`--fel` cannot
        // drift between commands.
        if let Some(which) = apply_shared_flag(flag, &mut || args.next().cloned(), &mut figure)
            .map_err(|e| format!("{e}\n{SWEEP_USAGE}"))?
        {
            match which {
                SharedFlag::Reps | SharedFlag::Seed | SharedFlag::Population if resume => {
                    let why = "does not apply to resume (the manifest fixes it)";
                    return Err(format!("{flag} {why}\n{SWEEP_USAGE}"));
                }
                SharedFlag::Reps | SharedFlag::Seed | SharedFlag::Population => {}
                // Execution knobs, so legal on resume too — but a
                // different probe than the original run adds/omits
                // telemetry records in the cells completed after the
                // resume.
                SharedFlag::Probe
                | SharedFlag::Fel
                | SharedFlag::Layout
                | SharedFlag::Threads
                | SharedFlag::Shards => sweep.engine = figure.engine,
            }
            continue;
        }
        let mut value = |flag: &str| {
            args.next().cloned().ok_or_else(|| format!("{flag} needs a value\n{SWEEP_USAGE}"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--name" if !resume => name = value("--name")?,
            "--study" if !resume => {
                let v = value("--study")?;
                let id = StudyId::from_name(&v)
                    .ok_or_else(|| format!("unknown study {v:?}; see `mpvsim list`"))?;
                studies.push(id);
            }
            "--quick" if !resume => {
                figure.reps = 2;
                figure.population = 250;
            }
            "--cell-workers" | "--rep-threads" | "--max-cells" => {
                let v = value(flag)?;
                let parsed: u64 = v
                    .parse()
                    .map_err(|_| format!("{flag} value {v:?} is not a number\n{SWEEP_USAGE}"))?;
                match flag.as_str() {
                    "--cell-workers" => sweep.cell_workers = parsed as usize,
                    "--rep-threads" => sweep.engine.threads = parsed as usize,
                    "--max-cells" => sweep.max_cells = Some(parsed as usize),
                    _ => unreachable!(),
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{SWEEP_USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("--dir is required\n{SWEEP_USAGE}"))?;
    if studies.is_empty() {
        studies = StudyId::all();
    }
    Ok(SweepArgs { dir, name, studies, figure, sweep })
}

fn cmd_sweep(args: &[String]) -> i32 {
    let Some((verb, rest)) = args.split_first() else {
        eprint!("{SWEEP_USAGE}");
        return 2;
    };
    let resume = match verb.as_str() {
        "run" => false,
        "resume" => true,
        other => {
            eprintln!("unknown sweep subcommand {other:?}\n{SWEEP_USAGE}");
            return 2;
        }
    };
    let parsed = match parse_sweep_args(rest, resume) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let report = if resume {
        resume_sweep(&parsed.dir, &parsed.sweep)
    } else {
        match SweepSpec::from_studies(parsed.name.clone(), &parsed.studies, &parsed.figure) {
            Ok(spec) => run_sweep(&spec, &parsed.dir, &parsed.sweep),
            Err(e) => {
                eprintln!("{e}");
                return 1;
            }
        }
    };
    match report {
        Ok(report) => {
            print!("{}", render_sweep_report(&report));
            i32::from(report.remaining > 0)
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Renders a sweep run's outcome: the executed/skipped/remaining tally,
/// topology-cache counters, and one row per completed cell.
pub fn render_sweep_report(report: &SweepReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep {:?}: {} cells — {} executed, {} skipped, {} remaining",
        report.spec.name,
        report.spec.cells.len(),
        report.executed,
        report.skipped,
        report.remaining,
    );
    let _ = writeln!(
        out,
        "topology cache: {} hits, {} misses ({} networks held)",
        report.cache.hits, report.cache.misses, report.cache.entries
    );
    let _ = writeln!(out, "{:<44} {:>6} {:>10} {:>10}", "cell", "reps", "final", "ci95±");
    for cell in &report.cells {
        let _ = writeln!(
            out,
            "{:<44} {:>6} {:>10.1} {:>10.1}",
            cell.id,
            cell.final_infected.n,
            cell.final_infected.mean,
            cell.final_infected.ci95_half_width
        );
    }
    if report.cells.iter().any(|c| c.telemetry.is_some()) {
        let _ = writeln!(
            out,
            "\n{:<44} {:>8} {:>8} {:>8} {:>8} {:>9}",
            "mechanism telemetry (totals)", "sent", "blocked", "infect", "patch", "throttle"
        );
        for cell in &report.cells {
            if let Some(telemetry) = &cell.telemetry {
                let t = telemetry.totals();
                let blocked = t.blocked_by_scan + t.blocked_by_detection + t.blocked_by_blacklist;
                let _ = writeln!(
                    out,
                    "{:<44} {:>8} {:>8} {:>8} {:>8} {:>9}",
                    cell.id, t.messages_sent, blocked, t.infections, t.patches_applied, t.throttles
                );
            }
        }
    }
    if report.remaining > 0 {
        let _ = writeln!(
            out,
            "interrupted with {} cells to go; finish with `mpvsim sweep resume --dir ...`",
            report.remaining
        );
    }
    out
}

// ----------------------------------------------------------- bounds

const BOUNDS_USAGE: &str = "\
usage: mpvsim bounds [--knob K] [--target F] [--dir PATH] [--virus N]...
                     [--min V] [--max V] [--tolerance V]
                     [--min-reps N] [--max-reps N] [--progress]
                     [--population P] [--seed S] [--threads T] [--fel KIND]
                     [--layout KIND]
       mpvsim bounds --spec FILE [--dir PATH] [--progress] [engine flags]
  --knob K             scan-delay | patch-delay | blacklist-threshold
                       (default scan-delay)
  --target F           containment target as a fraction of the susceptible
                       population, in (0, 1) (default 0.05)
  --dir PATH           bounds results store (default bounds-out); repeat
                       queries are byte-identical cache hits
  --virus N            baseline virus scenario 1|2|3|4 (repeatable;
                       default: 1 and 3)
  --min / --max V      search range override, in the knob's unit
  --tolerance V        bisection stop width (default: knob-specific)
  --min-reps N         replications before CI stopping may trigger (default 4)
  --max-reps N         replication cap per candidate (default 16)
  --progress           stream NDJSON progress events on stderr
  --spec FILE          solve one mpvsim-bounds/1 document ('-' reads stdin)
Engine flags (--threads, --fel, --layout) never change the result; the
report is a pure function of the query document.
";

fn bounds_usage_error(msg: &str) -> i32 {
    eprintln!("{msg}\n{BOUNDS_USAGE}");
    2
}

/// Renders one bounds report as a terminal block.
pub fn render_bounds_report(report: &BoundsReport, dir: &Path, cached: bool) -> String {
    let mut out = String::new();
    let pretty = |v: u64| -> String {
        if report.unit == "seconds" {
            format!("{v} s (≈ {:.1} h)", v as f64 / 3600.0)
        } else {
            format!("{v} messages")
        }
    };
    let headline = match (report.outcome, report.critical) {
        (BoundsOutcome::Converged, Some(c)) => {
            format!("critical {} = {}", report.knob.cli_name(), pretty(c))
        }
        (BoundsOutcome::AboveMax, Some(c)) => {
            format!("contained everywhere in range (critical ≥ {})", pretty(c))
        }
        _ => "uncontainable within the search range".to_owned(),
    };
    let _ = writeln!(out, "{}: {headline}", report.name);
    let _ = writeln!(
        out,
        "  target: mean final infections ≤ {:.1} phones ({:.1}% of susceptible + seeds)",
        report.threshold_infections,
        report.target * 100.0
    );
    let _ = writeln!(
        out,
        "  ODE bracket: [{}, {}] {} (ode critical {}{})",
        report.bracket_lo,
        report.bracket_hi,
        report.unit,
        report.ode_critical,
        if report.bracket_expanded { ", expanded by DES" } else { "" }
    );
    if let (Some(c), Some(v)) = (report.critical, report.violated_at) {
        let _ = writeln!(out, "  confirmed: contained at {c}, violated at {v} {}", report.unit);
    }
    let _ = writeln!(
        out,
        "  effort: {} candidates, {} DES replications",
        report.evaluations.len(),
        report.total_reps
    );
    let _ = writeln!(
        out,
        "  store: {}{}",
        dir.join(&report.spec_hash).display(),
        if cached { "  (cache hit)" } else { "" }
    );
    out
}

fn cmd_bounds(args: &[String]) -> i32 {
    let mut knob = BoundsKnob::ScanDelay;
    let mut target = mpvsim_core::bounds::DEFAULT_TARGET;
    let mut dir = PathBuf::from("bounds-out");
    let mut viruses: Vec<u32> = Vec::new();
    let mut spec_path: Option<String> = None;
    let mut search_min: Option<u64> = None;
    let mut search_max: Option<u64> = None;
    let mut tolerance: Option<u64> = None;
    let mut confirm = ConfirmPolicy::default();
    let mut progress = false;
    let mut figure = FigureOptions::default();
    let mut seed: Option<u64> = None;
    let mut population: Option<usize> = None;
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        match apply_shared_flag(flag, &mut || args.next().cloned(), &mut figure) {
            Err(msg) => return bounds_usage_error(&msg),
            Ok(Some(
                SharedFlag::Threads | SharedFlag::Fel | SharedFlag::Layout | SharedFlag::Shards,
            )) => {}
            Ok(Some(SharedFlag::Seed)) => seed = Some(figure.master_seed),
            Ok(Some(SharedFlag::Population)) => population = Some(figure.population),
            Ok(Some(SharedFlag::Reps)) => {
                return bounds_usage_error(
                    "--reps does not apply: candidate replication counts are adaptive \
                     (use --min-reps / --max-reps)",
                );
            }
            Ok(Some(SharedFlag::Probe)) => {
                return bounds_usage_error("bounds confirmation replications run unprobed");
            }
            Ok(None) => {
                let mut value = |flag: &str| {
                    args.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
                };
                let mut numeric = |flag: &str| {
                    value(flag).and_then(|v| {
                        v.parse::<u64>().map_err(|_| format!("{flag} value {v:?} is not a number"))
                    })
                };
                let result = match flag.as_str() {
                    "--knob" => value("--knob").and_then(|v| {
                        BoundsKnob::from_cli_name(&v).map(|k| knob = k).ok_or_else(|| {
                            format!(
                                "unknown knob {v:?} (one of: scan-delay, patch-delay, \
                                 blacklist-threshold)"
                            )
                        })
                    }),
                    "--target" => value("--target").and_then(|v| {
                        v.parse::<f64>()
                            .map(|f| target = f)
                            .map_err(|_| format!("--target value {v:?} is not a number"))
                    }),
                    "--dir" => value("--dir").map(|v| dir = PathBuf::from(v)),
                    "--virus" => numeric("--virus").and_then(|n| match u32::try_from(n) {
                        Ok(n @ 1..=4) => {
                            viruses.push(n);
                            Ok(())
                        }
                        _ => Err(format!("--virus must be 1..=4, got {n}")),
                    }),
                    "--spec" => value("--spec").map(|v| spec_path = Some(v)),
                    "--min" => numeric("--min").map(|v| search_min = Some(v)),
                    "--max" => numeric("--max").map(|v| search_max = Some(v)),
                    "--tolerance" => numeric("--tolerance").map(|v| tolerance = Some(v)),
                    "--min-reps" => numeric("--min-reps").map(|v| confirm.min_reps = v),
                    "--max-reps" => numeric("--max-reps").map(|v| confirm.max_reps = v),
                    "--progress" => {
                        progress = true;
                        Ok(())
                    }
                    "--help" | "-h" => {
                        print!("{BOUNDS_USAGE}");
                        return 0;
                    }
                    other => Err(format!("unknown flag {other:?}")),
                };
                if let Err(msg) = result {
                    return bounds_usage_error(&msg);
                }
            }
        }
    }

    // Assemble the query documents: either the single --spec file, or one
    // per requested baseline virus scenario.
    let mut specs: Vec<BoundsSpec> = Vec::new();
    if let Some(path) = spec_path {
        let body = if path == "-" {
            let mut buf = Vec::new();
            std::io::Read::read_to_end(&mut std::io::stdin(), &mut buf).map(|_| buf)
        } else {
            std::fs::read(&path)
        };
        let body = match body {
            Ok(body) => body,
            Err(e) => {
                eprintln!("bounds: cannot read {path:?}: {e}");
                return 1;
            }
        };
        match BoundsSpec::from_json(&body) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("bounds: {e}");
                return 1;
            }
        }
    } else {
        if viruses.is_empty() {
            viruses = vec![1, 3];
        }
        for n in viruses {
            let virus = match n {
                1 => VirusProfile::virus1(),
                2 => VirusProfile::virus2(),
                3 => VirusProfile::virus3(),
                _ => VirusProfile::virus4(),
            };
            let mut scenario = ScenarioConfig::baseline(virus);
            if let Some(p) = population {
                scenario =
                    scenario.with_population(mpvsim_core::PopulationConfig::paper_default(p));
            }
            let mut search = knob.default_search();
            if let Some(v) = search_min {
                search.min = v;
            }
            if let Some(v) = search_max {
                search.max = v;
            }
            if let Some(v) = tolerance {
                search.tolerance = v;
            }
            let name = format!("virus{n} {}", knob.cli_name());
            let mut spec = BoundsSpec::new(name, knob, scenario)
                .with_search(search)
                .with_target(target)
                .with_confirm(confirm);
            if let Some(s) = seed {
                spec = spec.with_master_seed(s);
            }
            specs.push(spec);
        }
    }

    let opts = BoundsOptions { engine: figure.engine };
    let mut code = 0;
    for spec in &specs {
        let emit = |ev: &mpvsim_core::bounds::ProgressEvent| {
            if progress {
                if let Ok(line) = serde_json::to_string(ev) {
                    eprintln!("{line}");
                }
            }
        };
        match solve_bounds(spec, &dir, &opts, emit) {
            Ok(run) => print!("{}", render_bounds_report(&run.report, &dir, run.cached)),
            Err(e) => {
                eprintln!("bounds: {}: {e}", spec.name);
                code = 1;
            }
        }
    }
    code
}

// ------------------------------------------------------- serve / submit

const SERVE_USAGE: &str = "\
usage: mpvsim serve --dir PATH [--addr HOST:PORT] [--workers N]
                    [--threads T] [--fel KIND] [--probe KIND]
                    [--log-format FMT]
  --dir PATH           results store: each run in <dir>/runs/<hash>/
  --addr HOST:PORT     listen address (default 127.0.0.1:7311)
  --workers N          simulation worker threads (default 2)
  --threads T          threads within each run's replication batch
  --fel KIND           future-event-list backend: binary-heap|calendar
  --probe KIND         attach a probe to every replication
  --log-format FMT     log line format: json|text (default text; level
                       filter via MPVSIM_LOG, e.g. MPVSIM_LOG=debug —
                       serve defaults to info for the access log)
endpoints:
  POST /v1/runs        submit an mpvsim-scenario/1 spec (?wait=1 blocks)
  GET  /v1/runs/HASH   state/result of one run
  GET  /v1/runs/HASH/events   JSONL progress stream
  POST /v1/bounds      submit an mpvsim-bounds/1 query (?wait=1 blocks)
  GET  /v1/bounds/HASH state/report of one bounds query
  GET  /v1/bounds/HASH/events NDJSON progress stream
  GET  /v1/studies     the study registry
  GET  /v1/healthz     liveness, version, uptime, queue + job counters
  GET  /v1/metrics     Prometheus text exposition of runtime metrics
";

fn cmd_serve(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:7311".to_owned();
    let mut opts = mpvsim_serve::ServeOptions::default();
    let mut figure = FigureOptions::default();
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        match apply_shared_flag(flag, &mut || args.next().cloned(), &mut figure) {
            Err(msg) => {
                eprintln!("{msg}\n{SERVE_USAGE}");
                return 2;
            }
            // Execution knobs belong to the server; the replication plan
            // (reps/seed/population) belongs to each submitted spec.
            Ok(Some(
                SharedFlag::Probe
                | SharedFlag::Fel
                | SharedFlag::Layout
                | SharedFlag::Threads
                | SharedFlag::Shards,
            )) => opts.engine = figure.engine,
            Ok(Some(SharedFlag::Reps | SharedFlag::Seed | SharedFlag::Population)) => {
                eprintln!("{flag} applies per submitted spec, not to the server\n{SERVE_USAGE}");
                return 2;
            }
            Ok(None) => {
                let mut value = |flag: &str| {
                    args.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value\n{SERVE_USAGE}"))
                };
                let result = match flag.as_str() {
                    "--addr" => value("--addr").map(|v| addr = v),
                    "--dir" => value("--dir").map(|v| opts.dir = PathBuf::from(v)),
                    "--workers" => value("--workers").and_then(|v| {
                        v.parse()
                            .map(|n| opts.workers = n)
                            .map_err(|_| format!("--workers value {v:?} is not a number"))
                    }),
                    "--log-format" => value("--log-format").and_then(|v| {
                        mpvsim_obs::LogFormat::parse(&v)
                            .map(mpvsim_obs::log::set_format)
                            .ok_or_else(|| format!("unknown log format {v:?} (json or text)"))
                    }),
                    "--help" | "-h" => {
                        print!("{SERVE_USAGE}");
                        return 0;
                    }
                    other => Err(format!("unknown flag {other:?}\n{SERVE_USAGE}")),
                };
                if let Err(msg) = result {
                    eprintln!("{msg}");
                    return 2;
                }
            }
        }
    }
    // A service wants its access log by default; an explicit MPVSIM_LOG
    // spec (already applied by `init_from_env`) still wins.
    if std::env::var("MPVSIM_LOG").is_err() {
        mpvsim_obs::log::set_default_level(Some(mpvsim_obs::Level::Info));
    }
    match mpvsim_serve::start(&addr, opts) {
        Ok(handle) => {
            println!("mpvsim serve listening on http://{}", handle.addr());
            handle.join();
            0
        }
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

const SUBMIT_USAGE: &str = "\
usage: mpvsim submit <spec.json> [--addr HOST:PORT] [--no-wait] [--events]
  <spec.json>          an mpvsim-scenario/1 document ('-' reads stdin)
  --addr HOST:PORT     server address (default 127.0.0.1:7311)
  --no-wait            enqueue and return immediately (default waits)
  --events             stream the run's JSONL progress after submitting
";

fn submit_usage_error(msg: &str) -> i32 {
    eprintln!("{msg}\n{SUBMIT_USAGE}");
    2
}

/// Renders a server rejection for humans: a structured
/// `mpvsim-error/1` body (as every 4xx from `mpvsim serve` carries)
/// becomes "field: reason" lines; anything else falls back to the raw
/// body so no diagnostic is ever swallowed.
fn render_rejection(body: &[u8]) -> String {
    #[derive(serde::Deserialize)]
    struct ErrorBody {
        #[serde(default)]
        schema: String,
        error: mpvsim_core::ConfigError,
    }
    match serde_json::from_slice::<ErrorBody>(body) {
        Ok(doc) if doc.schema.starts_with("mpvsim-error/") => {
            let mut out = format!("submit: rejected: {}", doc.error);
            if let Some(field) = doc.error.field() {
                let _ = write!(out, " (field: {field})");
            }
            out
        }
        _ => String::from_utf8_lossy(body).trim_end().to_owned(),
    }
}

fn cmd_submit(args: &[String]) -> i32 {
    let mut spec_path: Option<String> = None;
    let mut addr = "127.0.0.1:7311".to_owned();
    let mut wait = true;
    let mut events = false;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v.clone(),
                None => return submit_usage_error("--addr needs a value"),
            },
            "--no-wait" => wait = false,
            "--events" => events = true,
            "--help" | "-h" => {
                print!("{SUBMIT_USAGE}");
                return 0;
            }
            other if other.starts_with('-') && other != "-" => {
                return submit_usage_error(&format!("unknown flag {other:?}"));
            }
            _ if spec_path.is_some() => {
                return submit_usage_error("expected exactly one spec file");
            }
            _ => spec_path = Some(arg.clone()),
        }
    }
    let Some(spec_path) = spec_path else {
        return submit_usage_error("a spec file is required");
    };
    let body = if spec_path == "-" {
        let mut buf = Vec::new();
        std::io::Read::read_to_end(&mut std::io::stdin(), &mut buf).map(|_| buf)
    } else {
        std::fs::read(&spec_path)
    };
    let body = match body {
        Ok(body) => body,
        Err(e) => {
            eprintln!("submit: cannot read {spec_path:?}: {e}");
            return 1;
        }
    };
    let path = if wait { "/v1/runs?wait=1" } else { "/v1/runs" };
    let reply = match mpvsim_serve::request(&addr, "POST", path, Some(&body)) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("submit: {addr}: {e}");
            return 1;
        }
    };
    if let Some(cache) = reply.header("x-mpvsim-cache") {
        eprintln!("submit: {} (cache {cache})", reply.status);
    } else {
        eprintln!("submit: {}", reply.status);
    }
    if !reply.is_success() {
        eprintln!("{}", render_rejection(&reply.body));
        return 1;
    }
    println!("{}", String::from_utf8_lossy(&reply.body).trim_end());
    if events {
        let doc: serde_json::Value = match serde_json::from_slice(&reply.body) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("submit: unparseable response: {e}");
                return 1;
            }
        };
        let Some(hash) = doc["hash"].as_str() else {
            eprintln!("submit: response has no hash to stream");
            return 1;
        };
        let path = format!("/v1/runs/{hash}/events");
        match mpvsim_serve::stream(&addr, &path, &mut std::io::stdout()) {
            Ok(status) if (200..300).contains(&status) => {}
            Ok(status) => {
                eprintln!("submit: events stream returned {status}");
                return 1;
            }
            Err(e) => {
                eprintln!("submit: events stream failed: {e}");
                return 1;
            }
        }
    }
    0
}

// ------------------------------------------------ study-specific views

/// Renders one study's results: the standard report for most studies,
/// the specialised tables for the matrix / congestion / false-positive
/// studies (preserving the historical binaries' output).
pub fn render_study(id: StudyId, results: &[LabeledResult], population: usize) -> String {
    match id {
        StudyId::Matrix => render_matrix(results),
        StudyId::ExtCongestion => render_congestion(results),
        StudyId::ExtFalsePositives => render_false_positives(results, population),
        _ => render_report(id.title(), results),
    }
}

/// The §5.3 effectiveness matrix: final infections as a percentage of
/// each virus's baseline, mechanisms across the columns.
pub fn render_matrix(results: &[LabeledResult]) -> String {
    let get = |label: String| -> f64 {
        results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.result.final_infected.mean)
            .unwrap_or(f64::NAN)
    };
    let mechanisms = ["scan", "detection", "education", "immunization", "monitoring", "blacklist"];
    let mut out = String::new();
    let _ = writeln!(out, "== §5.3 — Effectiveness Matrix (final infections, % of baseline) ==\n");
    let _ = write!(out, "{:<10} {:>10}", "virus", "baseline");
    for m in mechanisms {
        let _ = write!(out, " {m:>13}");
    }
    let _ = writeln!(out);
    for virus in ["Virus 1", "Virus 2", "Virus 3", "Virus 4"] {
        let base = get(format!("{virus} | baseline"));
        let _ = write!(out, "{virus:<10} {base:>10.1}");
        for m in mechanisms {
            let v = get(format!("{virus} | {m}"));
            let _ = write!(out, " {:>12.0}%", 100.0 * v / base);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nReading: small numbers = the mechanism contains that virus.\n\
         The paper's conclusion is the *pattern*: reception/infection-point\n\
         mechanisms (scan, detection, education, immunization) beat the\n\
         self-throttled viruses 1/2/4 but are too slow for Virus 3, while\n\
         the dissemination-point mechanisms (monitoring, blacklisting)\n\
         catch exactly the aggressive Virus 3."
    );
    out
}

/// The gateway-congestion table: infection outcome plus the worst
/// transit delay each capacity setting inflicted.
pub fn render_congestion(results: &[LabeledResult]) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "== Extension — Gateway Congestion (Virus 3 vs finite MMS capacity) ==\n");
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>22}",
        "capacity", "infected", "t½ (h)", "peak transit delay"
    );
    for r in results {
        let t_half = r
            .result
            .mean_time_to_reach(r.result.final_infected.mean / 2.0)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "-".to_owned());
        let peak = r
            .result
            .runs
            .iter()
            .filter_map(|run| run.gateway_peak_delay)
            .max()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "0 (infinite)".to_owned());
        let _ = writeln!(
            out,
            "{:<28} {:>10.1} {:>10} {:>22}",
            r.label, r.result.final_infected.mean, t_half, peak
        );
    }
    let _ = writeln!(
        out,
        "\nThe virus outruns its own congestion: by the time its flood\n\
         saturates the gateway, the first-offer wave that does the real\n\
         damage has already been delivered — but every user of the network\n\
         is left staring at the transit delay in the last column."
    );
    out
}

/// The monitoring false-positive table: containment bought vs innocent
/// users flagged at each threshold.
pub fn render_false_positives(results: &[LabeledResult], population: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Extension — Monitoring False Positives (Virus 3 + legitimate traffic) ==\n"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>14} {:>16}",
        "threshold", "infected", "throttled", "false pos.", "FP per phone-day"
    );
    for r in results {
        let reps = r.result.runs.len() as f64;
        let throttled: u64 = r.result.runs.iter().map(|x| x.stats.throttled_phones).sum();
        let fp: u64 = r.result.runs.iter().map(|x| x.stats.false_positive_throttles).sum();
        let days = 25.0 / 24.0;
        let _ = writeln!(
            out,
            "{:<16} {:>10.1} {:>12.1} {:>14.1} {:>16.4}",
            r.label,
            r.result.final_infected.mean,
            throttled as f64 / reps,
            fp as f64 / reps,
            fp as f64 / reps / (population as f64 * days),
        );
    }
    let _ = writeln!(
        out,
        "\nLower thresholds contain the virus harder but flag more innocent\n\
         users — the provider picks the operating point (the paper raises\n\
         the trade-off for blacklisting but could not quantify it without\n\
         legitimate traffic in the model)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_core::figures::FigureOptions;

    fn tiny() -> FigureOptions {
        FigureOptions {
            reps: 1,
            master_seed: 5,
            engine: mpvsim_core::EngineOptions::new(),
            population: 30,
            ..FigureOptions::default()
        }
    }

    #[test]
    fn list_names_every_registered_study() {
        let text = render_list();
        for info in registry() {
            assert!(text.contains(info.name), "list missing {}", info.name);
        }
    }

    #[test]
    fn study_renderer_picks_the_specialised_tables() {
        let opts = tiny();
        let fig7 = StudyId::Fig7Blacklist.run(&opts).unwrap();
        assert!(render_study(StudyId::Fig7Blacklist, &fig7, 30).contains("--- CSV ---"));
        let matrix = StudyId::Matrix.run(&opts).unwrap();
        let text = render_study(StudyId::Matrix, &matrix, 30);
        assert!(text.contains("Effectiveness Matrix"));
        assert!(text.contains("Virus 3"), "matrix rows missing:\n{text}");
        assert!(!text.contains("--- CSV ---"), "matrix keeps its dedicated table");
    }

    #[test]
    fn congestion_and_false_positive_renderers_keep_their_columns() {
        let opts = tiny();
        let cong = StudyId::ExtCongestion.run(&opts).unwrap();
        let text = render_congestion(&cong);
        assert!(text.contains("peak transit delay"));
        let fp = StudyId::ExtFalsePositives.run(&opts).unwrap();
        let text = render_false_positives(&fp, opts.population);
        assert!(text.contains("FP per phone-day"));
    }

    #[test]
    fn serve_and_submit_usage_errors_exit_2() {
        let args = |list: &[&str]| list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(run(&args(&["serve", "--bogus"])), 2);
        assert_eq!(run(&args(&["serve", "--workers"])), 2, "missing value");
        assert_eq!(run(&args(&["serve", "--reps", "3"])), 2, "reps belong to the spec");
        assert_eq!(run(&args(&["submit"])), 2, "spec file required");
        assert_eq!(run(&args(&["submit", "--bogus", "x.json"])), 2);
        assert_eq!(run(&args(&["submit", "a.json", "b.json"])), 2, "one spec only");
    }

    #[test]
    fn bounds_usage_errors_exit_2() {
        let args = |list: &[&str]| list.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(run(&args(&["bounds", "--bogus"])), 2);
        assert_eq!(run(&args(&["bounds", "--knob", "nope"])), 2, "unknown knob");
        assert_eq!(run(&args(&["bounds", "--virus", "7"])), 2, "viruses are 1..=4");
        assert_eq!(run(&args(&["bounds", "--reps", "3"])), 2, "reps are adaptive");
        assert_eq!(run(&args(&["bounds", "--probe", "chain"])), 2, "no probes");
        assert_eq!(run(&args(&["bounds", "--target"])), 2, "missing value");
    }

    #[test]
    fn rejections_pretty_print_structured_errors_and_fall_back_raw() {
        let body = br#"{"schema":"mpvsim-error/1","error":{"kind":"out_of_range",
            "field":"target","value":"2","allowed":"(0, 1)"}}"#;
        let text = render_rejection(body);
        assert!(text.contains("target 2 must be in (0, 1)"), "{text}");
        assert!(text.contains("(field: target)"), "{text}");
        assert!(!text.contains('{'), "no raw JSON in the pretty form: {text}");
        // Errors without a field still pretty-print.
        let body = br#"{"schema":"mpvsim-error/1","error":{"kind":"malformed","reason":"eof"}}"#;
        assert!(render_rejection(body).contains("malformed spec: eof"));
        // Anything unstructured passes through untouched.
        assert_eq!(render_rejection(b"<html>502</html>\n"), "<html>502</html>");
        assert_eq!(render_rejection(br#"{"weird":true}"#), r#"{"weird":true}"#);
    }

    #[test]
    fn bounds_report_renders_the_critical_deadline() {
        use mpvsim_core::bounds::{BoundsOptions, SearchRange};
        let mut scenario =
            mpvsim_core::ScenarioConfig::baseline(mpvsim_core::VirusProfile::virus3());
        scenario.population = mpvsim_core::PopulationConfig::paper_default(120);
        let spec = BoundsSpec::new("render-test", BoundsKnob::ScanDelay, scenario)
            .with_search(SearchRange { min: 900, max: 14_400, tolerance: 3600 })
            .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 1.0 });
        let dir = std::env::temp_dir().join(format!("mpvsim-bounds-render-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = solve_bounds(&spec, &dir, &BoundsOptions::default(), |_| {}).unwrap();
        let text = render_bounds_report(&run.report, &dir, run.cached);
        assert!(text.contains("render-test"), "{text}");
        assert!(text.contains("ODE bracket"), "{text}");
        assert!(text.contains("target: mean final infections"), "{text}");
        assert!(text.contains(&run.report.spec_hash), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_args_require_dir_and_validate_studies() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert!(parse_sweep_args(&args(&["--reps", "2"]), false).unwrap_err().contains("--dir"));
        assert!(parse_sweep_args(&args(&["--dir", "d", "--study", "nope"]), false).is_err());
        let parsed = parse_sweep_args(
            &args(&["--dir", "d", "--study", "fig1_baseline", "--max-cells", "3"]),
            false,
        )
        .unwrap();
        assert_eq!(parsed.studies, vec![StudyId::Fig1Baseline]);
        assert_eq!(parsed.sweep.max_cells, Some(3));
        // Resume rejects spec-changing flags: the manifest fixes them.
        assert!(parse_sweep_args(&args(&["--dir", "d", "--reps", "9"]), true).is_err());
        let resumed =
            parse_sweep_args(&args(&["--dir", "d", "--cell-workers", "2"]), true).unwrap();
        assert_eq!(resumed.sweep.cell_workers, 2);
    }

    #[test]
    fn sweep_args_parse_probe_and_reject_unknown_kinds() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        let parsed =
            parse_sweep_args(&args(&["--dir", "d", "--probe", "telemetry"]), false).unwrap();
        assert_eq!(parsed.sweep.engine.probe, ProbeKind::Telemetry);
        assert!(parse_sweep_args(&args(&["--dir", "d", "--probe", "nope"]), false).is_err());
        // Probe is an execution knob, so resume accepts it too.
        let resumed = parse_sweep_args(&args(&["--dir", "d", "--probe", "noop"]), true).unwrap();
        assert_eq!(resumed.sweep.engine.probe, ProbeKind::Noop);
    }

    #[test]
    fn trace_command_writes_chain_and_perfetto_files() {
        let dir = std::env::temp_dir().join(format!("mpvsim-cli-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args: Vec<String> = [
            "trace",
            "fig7_blacklist",
            "--out",
            dir.to_str().unwrap(),
            "--reps",
            "2",
            "--population",
            "30",
            "--threads",
            "1",
            "--seed",
            "5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run(&args), 0);
        let cell_dir = dir.join("fig7_blacklist");
        // Fig 7 has a Baseline cell; its three artifacts must exist.
        let chain = std::fs::read_to_string(cell_dir.join("baseline.chain.json")).unwrap();
        let chains: serde_json::Value = serde_json::from_str(&chain).unwrap();
        let chains = chains.as_array().expect("one chain record per replication");
        assert_eq!(chains.len(), 2, "--reps 2 must yield two chain records");
        for chain in chains {
            assert!(chain["infections"].as_array().is_some_and(|v| !v.is_empty()));
            assert!(chain["infections"][0]["infector"].is_null(), "seed has no infector");
        }
        let trace = std::fs::read_to_string(cell_dir.join("baseline.trace.json")).unwrap();
        let trace: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = trace["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        assert_eq!(events[0]["ph"], "i", "Chrome trace instant events");
        let jsonl = std::fs::read_to_string(cell_dir.join("baseline.trace.jsonl")).unwrap();
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
            assert!(v["event"].is_string());
        }
        // Bad invocations exit with a usage error.
        assert_eq!(run(&["trace".to_owned()]), 2);
        assert_eq!(run(&["trace".to_owned(), "nope".to_owned()]), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_run_and_resume_through_the_cli_paths() {
        let dir = std::env::temp_dir().join(format!("mpvsim-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = tiny();
        let spec = SweepSpec::from_studies("cli-test", &[StudyId::Fig7Blacklist], &opts).unwrap();
        let interrupted =
            run_sweep(&spec, &dir, &SweepOptions { max_cells: Some(2), ..SweepOptions::default() })
                .unwrap();
        assert!(interrupted.remaining > 0);
        let text = render_sweep_report(&interrupted);
        assert!(text.contains("sweep resume"), "interrupt hint missing:\n{text}");
        let finished = resume_sweep(&dir, &SweepOptions::default()).unwrap();
        assert_eq!(finished.remaining, 0);
        assert_eq!(finished.cells.len(), spec.cells.len());
        let text = render_sweep_report(&finished);
        assert!(text.contains("0 remaining"), "got:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_bless_then_check_roundtrips_and_catches_tampering() {
        let dir = std::env::temp_dir().join(format!("mpvsim-cli-validate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        let dir_str = dir.to_str().unwrap();
        // Bless one small study at reduced scale (no oracle: not selected).
        assert_eq!(
            run(&args(&[
                "validate",
                "bless",
                "--dir",
                dir_str,
                "--study",
                "ext_congestion",
                "--population",
                "40",
                "--reps",
                "2",
            ])),
            0
        );
        assert!(dir.join("ext_congestion.json").exists());
        assert!(!dir.join(mpvsim_core::validate::ORACLE_FILE).exists());
        // A reference-only check against the fresh golden is clean.
        assert_eq!(
            run(&args(&[
                "validate",
                "check",
                "--dir",
                dir_str,
                "--study",
                "ext_congestion",
                "--no-variants",
            ])),
            0
        );
        // Tamper with the stored mean curve: the check must drift.
        let mut golden = load_study_golden(&dir, StudyId::ExtCongestion).unwrap();
        golden.cells[0].final_mean += 1.0;
        save_study_golden(&dir, &golden).unwrap();
        assert_eq!(
            run(&args(&[
                "validate",
                "check",
                "--dir",
                dir_str,
                "--study",
                "ext_congestion",
                "--no-variants",
            ])),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_fuzz_runs_clean_and_usage_errors_exit_2() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(run(&args(&["validate", "fuzz", "--cases", "2", "--seed", "11"])), 0);
        // Usage errors: missing verb, unknown verb, unknown study, flag for wrong verb.
        assert_eq!(run(&args(&["validate"])), 2);
        assert_eq!(run(&args(&["validate", "nope"])), 2);
        assert_eq!(run(&args(&["validate", "check", "--study", "nope"])), 2);
        assert_eq!(run(&args(&["validate", "fuzz", "--dir", "d"])), 2);
        assert_eq!(run(&args(&["validate", "bless", "--population"])), 2);
    }
}
