//! Integration tests: the qualitative shapes of the paper's Figure 1
//! baselines, at a reduced scale that keeps the suite fast.
//!
//! These assert the *structure* the paper reports — plateau levels near
//! 40 % of the vulnerable population, the relative speed ordering of the
//! four viruses, Virus 2's step curve — not the absolute timings of the
//! authors' testbed.

use mpvsim::prelude::*;

const N: usize = 300;
const REPS: u64 = 3;
const SEED: u64 = 20_07;

fn reduced(virus: VirusProfile, horizon: SimDuration) -> ScenarioConfig {
    let mut c = ScenarioConfig::baseline(virus);
    c.population = PopulationConfig::paper_default(N);
    c.horizon = horizon;
    c
}

fn plan() -> ExperimentPlan {
    ExperimentPlan::new(REPS).master_seed(SEED).engine(EngineOptions::new().with_threads(4))
}

fn mean_final(config: &ScenarioConfig) -> f64 {
    plan().run(config).expect("valid scenario").final_infected.mean
}

#[test]
fn plateaus_near_40_percent_of_vulnerable_population() {
    // 300 phones, 240 vulnerable, eventual acceptance 0.40 ⇒ plateau ≈ 96.
    let expected = 0.8 * N as f64 * 0.40;
    for (virus, horizon) in [
        (VirusProfile::virus1(), SimDuration::from_days(7)),
        (VirusProfile::virus2(), SimDuration::from_days(5)),
        (VirusProfile::virus3(), SimDuration::from_hours(24)),
    ] {
        let name = virus.name.clone();
        let final_mean = mean_final(&reduced(virus, horizon));
        assert!(
            (final_mean - expected).abs() < 0.3 * expected,
            "{name}: plateau {final_mean:.1} not within 30% of expected {expected:.1}"
        );
    }
}

#[test]
fn infection_counts_never_decrease() {
    for virus in [VirusProfile::virus2(), VirusProfile::virus3()] {
        let config = reduced(virus, SimDuration::from_hours(48));
        let result = run_scenario(&config, SEED).expect("valid");
        let vals = result.series.values();
        assert!(
            vals.windows(2).all(|w| w[1] >= w[0]),
            "infection count decreased for {}",
            config.virus.name
        );
    }
}

#[test]
fn virus3_is_dramatically_faster_than_virus1() {
    let v3 =
        plan().run(&reduced(VirusProfile::virus3(), SimDuration::from_hours(24))).expect("valid");
    let v1 =
        plan().run(&reduced(VirusProfile::virus1(), SimDuration::from_days(7))).expect("valid");
    let t_v3 = v3.mean_time_to_reach(50.0).expect("V3 reaches 50 infections");
    let t_v1 = v1.mean_time_to_reach(50.0).expect("V1 reaches 50 infections");
    assert!(
        t_v3 * 3.0 < t_v1,
        "V3 ({t_v3:.1} h to 50) should be at least 3× faster than V1 ({t_v1:.1} h)"
    );
}

#[test]
fn virus4_is_the_slowest_of_the_contact_list_viruses() {
    let horizon = SimDuration::from_days(10);
    let v1 = plan().run(&reduced(VirusProfile::virus1(), horizon)).expect("valid");
    let v4 = plan().run(&reduced(VirusProfile::virus4(), horizon)).expect("valid");
    let t_v1 = v1.mean_time_to_reach(40.0).expect("V1 reaches 40");
    let t_v4 = v4.mean_time_to_reach(40.0).expect("V4 reaches 40");
    assert!(t_v4 > t_v1, "stealthy V4 ({t_v4:.1} h to 40) should lag V1 ({t_v1:.1} h)");
}

#[test]
fn virus2_curve_is_step_like() {
    // Flat between global 24 h boundaries, jumping just after them.
    let config = reduced(VirusProfile::virus2(), SimDuration::from_hours(72));
    let result = run_scenario(&config, SEED).expect("valid");
    let series = &result.series;

    // Growth within the flat window (hours 6..22) must be tiny compared
    // to the jump across the day-1 boundary (hours 23..30).
    let flat = series.value_at_hours(22.0).unwrap() - series.value_at_hours(6.0).unwrap();
    let jump = series.value_at_hours(30.0).unwrap() - series.value_at_hours(23.0).unwrap();
    assert!(
        jump > 5.0 * flat.max(1.0),
        "expected a step at the 24 h boundary: flat-phase growth {flat}, boundary jump {jump}"
    );
}

#[test]
fn results_scale_with_population() {
    // §5.3: penetration fractions match across population sizes.
    let small = reduced(VirusProfile::virus3(), SimDuration::from_hours(24));
    let mut large = small.clone();
    large.population = PopulationConfig::paper_default(2 * N);

    let f_small = mean_final(&small) / N as f64;
    let f_large = mean_final(&large) / (2 * N) as f64;
    assert!(
        (f_small - f_large).abs() < 0.08,
        "penetration fraction should scale: {f_small:.3} (n={N}) vs {f_large:.3} (n={})",
        2 * N
    );
}

#[test]
fn initial_infections_seed_the_series() {
    let mut config = reduced(VirusProfile::virus1(), SimDuration::from_hours(2));
    config.initial_infections = 5;
    let result = run_scenario(&config, SEED).expect("valid");
    assert_eq!(result.series.values()[0], 5.0, "t=0 sample sees all seeds");
}
