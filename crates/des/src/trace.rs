//! Event tracing: a composable model wrapper that records the last N
//! events with their firing times.
//!
//! Debugging a stochastic model usually starts with "what happened right
//! before the weird state?". [`Traced`] wraps any [`Model`] and keeps a
//! bounded ring of `(time, event)` records without touching the wrapped
//! model's logic or determinism.
//!
//! ```rust
//! use mpvsim_des::trace::Traced;
//! use mpvsim_des::{Model, Context, Simulation, SimTime, SimDuration};
//!
//! struct Counter(u32);
//! impl Model for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, ev: u32, ctx: &mut Context<'_, u32>) {
//!         self.0 += ev;
//!         if ev > 1 {
//!             ctx.schedule_in(SimDuration::from_secs(1), ev - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Traced::new(Counter(0), 8), 1);
//! sim.schedule(SimTime::ZERO, 3);
//! let traced = sim.run();
//! assert_eq!(traced.inner().0, 3 + 2 + 1);
//! assert_eq!(traced.trace().len(), 3);
//! assert!(traced.trace().records()[0].1.contains('3'));
//! ```

use std::collections::VecDeque;
use std::fmt::Debug;

use crate::engine::{Context, Model};
use crate::time::SimTime;

/// A bounded ring of `(time, rendered event)` records.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    records: VecDeque<(SimTime, String)>,
    total: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        TraceRing { capacity, records: VecDeque::with_capacity(capacity), total: 0 }
    }

    /// Records one event (rendered via `Debug`), evicting the oldest
    /// record if full.
    pub fn record<E: Debug>(&mut self, time: SimTime, event: &E) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back((time, format!("{event:?}")));
        self.total += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> &VecDeque<(SimTime, String)> {
        &self.records
    }

    /// Number of retained records (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Lifetime number of recorded events (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Renders the retained records, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, e) in &self.records {
            out.push_str(&format!("{t} {e}\n"));
        }
        out
    }
}

/// A model wrapper that records every handled event into a [`TraceRing`].
#[derive(Debug)]
pub struct Traced<M: Model> {
    inner: M,
    ring: TraceRing,
}

impl<M: Model> Traced<M> {
    /// Wraps `inner`, retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: M, capacity: usize) -> Self {
        Traced { inner, ring: TraceRing::new(capacity) }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped model.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// The recorded trace.
    pub fn trace(&self) -> &TraceRing {
        &self.ring
    }

    /// Unwraps into the inner model and the trace.
    pub fn into_parts(self) -> (M, TraceRing) {
        (self.inner, self.ring)
    }
}

impl<M: Model> Model for Traced<M>
where
    M::Event: Debug,
{
    type Event = M::Event;

    fn handle(&mut self, event: Self::Event, ctx: &mut Context<'_, Self::Event>) {
        self.ring.record(ctx.now(), &event);
        self.inner.handle(event, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Ping(u32),
    }

    struct Echo {
        seen: Vec<u32>,
    }

    impl Model for Echo {
        type Event = Ev;
        fn handle(&mut self, Ev::Ping(n): Ev, ctx: &mut Context<'_, Ev>) {
            self.seen.push(n);
            if n > 0 {
                ctx.schedule_in(SimDuration::from_secs(5), Ev::Ping(n - 1));
            }
        }
    }

    #[test]
    fn records_every_event_with_time() {
        let mut sim = Simulation::new(Traced::new(Echo { seen: vec![] }, 16), 1);
        sim.schedule(SimTime::ZERO, Ev::Ping(2));
        let traced = sim.run();
        assert_eq!(traced.inner().seen, vec![2, 1, 0]);
        let records = traced.trace().records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, SimTime::ZERO);
        assert_eq!(records[2].0, SimTime::from_secs(10));
        assert!(records[0].1.contains("Ping(2)"));
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let mut ring = TraceRing::new(2);
        ring.record(SimTime::from_secs(1), &"a");
        ring.record(SimTime::from_secs(2), &"b");
        ring.record(SimTime::from_secs(3), &"c");
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_recorded(), 3);
        let kept: Vec<&str> = ring.records().iter().map(|(_, e)| e.as_str()).collect();
        assert_eq!(kept, vec!["\"b\"", "\"c\""]);
    }

    #[test]
    fn render_is_one_line_per_record() {
        let mut ring = TraceRing::new(4);
        assert!(ring.is_empty());
        ring.record(SimTime::from_secs(90), &42u32);
        let text = ring.render();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("00h01m30s"));
        assert!(text.contains("42"));
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceRing::new(0);
    }

    #[test]
    fn tracing_does_not_change_behaviour() {
        let run_plain = |seed| {
            let mut sim = Simulation::new(Echo { seen: vec![] }, seed);
            sim.schedule(SimTime::ZERO, Ev::Ping(5));
            sim.run().seen
        };
        let run_traced = |seed| {
            let mut sim = Simulation::new(Traced::new(Echo { seen: vec![] }, 2), seed);
            sim.schedule(SimTime::ZERO, Ev::Ping(5));
            sim.run().into_parts().0.seen
        };
        assert_eq!(run_plain(9), run_traced(9));
    }

    #[test]
    fn into_parts_returns_both() {
        let mut sim = Simulation::new(Traced::new(Echo { seen: vec![] }, 4), 1);
        sim.schedule(SimTime::ZERO, Ev::Ping(0));
        let (model, ring) = sim.run().into_parts();
        assert_eq!(model.seen, vec![0]);
        assert_eq!(ring.total_recorded(), 1);
    }
}
