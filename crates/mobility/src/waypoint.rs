//! The random-waypoint mobility process.
//!
//! Each node repeats: pick a uniformly random destination in the arena,
//! walk toward it in a straight line at a speed drawn uniformly from
//! `[min_speed, max_speed]`, pause for a uniformly drawn time on arrival,
//! repeat. This is the standard mobility model of the ad-hoc-networking
//! literature and the usual substrate for Bluetooth-worm studies.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::arena::{Arena, Point};

/// Random-waypoint parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointParams {
    /// Minimum walking speed, m/s (> 0 to avoid the well-known
    /// speed-decay degeneracy of min speed 0).
    pub min_speed: f64,
    /// Maximum walking speed, m/s.
    pub max_speed: f64,
    /// Shortest pause at a reached waypoint, seconds.
    pub min_pause: f64,
    /// Longest pause at a reached waypoint, seconds.
    pub max_pause: f64,
}

impl WaypointParams {
    /// Pedestrians: 0.5–1.5 m/s with pauses up to two minutes.
    pub fn pedestrian() -> Self {
        WaypointParams { min_speed: 0.5, max_speed: 1.5, min_pause: 0.0, max_pause: 120.0 }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.min_speed.is_finite() && self.min_speed > 0.0) {
            return Err(format!("min_speed must be positive, got {}", self.min_speed));
        }
        if !(self.max_speed.is_finite() && self.max_speed >= self.min_speed) {
            return Err(format!(
                "max_speed {} must be ≥ min_speed {}",
                self.max_speed, self.min_speed
            ));
        }
        if !(self.min_pause.is_finite() && self.min_pause >= 0.0) {
            return Err(format!("min_pause must be non-negative, got {}", self.min_pause));
        }
        if !(self.max_pause.is_finite() && self.max_pause >= self.min_pause) {
            return Err(format!(
                "max_pause {} must be ≥ min_pause {}",
                self.max_pause, self.min_pause
            ));
        }
        Ok(())
    }

    fn draw_speed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.max_speed == self.min_speed {
            self.min_speed
        } else {
            rng.random_range(self.min_speed..=self.max_speed)
        }
    }

    fn draw_pause<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.max_pause == self.min_pause {
            self.min_pause
        } else {
            rng.random_range(self.min_pause..=self.max_pause)
        }
    }
}

/// One node's mobility state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Walking toward the target at the given speed (m/s).
    Walking { speed: f64 },
    /// Paused; `remaining` seconds left before choosing a new waypoint.
    Paused { remaining: f64 },
}

/// A single random-waypoint walker.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomWaypoint {
    position: Point,
    target: Point,
    phase: Phase,
}

impl RandomWaypoint {
    /// Spawns a walker at a random position with a random first target.
    pub fn spawn<R: Rng + ?Sized>(arena: &Arena, params: &WaypointParams, rng: &mut R) -> Self {
        let position = arena.random_point(rng);
        let target = arena.random_point(rng);
        RandomWaypoint { position, target, phase: Phase::Walking { speed: params.draw_speed(rng) } }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// True while paused at a waypoint.
    pub fn is_paused(&self) -> bool {
        matches!(self.phase, Phase::Paused { .. })
    }

    /// Advances the walker by `dt` seconds, possibly through several
    /// walk/pause transitions.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn advance<R: Rng + ?Sized>(
        &mut self,
        arena: &Arena,
        params: &WaypointParams,
        dt: f64,
        rng: &mut R,
    ) {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be a non-negative time step");
        let mut remaining_dt = dt;
        // Bound the number of phase transitions per call; with positive
        // speeds and pauses this loop terminates long before the cap.
        for _ in 0..10_000 {
            if remaining_dt <= 0.0 {
                return;
            }
            match self.phase {
                Phase::Paused { remaining } => {
                    if remaining > remaining_dt {
                        self.phase = Phase::Paused { remaining: remaining - remaining_dt };
                        return;
                    }
                    remaining_dt -= remaining;
                    self.target = arena.random_point(rng);
                    self.phase = Phase::Walking { speed: params.draw_speed(rng) };
                }
                Phase::Walking { speed } => {
                    let dist_to_target = self.position.distance(self.target);
                    let step = speed * remaining_dt;
                    if step < dist_to_target {
                        let frac = step / dist_to_target;
                        self.position = arena.clamp(Point::new(
                            self.position.x + (self.target.x - self.position.x) * frac,
                            self.position.y + (self.target.y - self.position.y) * frac,
                        ));
                        return;
                    }
                    // Reached the waypoint within this step.
                    remaining_dt -= if speed > 0.0 { dist_to_target / speed } else { 0.0 };
                    self.position = self.target;
                    self.phase = Phase::Paused { remaining: params.draw_pause(rng) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arena() -> Arena {
        Arena::new(1000.0, 500.0).unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn pedestrian_params_valid() {
        WaypointParams::pedestrian().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = WaypointParams::pedestrian();
        p.min_speed = 0.0;
        assert!(p.validate().is_err());
        let mut p = WaypointParams::pedestrian();
        p.max_speed = 0.1;
        assert!(p.validate().is_err());
        let mut p = WaypointParams::pedestrian();
        p.min_pause = -1.0;
        assert!(p.validate().is_err());
        let mut p = WaypointParams::pedestrian();
        p.max_pause = p.min_pause - 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn walker_stays_inside_arena() {
        let a = arena();
        let p = WaypointParams::pedestrian();
        let mut r = rng(1);
        let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
        for _ in 0..5000 {
            w.advance(&a, &p, 30.0, &mut r);
            assert!(a.contains(w.position()), "walker escaped: {:?}", w.position());
        }
    }

    #[test]
    fn walker_moves_at_bounded_speed() {
        let a = arena();
        let p = WaypointParams { min_speed: 1.0, max_speed: 2.0, min_pause: 0.0, max_pause: 0.0 };
        let mut r = rng(2);
        let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
        for _ in 0..1000 {
            let before = w.position();
            w.advance(&a, &p, 10.0, &mut r);
            let moved = before.distance(w.position());
            // Straight-line displacement can't exceed max_speed × dt.
            assert!(moved <= 2.0 * 10.0 + 1e-9, "moved {moved} m in 10 s at ≤ 2 m/s");
        }
    }

    #[test]
    fn walker_eventually_pauses_and_resumes() {
        let a = Arena::new(50.0, 50.0).unwrap();
        let p = WaypointParams { min_speed: 5.0, max_speed: 5.0, min_pause: 60.0, max_pause: 60.0 };
        let mut r = rng(3);
        let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
        let mut saw_pause = false;
        let mut saw_walk_after_pause = false;
        for _ in 0..500 {
            w.advance(&a, &p, 5.0, &mut r);
            if w.is_paused() {
                saw_pause = true;
            } else if saw_pause {
                saw_walk_after_pause = true;
                break;
            }
        }
        assert!(saw_pause, "walker never paused");
        assert!(saw_walk_after_pause, "walker never resumed after a pause");
    }

    #[test]
    fn zero_dt_is_a_noop() {
        let a = arena();
        let p = WaypointParams::pedestrian();
        let mut r = rng(4);
        let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
        let before = w.clone();
        w.advance(&a, &p, 0.0, &mut r);
        assert_eq!(w, before);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dt_panics() {
        let a = arena();
        let p = WaypointParams::pedestrian();
        let mut r = rng(5);
        let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
        w.advance(&a, &p, -1.0, &mut r);
    }

    #[test]
    fn large_step_crosses_many_waypoints_without_stalling() {
        let a = Arena::new(10.0, 10.0).unwrap();
        let p = WaypointParams { min_speed: 10.0, max_speed: 10.0, min_pause: 0.0, max_pause: 1.0 };
        let mut r = rng(6);
        let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
        // One hour in a 10 m arena at 10 m/s crosses thousands of
        // waypoints; advance() must terminate and stay in bounds.
        w.advance(&a, &p, 3600.0, &mut r);
        assert!(a.contains(w.position()));
    }

    proptest! {
        /// However the parameters and steps are drawn, walkers never
        /// leave the arena.
        #[test]
        fn prop_contained(
            seed in 0u64..1000,
            steps in proptest::collection::vec(0.1f64..300.0, 1..50),
            min_speed in 0.1f64..3.0,
            extra_speed in 0.0f64..3.0,
            max_pause in 0.0f64..200.0,
        ) {
            let a = Arena::new(300.0, 200.0).unwrap();
            let p = WaypointParams {
                min_speed,
                max_speed: min_speed + extra_speed,
                min_pause: 0.0,
                max_pause,
            };
            p.validate().unwrap();
            let mut r = rng(seed);
            let mut w = RandomWaypoint::spawn(&a, &p, &mut r);
            for dt in steps {
                w.advance(&a, &p, dt, &mut r);
                prop_assert!(a.contains(w.position()));
            }
        }
    }
}
