//! Deprecated shim: forwards to `mpvsim study blacklist_matrix`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("blacklist_matrix");
}
