//! End-to-end API test: boot the server on an ephemeral port, drive it
//! with the crate's own client, and prove the contract the CI smoke job
//! re-checks with curl — same spec twice ⇒ byte-identical cache hit,
//! malformed spec ⇒ structured 422, progress streamed as JSONL.

use std::time::Duration;

use mpvsim_core::bounds::{BoundsKnob, BoundsSpec, ConfirmPolicy, SearchRange};
use mpvsim_core::{PopulationConfig, ScenarioConfig, ScenarioSpec, VirusProfile};
use mpvsim_des::{DelaySpec, SimDuration};
use mpvsim_serve::{request, start, ServeOptions};
use mpvsim_topology::GraphSpec;

fn tiny_config() -> ScenarioConfig {
    let mut config = ScenarioConfig::baseline(VirusProfile::virus3());
    config.population =
        PopulationConfig { topology: GraphSpec::erdos_renyi(40, 6.0), vulnerable_fraction: 0.8 };
    config.behavior.read_delay = DelaySpec::constant(SimDuration::from_mins(5));
    config.horizon = SimDuration::from_hours(4);
    config
}

#[test]
fn serve_api_end_to_end() {
    let dir = std::env::temp_dir().join(format!("mpvsim-serve-api-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions { dir: dir.clone(), workers: 1, ..ServeOptions::default() };
    let handle = start("127.0.0.1:0", opts).expect("bind an ephemeral port");
    let addr = handle.addr().to_string();

    // Liveness, build identity, and the lifetime job counters.
    let health = request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let doc: serde_json::Value = serde_json::from_slice(&health.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-health/2");
    assert_eq!(doc["status"], "ok");
    assert_eq!(doc["version"].as_str(), Some(env!("CARGO_PKG_VERSION")));
    assert!(doc["uptime_secs"].as_u64().is_some(), "{doc}");
    assert_eq!(doc["completed_total"], 0);
    assert_eq!(doc["failed_total"], 0);

    // The study directory lists the whole registry.
    let studies = request(&addr, "GET", "/v1/studies", None).unwrap();
    assert_eq!(studies.status, 200);
    let doc: serde_json::Value = serde_json::from_slice(&studies.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-studies/1");
    assert_eq!(doc["studies"].as_array().unwrap().len(), 16);
    let names: Vec<&str> =
        doc["studies"].as_array().unwrap().iter().filter_map(|s| s["name"].as_str()).collect();
    assert!(names.contains(&"fig1_baseline"), "{names:?}");

    // First submission simulates; the repeat must be a byte-identical
    // cache hit, distinguished only by the x-mpvsim-cache header.
    let spec = ScenarioSpec::new("serve-smoke", tiny_config()).with_replication(2, 11);
    let body = spec.canonical_json();
    let first = request(&addr, "POST", "/v1/runs?wait=1", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
    assert_eq!(first.header("x-mpvsim-cache"), Some("miss"));
    let second = request(&addr, "POST", "/v1/runs?wait=1", Some(&body)).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-mpvsim-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");

    let doc: serde_json::Value = serde_json::from_slice(&first.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-run/1");
    assert_eq!(doc["state"], "done");
    assert_eq!(doc["hash"].as_str(), Some(spec.content_hash().as_str()));
    let round_trip: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(doc["spec"], round_trip, "the stored spec is the submitted spec");
    assert!(doc["result"]["final_infected"]["mean"].as_f64().is_some(), "{doc}");

    // A non-canonical serialization of the same scenario (extra
    // whitespace) canonicalizes to the same hash and also hits.
    let spaced = String::from_utf8(body.clone()).unwrap().replace("\":", "\": ");
    let hit = request(&addr, "POST", "/v1/runs?wait=1", Some(spaced.as_bytes())).unwrap();
    assert_eq!(hit.header("x-mpvsim-cache"), Some("hit"));
    assert_eq!(hit.body, first.body);

    // GET by hash returns the same document.
    let hash = spec.content_hash();
    let got = request(&addr, "GET", &format!("/v1/runs/{hash}"), None).unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, first.body);

    // The events endpoint replays the run's JSONL progress and
    // terminates with a server-generated state line.
    let mut events = Vec::new();
    let status =
        mpvsim_serve::stream(&addr, &format!("/v1/runs/{hash}/events"), &mut events).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(events).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "2 replication lines + a final state line, got: {text:?}");
    for line in &lines {
        let value: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        assert!(value["type"].is_string(), "{line}");
    }
    let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(last["type"], "run");
    assert_eq!(last["state"], "done");
    assert_eq!(last["hash"].as_str(), Some(hash.as_str()));

    // Async path: submit without wait, poll until done.
    let async_spec = ScenarioSpec::new("serve-async", tiny_config()).with_replication(2, 23);
    let accepted = request(&addr, "POST", "/v1/runs", Some(&async_spec.canonical_json())).unwrap();
    assert_eq!(accepted.status, 202);
    assert_eq!(accepted.header("x-mpvsim-cache"), Some("miss"));
    let doc: serde_json::Value = serde_json::from_slice(&accepted.body).unwrap();
    assert!(matches!(doc["state"].as_str(), Some("queued" | "running")), "{doc}");
    let async_hash = async_spec.content_hash();
    let mut done = false;
    for _ in 0..600 {
        let got = request(&addr, "GET", &format!("/v1/runs/{async_hash}"), None).unwrap();
        let doc: serde_json::Value = serde_json::from_slice(&got.body).unwrap();
        match doc["state"].as_str() {
            Some("done") => {
                done = true;
                break;
            }
            Some("queued" | "running") => std::thread::sleep(Duration::from_millis(100)),
            other => panic!("unexpected state {other:?}: {doc}"),
        }
    }
    assert!(done, "async run never completed");

    // Two jobs actually simulated (the cache hits never enqueued one),
    // and both show up in the lifetime counter.
    let health = request(&addr, "GET", "/v1/healthz", None).unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&health.body).unwrap();
    assert_eq!(doc["completed_total"], 2, "{doc}");
    assert_eq!(doc["failed_total"], 0, "{doc}");

    // Malformed JSON, unknown fields and invalid scenarios are
    // structured 422s.
    let bad = request(&addr, "POST", "/v1/runs", Some(b"{not json")).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-error/1");
    assert_eq!(doc["error"]["kind"], "malformed");

    let mut invalid = ScenarioSpec::new("serve-invalid", tiny_config());
    invalid.scenario.initial_infections = 0;
    let bad =
        request(&addr, "POST", "/v1/runs", Some(&serde_json::to_vec(&invalid).unwrap())).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["error"]["kind"], "invalid");
    assert_eq!(doc["error"]["field"], "initial_infections");

    // Unknown runs, unknown routes, wrong methods.
    let missing = request(&addr, "GET", "/v1/runs/0000000000000000", None).unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(request(&addr, "GET", "/v1/runs/not-a-hash", None).unwrap().status, 404);
    assert_eq!(request(&addr, "GET", "/v1/nope", None).unwrap().status, 404);
    assert_eq!(request(&addr, "PUT", "/v1/runs", Some(b"{}")).unwrap().status, 405);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The exposition and request-tracing contract: every response carries
/// an `x-request-id` (client-supplied ids echoed, otherwise generated),
/// and `GET /v1/metrics` renders the process-global registry as
/// Prometheus text format 0.0.4 with the per-endpoint series the CI
/// metrics-smoke job greps for.
#[test]
fn metrics_and_request_ids() {
    use std::io::{Read as _, Write as _};

    let dir = std::env::temp_dir().join(format!("mpvsim-serve-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions { dir: dir.clone(), workers: 1, ..ServeOptions::default() };
    let handle = start("127.0.0.1:0", opts).expect("bind an ephemeral port");
    let addr = handle.addr().to_string();

    // A generated request id is echoed on every response.
    let health = request(&addr, "GET", "/v1/healthz", None).unwrap();
    let generated = health.header("x-request-id").expect("every response carries a request id");
    assert!(generated.starts_with("req-"), "generated id, got {generated:?}");

    // A sane client-supplied id is echoed verbatim (the crate client
    // cannot set custom headers, so speak raw HTTP/1.1).
    let mut sock = std::net::TcpStream::connect(&addr).unwrap();
    write!(
        sock,
        "GET /v1/healthz HTTP/1.1\r\nhost: {addr}\r\nx-request-id: trace-42\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    sock.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("x-request-id: trace-42"), "client id not echoed:\n{raw}");

    // One miss and one hit populate the cache and endpoint series.
    let spec = ScenarioSpec::new("serve-metrics", tiny_config()).with_replication(2, 7);
    let body = spec.canonical_json();
    let first = request(&addr, "POST", "/v1/runs?wait=1", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
    let second = request(&addr, "POST", "/v1/runs?wait=1", Some(&body)).unwrap();
    assert_eq!(second.header("x-mpvsim-cache"), Some("hit"));

    let metrics = request(&addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.header("content-type"), Some("text/plain; version=0.0.4; charset=utf-8"));
    let text = String::from_utf8(metrics.body).unwrap();

    // Well-formed exposition: every family has a HELP and a TYPE line.
    assert_eq!(text.matches("# HELP ").count(), text.matches("# TYPE ").count(), "{text}");
    for series in [
        "# TYPE mpvsim_http_requests_total counter",
        "# TYPE mpvsim_http_request_seconds histogram",
        "# TYPE mpvsim_serve_queue_depth gauge",
        // Counts are process-global (the other tests in this binary hit
        // the same registry concurrently), so series presence is the
        // stable assertion, not exact values.
        "mpvsim_http_requests_total{endpoint=\"runs_post\",method=\"POST\",status=\"200\"}",
        "mpvsim_http_request_seconds_bucket{endpoint=\"runs_post\",le=\"+Inf\"}",
        "mpvsim_http_request_seconds_bucket{endpoint=\"healthz\",le=\"+Inf\"}",
        "mpvsim_http_request_seconds_sum{endpoint=\"runs_post\"}",
        "mpvsim_http_request_seconds_count{endpoint=\"runs_post\"}",
        "mpvsim_serve_cache_total{endpoint=\"runs_post\",result=\"miss\"}",
        "mpvsim_serve_cache_total{endpoint=\"runs_post\",result=\"hit\"}",
        "mpvsim_serve_jobs_completed_total{kind=\"run\"}",
        "mpvsim_serve_worker_panics_total 0",
    ] {
        assert!(text.contains(series), "missing {series:?} in exposition:\n{text}");
    }
    // The engine-level series flow through the same registry. Counts are
    // process-global (other tests in this binary also simulate), so only
    // presence is asserted.
    for name in
        ["mpvsim_replications_total", "mpvsim_sim_events_total", "mpvsim_topology_cache_total"]
    {
        assert!(text.contains(name), "missing engine series {name:?} in exposition:\n{text}");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounds_api_end_to_end() {
    let dir = std::env::temp_dir().join(format!("mpvsim-serve-bounds-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions { dir: dir.clone(), workers: 1, ..ServeOptions::default() };
    let handle = start("127.0.0.1:0", opts).expect("bind an ephemeral port");
    let addr = handle.addr().to_string();

    let spec = BoundsSpec::new("serve-bounds", BoundsKnob::ScanDelay, tiny_config())
        .with_search(SearchRange { min: 900, max: 14_400, tolerance: 1800 })
        .with_confirm(ConfirmPolicy { min_reps: 2, max_reps: 3, min_half_width: 1.0 });
    let body = spec.canonical_json();
    let hash = spec.content_hash();

    // First query solves; the repeat is a byte-identical cache hit.
    let first = request(&addr, "POST", "/v1/bounds?wait=1", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
    assert_eq!(first.header("x-mpvsim-cache"), Some("miss"));
    let second = request(&addr, "POST", "/v1/bounds?wait=1", Some(&body)).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-mpvsim-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");

    // The body is the stored mpvsim-bounds-report/1 document verbatim.
    let doc: serde_json::Value = serde_json::from_slice(&first.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-bounds-report/1");
    assert_eq!(doc["spec_hash"].as_str(), Some(hash.as_str()));
    assert!(doc["evaluations"].as_array().is_some_and(|e| !e.is_empty()), "{doc}");
    let stored = std::fs::read(dir.join("bounds").join(&hash).join("report.json")).unwrap();
    assert_eq!(first.body, stored, "the response is the store file, byte-for-byte");

    // GET by hash returns the same document.
    let got = request(&addr, "GET", &format!("/v1/bounds/{hash}"), None).unwrap();
    assert_eq!(got.status, 200);
    assert_eq!(got.body, first.body);

    // The events endpoint replays the solver's deterministic NDJSON
    // progress and terminates with a server-generated state line.
    let mut events = Vec::new();
    let status =
        mpvsim_serve::stream(&addr, &format!("/v1/bounds/{hash}/events"), &mut events).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(events).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "start + bracket + evals + state line, got: {text:?}");
    let head: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(head["event"], "start");
    assert_eq!(head["hash"].as_str(), Some(hash.as_str()));
    let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert_eq!(last["type"], "bounds");
    assert_eq!(last["state"], "done");

    // Malformed and invalid queries are structured 422s through the
    // same funnel as every other entry point.
    let bad = request(&addr, "POST", "/v1/bounds", Some(b"{not json")).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["schema"], "mpvsim-error/1");
    assert_eq!(doc["error"]["kind"], "malformed");
    let mut invalid = spec.clone();
    invalid.target = 2.0;
    let bad =
        request(&addr, "POST", "/v1/bounds", Some(&serde_json::to_vec(&invalid).unwrap())).unwrap();
    assert_eq!(bad.status, 422);
    let doc: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(doc["error"]["kind"], "out_of_range");
    assert_eq!(doc["error"]["field"], "target");

    // Unknown hashes and wrong methods.
    assert_eq!(request(&addr, "GET", "/v1/bounds/0000000000000000", None).unwrap().status, 404);
    assert_eq!(request(&addr, "GET", "/v1/bounds/not-a-hash", None).unwrap().status, 404);
    assert_eq!(request(&addr, "PUT", "/v1/bounds", Some(b"{}")).unwrap().status, 405);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
