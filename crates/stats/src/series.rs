//! A time series sampled on a uniform grid.
//!
//! One simulation replication produces one `TimeSeries`: the infection
//! count sampled every `step_hours` hours. A uniform grid keeps
//! cross-replication aggregation trivial (pointwise) and matches how the
//! paper's figures are drawn.

use serde::{Deserialize, Serialize};

/// A uniformly sampled time series: `values[k]` is the observation at time
/// `k * step_hours` hours.
///
/// ```rust
/// use mpvsim_stats::TimeSeries;
///
/// let s = TimeSeries::from_values(0.5, vec![0.0, 2.0, 4.0]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.time_at(2), 1.0);
/// assert_eq!(s.final_value(), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    step_hours: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Builds a series from a sampling step (hours) and its samples.
    ///
    /// # Panics
    ///
    /// Panics if `step_hours` is not finite and positive.
    pub fn from_values(step_hours: f64, values: Vec<f64>) -> Self {
        assert!(
            step_hours.is_finite() && step_hours > 0.0,
            "step_hours must be finite and positive"
        );
        TimeSeries { step_hours, values }
    }

    /// An empty series with the given step.
    pub fn new(step_hours: f64) -> Self {
        TimeSeries::from_values(step_hours, Vec::new())
    }

    /// Appends an observation at the next grid point.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The sampling step, in hours.
    pub fn step_hours(&self) -> f64 {
        self.step_hours
    }

    /// The sample values, in time order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The time (hours) of sample `k`.
    pub fn time_at(&self, k: usize) -> f64 {
        k as f64 * self.step_hours
    }

    /// Iterates `(time_hours, value)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values.iter().enumerate().map(move |(k, &v)| (self.time_at(k), v))
    }

    /// The last observation.
    pub fn final_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// The largest observation.
    pub fn max_value(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// The value at the latest grid point with time ≤ `hours` (the series
    /// is a step function). `None` if `hours` precedes the first sample.
    pub fn value_at_hours(&self, hours: f64) -> Option<f64> {
        if self.values.is_empty() || hours < 0.0 {
            return None;
        }
        let idx = (hours / self.step_hours).floor() as usize;
        let idx = idx.min(self.values.len() - 1);
        Some(self.values[idx])
    }

    /// The first time (hours) at which the series reaches `threshold`,
    /// or `None` if it never does.
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.points().find(|&(_, v)| v >= threshold).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::from_values(2.0, vec![0.0, 5.0, 9.0, 9.0, 12.0])
    }

    #[test]
    fn construction_and_accessors() {
        let s = series();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.step_hours(), 2.0);
        assert_eq!(s.values()[1], 5.0);
        assert_eq!(s.time_at(3), 6.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_step_rejected() {
        let _ = TimeSeries::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nan_step_rejected() {
        let _ = TimeSeries::new(f64::NAN);
    }

    #[test]
    fn push_appends_in_order() {
        let mut s = TimeSeries::new(1.0);
        assert!(s.is_empty());
        s.push(1.0);
        s.push(2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn points_pair_times_with_values() {
        let pts: Vec<_> = series().points().collect();
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[4], (8.0, 12.0));
    }

    #[test]
    fn final_and_max_values() {
        assert_eq!(series().final_value(), Some(12.0));
        assert_eq!(series().max_value(), Some(12.0));
        assert_eq!(TimeSeries::new(1.0).final_value(), None);
        assert_eq!(TimeSeries::new(1.0).max_value(), None);
    }

    #[test]
    fn value_at_hours_steps() {
        let s = series();
        assert_eq!(s.value_at_hours(0.0), Some(0.0));
        assert_eq!(s.value_at_hours(1.9), Some(0.0));
        assert_eq!(s.value_at_hours(2.0), Some(5.0));
        assert_eq!(s.value_at_hours(5.0), Some(9.0));
        assert_eq!(s.value_at_hours(100.0), Some(12.0), "clamps to last");
        assert_eq!(s.value_at_hours(-1.0), None);
        assert_eq!(TimeSeries::new(1.0).value_at_hours(0.0), None);
    }

    #[test]
    fn time_to_reach_finds_first_crossing() {
        let s = series();
        assert_eq!(s.time_to_reach(5.0), Some(2.0));
        assert_eq!(s.time_to_reach(9.0), Some(4.0));
        assert_eq!(s.time_to_reach(0.0), Some(0.0));
        assert_eq!(s.time_to_reach(100.0), None);
    }
}
