//! API-level tests of the canonical `mpvsim-scenario/1` wire schema:
//! every registry study must be expressible as a spec set whose
//! documents round-trip byte-exactly (the property `mpvsim serve`'s
//! content-addressed cache rests on), and the spec goldens committed
//! under `goldens/specs/` must stay in lock-step with the registry.

use std::path::Path;

use mpvsim::core::studies::StudyId;
use mpvsim::core::validate::{
    bless_study_specs, check_study_specs, fuzz_case, load_study_specs, save_study_specs,
    study_specs_path, GoldenScale,
};
use mpvsim::core::{ScenarioSpec, SCENARIO_SCHEMA};
use proptest::prelude::*;

#[test]
fn every_registry_study_roundtrips_to_a_stable_hash() {
    for id in StudyId::all() {
        let set = bless_study_specs(id, &GoldenScale::paper()).expect("specs bless");
        assert!(!set.specs.is_empty(), "{} has no cells", id.name());
        for spec in &set.specs {
            assert_eq!(spec.schema, SCENARIO_SCHEMA);
            let bytes = spec.canonical_json();
            let back = ScenarioSpec::from_json(&bytes).expect("canonical form parses");
            assert_eq!(&back, spec, "{}: parse is not the identity", id.name());
            assert_eq!(back.canonical_json(), bytes, "{}: bytes drifted", id.name());
            assert_eq!(back.content_hash(), spec.content_hash());
        }
    }
}

/// The committed spec files. A missing file is blessed in place (pure
/// serialization — nothing is simulated), so a fresh checkout
/// bootstraps on the first test run; once present, each file is held
/// byte-exact against a regeneration from the current registry.
#[test]
fn committed_spec_goldens_track_the_registry() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens");
    let scratch = std::env::temp_dir().join(format!("mpvsim-spec-check-{}", std::process::id()));
    for id in StudyId::all() {
        let path = study_specs_path(&dir, id);
        if !path.exists() {
            let set = bless_study_specs(id, &GoldenScale::paper()).expect("specs bless");
            let written = save_study_specs(&dir, &set).expect("bootstrap spec golden");
            eprintln!("spec golden was missing; blessed {}", written.display());
        }
        let set = load_study_specs(&dir, id).expect("committed spec set loads");
        let drifts = check_study_specs(id, &set).expect("check runs");
        assert!(drifts.is_empty(), "{}: {drifts:?}", id.name());
        // Hold the file format itself byte-exact, not just the parsed
        // content: regenerate at the committed scale and diff the text.
        let fresh = bless_study_specs(id, &set.scale).expect("specs bless");
        save_study_specs(&scratch, &fresh).expect("save regenerated set");
        let want = std::fs::read_to_string(study_specs_path(&scratch, id)).expect("read fresh");
        let got = std::fs::read_to_string(&path).expect("read committed");
        assert_eq!(got, want, "{}: committed file text drifted", id.name());
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Beyond the 16 registry studies: any valid scenario the fuzzer
    /// can produce round-trips spec → JSON → spec → JSON byte- and
    /// hash-identically.
    #[test]
    fn random_valid_scenarios_roundtrip_byte_exactly(
        family in 0u64..1 << 32,
        case in 0u64..64,
        reps in 1u64..20,
    ) {
        let config = fuzz_case(family, case);
        let spec = ScenarioSpec::new("fuzz-roundtrip", config).with_replication(reps, family);
        spec.validate().expect("fuzz cases are valid");
        let bytes = spec.canonical_json();
        let back = ScenarioSpec::from_json(&bytes).expect("canonical form parses");
        prop_assert_eq!(back.canonical_json(), bytes);
        prop_assert_eq!(back.content_hash(), spec.content_hash());
    }
}
