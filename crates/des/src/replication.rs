//! Replication runner: executes N independently seeded replications of an
//! experiment and collects their results, serially or across threads.
//!
//! The paper reports expected infection trajectories; we estimate them by
//! averaging replications. Each replication receives a seed derived from
//! `(master_seed, rep)` (see [`crate::seed`]) so results are identical
//! whether run serially or in parallel — the rep index, not the thread
//! schedule, determines every stream.

use crossbeam::thread;
use parking_lot::Mutex;

use crate::seed::derive_seed;

/// Runs `reps` replications serially.
///
/// `body` receives `(replication_index, derived_seed)` and returns that
/// replication's result. Results are returned in replication order.
///
/// ```rust
/// let results = mpvsim_des::run_replications(3, 42, |rep, seed| (rep, seed));
/// assert_eq!(results.len(), 3);
/// assert_eq!(results[1].0, 1);
/// ```
pub fn run_replications<T, F>(reps: u64, master_seed: u64, mut body: F) -> Vec<T>
where
    F: FnMut(u64, u64) -> T,
{
    (0..reps).map(|rep| body(rep, derive_seed(master_seed, rep))).collect()
}

/// Runs `reps` replications across up to `threads` worker threads.
///
/// Results are returned in replication order regardless of which thread ran
/// which replication, and each replication's seed depends only on
/// `(master_seed, rep)`, so the output is identical to
/// [`run_replications`] with the same arguments.
///
/// # Panics
///
/// Panics if `threads == 0` or if a worker thread panics.
pub fn run_replications_parallel<T, F>(
    reps: u64,
    master_seed: u64,
    threads: usize,
    body: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || reps <= 1 {
        let b = &body;
        return run_replications(reps, master_seed, b);
    }

    let slots: Vec<Mutex<Option<T>>> = (0..reps).map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicU64::new(0);

    thread::scope(|scope| {
        for _ in 0..threads.min(reps as usize) {
            scope.spawn(|_| loop {
                let rep = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if rep >= reps {
                    break;
                }
                let result = body(rep, derive_seed(master_seed, rep));
                *slots[rep as usize].lock() = Some(result);
            });
        }
    })
    .expect("replication worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("replication slot never filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runs_all_reps_in_order() {
        let results = run_replications(5, 7, |rep, _seed| rep * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn seeds_depend_only_on_master_and_rep() {
        let a = run_replications(4, 1, |_, seed| seed);
        let b = run_replications(4, 1, |_, seed| seed);
        let c = run_replications(4, 2, |_, seed| seed);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_replications(17, 99, |rep, seed| (rep, seed, rep + seed));
        let parallel = run_replications_parallel(17, 99, 4, |rep, seed| (rep, seed, rep + seed));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_single_thread_matches_serial() {
        let serial = run_replications(5, 3, |rep, seed| rep ^ seed);
        let parallel = run_replications_parallel(5, 3, 1, |rep, seed| rep ^ seed);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_reps_is_empty() {
        let results: Vec<u64> = run_replications(0, 1, |_, s| s);
        assert!(results.is_empty());
        let results: Vec<u64> = run_replications_parallel(0, 1, 4, |_, s| s);
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = run_replications_parallel(1, 1, 0, |_, s| s);
    }

    #[test]
    fn more_threads_than_reps_is_fine() {
        let results = run_replications_parallel(2, 5, 16, |rep, _| rep);
        assert_eq!(results, vec![0, 1]);
    }
}
