//! Runs the §6 Bluetooth-vector extension study: a pure Bluetooth worm
//! and a hybrid MMS+Bluetooth worm against the mechanisms that can (and
//! cannot) touch proximity transfers.
fn main() {
    mpvsim_cli::figure_main(
        "§6 extension — Bluetooth propagation vector (random-waypoint mobility)",
        mpvsim_core::figures::bluetooth_study,
    );
}
