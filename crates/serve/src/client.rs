//! A dependency-free HTTP/1.1 client for `mpvsim submit` and the smoke
//! tests: one request per connection, mirroring the server's
//! `Connection: close` framing.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one request to `addr` and reads the complete response (the
/// server closes the connection after each exchange). A body, when
/// given, is sent as `application/json`.
///
/// # Errors
///
/// I/O failure, or a response that is not parseable HTTP/1.x.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<HttpReply> {
    let mut sock = TcpStream::connect(addr)?;
    write_request(&mut sock, addr, method, path, body)?;
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// Sends a GET for `path` and copies the response body to `out` as it
/// arrives — for streaming endpoints like `/v1/runs/{hash}/events`.
/// Returns the status code once the server closes the connection.
///
/// # Errors
///
/// I/O failure, or a response head that is not parseable HTTP/1.x.
pub fn stream(addr: &str, path: &str, out: &mut impl Write) -> io::Result<u16> {
    let mut sock = TcpStream::connect(addr)?;
    write_request(&mut sock, addr, "GET", path, None)?;
    let mut raw = Vec::new();
    let mut buf = [0_u8; 4096];
    let header_end = loop {
        let n = sock.read(&mut buf)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_blank_line(&raw) {
            break pos;
        }
    };
    let head = parse_reply(&raw[..header_end])?;
    out.write_all(&raw[header_end..])?;
    out.flush()?;
    loop {
        let n = sock.read(&mut buf)?;
        if n == 0 {
            return Ok(head.status);
        }
        out.write_all(&buf[..n])?;
        out.flush()?;
    }
}

fn bad(reason: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.into())
}

fn find_blank_line(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n").map(|pos| pos + 4)
}

fn write_request(
    sock: &mut TcpStream,
    host: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n");
    if let Some(body) = body {
        head.push_str("Content-Type: application/json\r\n");
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    sock.write_all(head.as_bytes())?;
    if let Some(body) = body {
        sock.write_all(body)?;
    }
    sock.flush()
}

fn parse_reply(raw: &[u8]) -> io::Result<HttpReply> {
    let header_end = find_blank_line(raw).ok_or_else(|| bad("no header/body separator"))?;
    let head =
        std::str::from_utf8(&raw[..header_end]).map_err(|_| bad("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("not an HTTP response: {status_line:?}")));
    }
    let status = parts
        .next()
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok(HttpReply { status, headers, body: raw[header_end..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = b"HTTP/1.1 422 Unprocessable Entity\r\nContent-Type: application/json\r\n\
                    Content-Length: 2\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 422);
        assert!(!reply.is_success());
        assert_eq!(reply.header("content-type"), Some("application/json"));
        assert_eq!(reply.body, b"{}");
    }

    #[test]
    fn rejects_non_http_garbage() {
        assert!(parse_reply(b"garbage").is_err(), "no header separator");
        assert!(parse_reply(b"FTP 200 OK\r\n\r\n").is_err(), "not HTTP");
        assert!(parse_reply(b"HTTP/1.1 banana\r\n\r\n").is_err(), "bad status");
    }
}
