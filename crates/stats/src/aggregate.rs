//! Pointwise aggregation of replication time series.
//!
//! The paper plots expected infection trajectories; we estimate them as the
//! pointwise mean over replications, with a normal-approximation 95 %
//! confidence band to make the Monte-Carlo error visible.
//!
//! Aggregation is **online**: [`OnlineAggregate`] consumes one series at a
//! time (Welford accumulators per grid point), so an experiment can stream
//! replications into it as they finish and never hold all series in
//! memory. The batch [`aggregate`] function is a thin wrapper that pushes
//! its input in order — batch and streaming results are bit-identical by
//! construction, because they are the same arithmetic.

use serde::{Deserialize, Serialize};

use crate::series::TimeSeries;
use crate::summary::Z_95;

/// The pointwise mean of replication series, with a 95 % confidence band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSeries {
    /// Sampling step shared by all replications, in hours.
    pub step_hours: f64,
    /// Pointwise means.
    pub mean: Vec<f64>,
    /// Pointwise 95 % confidence half-widths.
    pub ci95_half_width: Vec<f64>,
    /// Number of replications aggregated.
    pub replications: usize,
}

impl AggregateSeries {
    /// The mean trajectory as a [`TimeSeries`].
    pub fn mean_series(&self) -> TimeSeries {
        TimeSeries::from_values(self.step_hours, self.mean.clone())
    }

    /// `(time_hours, mean, ci_half_width)` triples.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.mean
            .iter()
            .zip(&self.ci95_half_width)
            .enumerate()
            .map(move |(k, (&m, &c))| (k as f64 * self.step_hours, m, c))
    }
}

/// One grid point's Welford accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct PointAccumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl PointAccumulator {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        // Rounding can push m2 a hair below zero; clamp before sqrt.
        let var = (self.m2 / (self.n - 1) as f64).max(0.0);
        Z_95 * (var / self.n as f64).sqrt()
    }
}

/// Streaming pointwise aggregation: push replication series one at a time,
/// read off the mean and confidence band at any point.
///
/// Memory is O(longest series + replications pushed) — one accumulator per
/// grid point plus one stored final value per series (needed to extend the
/// plateau when a later, longer series widens the grid) — instead of the
/// O(replications × series length) a batch aggregation would hold.
///
/// All pushed series must share the same sampling step; series shorter
/// than the longest one seen are treated as holding their final value (the
/// infection count is a plateauing step function, so this is the right
/// extension).
///
/// **Determinism:** the result depends only on the sequence of pushed
/// series — pushing the same series in the same order always yields the
/// bit-identical [`AggregateSeries`], and [`aggregate`] is defined as
/// pushing its slice front to back.
///
/// ```rust
/// use mpvsim_stats::{TimeSeries, aggregate::OnlineAggregate};
///
/// let mut agg = OnlineAggregate::new();
/// agg.push(&TimeSeries::from_values(1.0, vec![0.0, 2.0, 4.0]));
/// agg.push(&TimeSeries::from_values(1.0, vec![2.0, 4.0, 8.0]));
/// let result = agg.finalize().unwrap();
/// assert_eq!(result.mean, vec![1.0, 3.0, 6.0]);
/// assert_eq!(result.replications, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineAggregate {
    step_hours: Option<f64>,
    points: Vec<PointAccumulator>,
    finals: Vec<f64>,
    empty_series: usize,
}

impl OnlineAggregate {
    /// An aggregate with no series pushed yet.
    pub fn new() -> Self {
        OnlineAggregate::default()
    }

    /// Number of series pushed so far.
    pub fn replications(&self) -> usize {
        self.finals.len() + self.empty_series
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.replications() == 0
    }

    /// Folds one replication's series into the aggregate.
    ///
    /// # Panics
    ///
    /// Panics when `series` has a different sampling step than an earlier
    /// push.
    pub fn push(&mut self, series: &TimeSeries) {
        let step = series.step_hours();
        match self.step_hours {
            None => self.step_hours = Some(step),
            Some(expected) => assert!(
                (step - expected).abs() < 1e-12,
                "aggregate: all series must share the same sampling step"
            ),
        }
        let vals = series.values();
        if vals.is_empty() {
            // Mirrors batch semantics: any empty series poisons the
            // aggregate (finalize returns None).
            self.empty_series += 1;
            return;
        }
        // A longer series widens the grid: every earlier series holds its
        // plateau at the new points. Replay their finals in push order so
        // each point accumulates values in exactly the order a batch pass
        // over `[s0, s1, ...]` would produce.
        for _ in self.points.len()..vals.len() {
            let mut acc = PointAccumulator::default();
            for &final_value in &self.finals {
                acc.push(final_value);
            }
            self.points.push(acc);
        }
        let last = *vals.last().expect("nonempty");
        for (k, acc) in self.points.iter_mut().enumerate() {
            acc.push(vals[k.min(vals.len() - 1)]);
        }
        self.finals.push(last);
    }

    /// The aggregate over everything pushed so far.
    ///
    /// Returns `None` when nothing was pushed or any pushed series was
    /// empty (same contract as [`aggregate`]). Non-consuming, so an
    /// adaptive experiment can check its confidence band between batches
    /// and keep pushing.
    pub fn finalize(&self) -> Option<AggregateSeries> {
        if self.empty_series > 0 || self.finals.is_empty() {
            return None;
        }
        let mut mean = Vec::with_capacity(self.points.len());
        let mut ci = Vec::with_capacity(self.points.len());
        for acc in &self.points {
            debug_assert_eq!(acc.n as usize, self.finals.len());
            mean.push(acc.mean);
            ci.push(acc.ci95_half_width());
        }
        Some(AggregateSeries {
            step_hours: self.step_hours.unwrap_or(0.0),
            mean,
            ci95_half_width: ci,
            replications: self.finals.len(),
        })
    }
}

/// Aggregates replications pointwise.
///
/// All series must share the same step; series shorter than the longest
/// one are treated as holding their final value (the infection count is a
/// plateauing step function, so this is the right extension).
///
/// Defined as pushing `series` front to back through an
/// [`OnlineAggregate`], so batch and streaming aggregation are
/// bit-identical.
///
/// Returns `None` when `series` is empty or any series is empty.
pub fn aggregate(series: &[TimeSeries]) -> Option<AggregateSeries> {
    let mut online = OnlineAggregate::new();
    for s in series {
        online.push(s);
    }
    online.finalize()
}

/// Convenience: the pointwise-mean trajectory of `series`.
///
/// See [`aggregate`] for the alignment rules.
pub fn mean_series(series: &[TimeSeries]) -> Option<TimeSeries> {
    aggregate(series).map(|a| a.mean_series())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_none() {
        assert!(aggregate(&[]).is_none());
        assert!(mean_series(&[]).is_none());
        assert!(aggregate(&[TimeSeries::new(1.0)]).is_none());
    }

    #[test]
    fn single_series_is_its_own_mean() {
        let s = TimeSeries::from_values(1.0, vec![1.0, 2.0, 3.0]);
        let agg = aggregate(std::slice::from_ref(&s)).unwrap();
        assert_eq!(agg.mean, vec![1.0, 2.0, 3.0]);
        assert_eq!(agg.ci95_half_width, vec![0.0, 0.0, 0.0]);
        assert_eq!(agg.replications, 1);
    }

    #[test]
    fn pointwise_mean_of_two() {
        let a = TimeSeries::from_values(1.0, vec![0.0, 2.0, 4.0]);
        let b = TimeSeries::from_values(1.0, vec![2.0, 4.0, 8.0]);
        let m = mean_series(&[a, b]).unwrap();
        assert_eq!(m.values(), &[1.0, 3.0, 6.0]);
    }

    #[test]
    fn shorter_series_extends_with_final_value() {
        let a = TimeSeries::from_values(1.0, vec![0.0, 10.0]);
        let b = TimeSeries::from_values(1.0, vec![0.0, 0.0, 0.0, 0.0]);
        let m = mean_series(&[a, b]).unwrap();
        // a holds 10.0 after its end.
        assert_eq!(m.values(), &[0.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn longer_series_arriving_late_extends_earlier_plateaus() {
        // Same data as `shorter_series_extends_with_final_value` but the
        // short series is pushed first, forcing the grid-widening path.
        let mut agg = OnlineAggregate::new();
        agg.push(&TimeSeries::from_values(1.0, vec![0.0, 10.0]));
        agg.push(&TimeSeries::from_values(1.0, vec![0.0, 0.0, 0.0, 0.0]));
        assert_eq!(agg.finalize().unwrap().mean, vec![0.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn ci_positive_when_replications_disagree() {
        let a = TimeSeries::from_values(1.0, vec![0.0, 0.0]);
        let b = TimeSeries::from_values(1.0, vec![0.0, 10.0]);
        let agg = aggregate(&[a, b]).unwrap();
        assert_eq!(agg.ci95_half_width[0], 0.0);
        assert!(agg.ci95_half_width[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "same sampling step")]
    fn mismatched_steps_panic() {
        let a = TimeSeries::from_values(1.0, vec![0.0]);
        let b = TimeSeries::from_values(2.0, vec![0.0]);
        let _ = aggregate(&[a, b]);
    }

    #[test]
    fn points_iterate_triples() {
        let a = TimeSeries::from_values(0.5, vec![1.0, 3.0]);
        let agg = aggregate(std::slice::from_ref(&a)).unwrap();
        let pts: Vec<_> = agg.points().collect();
        assert_eq!(pts, vec![(0.0, 1.0, 0.0), (0.5, 3.0, 0.0)]);
    }

    #[test]
    fn online_matches_batch_bit_for_bit_on_ragged_input() {
        // Irregular lengths and irrational-ish values; the two paths must
        // agree exactly, not just approximately.
        let series: Vec<TimeSeries> = (0..7)
            .map(|i| {
                let len = 3 + (i * 5) % 11;
                let vals = (0..len).map(|k| ((i * 31 + k * 17) as f64).sin() * 100.0).collect();
                TimeSeries::from_values(0.25, vals)
            })
            .collect();
        let batch = aggregate(&series).unwrap();
        let mut online = OnlineAggregate::new();
        for s in &series {
            online.push(s);
        }
        let streamed = online.finalize().unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn finalize_is_reusable_between_pushes() {
        let mut agg = OnlineAggregate::new();
        assert!(agg.is_empty());
        assert!(agg.finalize().is_none());
        agg.push(&TimeSeries::from_values(1.0, vec![1.0, 2.0]));
        let after_one = agg.finalize().unwrap();
        assert_eq!(after_one.replications, 1);
        assert_eq!(after_one.mean, vec![1.0, 2.0]);
        agg.push(&TimeSeries::from_values(1.0, vec![3.0, 4.0]));
        let after_two = agg.finalize().unwrap();
        assert_eq!(after_two.replications, 2);
        assert_eq!(after_two.mean, vec![2.0, 3.0]);
        assert_eq!(agg.replications(), 2);
    }

    #[test]
    fn empty_series_poisons_the_aggregate() {
        let mut agg = OnlineAggregate::new();
        agg.push(&TimeSeries::from_values(1.0, vec![1.0]));
        agg.push(&TimeSeries::new(1.0));
        assert!(agg.finalize().is_none());
        assert_eq!(agg.replications(), 2);
    }
}
