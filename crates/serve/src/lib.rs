//! # mpvsim-serve — the `mpvsim serve` HTTP/JSON simulation service
//!
//! A long-running service over the sweep results store: clients POST
//! canonical `mpvsim-scenario/1` documents ([`mpvsim_core::ScenarioSpec`]),
//! the server content-hashes them, answers repeats straight from the
//! store (byte-identical bodies, `x-mpvsim-cache: hit`), and queues
//! fresh scenarios on a simulation worker pool while streaming JSONL
//! progress. See [`server`] for the endpoint table and storage model.
//!
//! The crate is dependency-free beyond the workspace: the HTTP/1.1
//! subset in [`http`] and the client in [`client`] are hand-rolled over
//! [`std::net`], which keeps `mpvsim serve` inside the project's
//! no-new-dependencies budget and its one-exchange-per-connection model
//! trivially auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use client::{request, stream, HttpReply};
pub use server::{
    start, ServeOptions, ServerHandle, ERROR_SCHEMA, HEALTH_SCHEMA, RUN_SCHEMA, STUDIES_SCHEMA,
};
