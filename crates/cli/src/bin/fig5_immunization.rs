//! Regenerates Figure 5: immunization patches vs. development/rollout
//! times (Virus 4).
fn main() {
    mpvsim_cli::figure_main(
        "Figure 5 — Immunization Using Patches: Varying the Deployment Times (Virus 4)",
        mpvsim_core::figures::fig5_immunization,
    );
}
