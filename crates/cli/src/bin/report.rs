//! Deprecated shim: forwards to `mpvsim report`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("report");
}
