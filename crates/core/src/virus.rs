//! Parameterized virus behaviour and the paper's four test-case viruses.
//!
//! §4.2 of the paper defines four illustrative viruses spanning the attack
//! space (modelled on real viruses such as CommWarrior):
//!
//! | | targeting | min gap | recipients | quota | extra |
//! |---|---|---|---|---|---|
//! | Virus 1 | contact list | 30 min | 1 | 30 per reboot (reboot ≈ Exp(24 h)) | — |
//! | Virus 2 | contact list | 1 min | ≤ 100 | 30 per 24 h | step-like curve |
//! | Virus 3 | random dial (⅓ valid) | 1 min | 1 | none | fastest |
//! | Virus 4 | contact list | 30 min | 1 | none | 1 h dormancy, paced at the legitimate-traffic rate |

use serde::{Deserialize, Serialize};

use mpvsim_des::{DelaySpec, SimDuration};

/// The Bluetooth propagation vector (the paper's §6 future-work
/// extension): on every mobility tick, an infected phone attempts a
/// file transfer to each phone within radio range with some probability.
///
/// Bluetooth bypasses the provider's MMS gateways entirely, so the
/// reception-point and dissemination-point mechanisms (scan, detection,
/// monitoring, blacklisting) cannot see it; only user education and
/// immunization apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BluetoothVector {
    /// Radio range in meters (class-2 Bluetooth ≈ 10 m).
    pub radius: f64,
    /// Probability that an infected phone attempts a transfer to a given
    /// in-range phone during one mobility tick.
    pub transfer_probability: f64,
}

impl BluetoothVector {
    /// A Cabir/CommWarrior-like default: 10 m range, 10 % attempt chance
    /// per in-range phone per tick.
    pub fn default_class2() -> Self {
        BluetoothVector { radius: 10.0, transfer_probability: 0.1 }
    }

    /// Validates the vector parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.radius.is_finite() && self.radius > 0.0) {
            return Err(format!("bluetooth radius must be positive, got {}", self.radius));
        }
        if !(0.0..=1.0).contains(&self.transfer_probability)
            || !self.transfer_probability.is_finite()
        {
            return Err(format!(
                "bluetooth transfer_probability {} must be in [0, 1]",
                self.transfer_probability
            ));
        }
        Ok(())
    }
}

/// How a virus picks the targets of its next infected message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetingStrategy {
    /// Walk the infected phone's contact list cyclically, addressing the
    /// next `recipients_per_message` contacts with each message.
    ContactList,
    /// Dial uniformly random numbers; a dial reaches a real phone with
    /// probability `valid_fraction` (the paper's France estimate: ⅓).
    RandomDialing {
        /// Fraction of dialed numbers that are assigned to real phones.
        valid_fraction: f64,
    },
}

/// Self-imposed limits on how many infected messages a phone sends.
///
/// CommWarrior-style viruses throttle themselves to stay unnoticed; these
/// quotas are what make monitoring ineffective against Viruses 1, 2 and 4
/// (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SendQuota {
    /// Maximum messages per rolling 24-hour period (counted from the
    /// phone's infection instant). `None` = unlimited.
    pub per_day: Option<u32>,
    /// Maximum messages between phone reboots. `None` = unlimited.
    pub per_reboot: Option<u32>,
    /// Distribution of the time between reboots (only used when
    /// `per_reboot` is set). The paper: "on average approximately 24
    /// hours".
    pub reboot_interval: DelaySpec,
}

impl SendQuota {
    /// No limits at all (Virus 3).
    pub fn unlimited() -> Self {
        SendQuota {
            per_day: None,
            per_reboot: None,
            reboot_interval: DelaySpec::exponential(SimDuration::from_hours(24)),
        }
    }

    /// At most `n` messages per 24-hour period (Virus 2).
    pub fn per_day(n: u32) -> Self {
        SendQuota { per_day: Some(n), ..SendQuota::unlimited() }
    }

    /// At most `n` messages between reboots, with exponentially
    /// distributed reboot intervals of the given mean (Virus 1).
    pub fn per_reboot(n: u32, mean_reboot: SimDuration) -> Self {
        SendQuota {
            per_day: None,
            per_reboot: Some(n),
            reboot_interval: DelaySpec::exponential(mean_reboot),
        }
    }
}

/// A fully parameterized MMS virus (§4.1: "because the model is
/// implemented in a parameterized fashion, many different virus behaviors
/// can be simulated").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirusProfile {
    /// Display name used in reports.
    pub name: String,
    /// How targets are selected.
    pub targeting: TargetingStrategy,
    /// Distribution of the gap between consecutive infected messages from
    /// one phone. The paper's "waits at least X minutes" maps to
    /// [`DelaySpec::ShiftedExponential`] with `min = X`.
    pub send_gap: DelaySpec,
    /// Recipients addressed per message (Virus 2 uses up to 100; the
    /// others 1). Clamped to the contact-list length at send time.
    pub recipients_per_message: u32,
    /// Self-imposed sending limits.
    pub quota: SendQuota,
    /// Time between infection and the first propagation attempt (Virus
    /// 4's stealth dormancy; zero for viruses that "immediately begin to
    /// send").
    pub dormancy: SimDuration,
    /// When `true`, the per-day quota period is aligned to **global**
    /// 24-hour boundaries and a newly infected phone holds its fire until
    /// the next boundary. This is Virus 2's behaviour: "those 30 messages
    /// are all sent very near the start of each 24-hour period", which
    /// makes Figure 1's curve flat between day-start steps — only a
    /// global alignment produces that shape (with per-infection alignment
    /// the bursts of successive generations cascade within a day and the
    /// steps vanish).
    pub global_day_bursts: bool,
    /// Whether the virus propagates over MMS at all. `false` models a
    /// pure Bluetooth worm (Cabir-style): no MMS messages are ever sent
    /// and the gateway-side mechanisms have nothing to act on.
    pub mms_vector: bool,
    /// Optional Bluetooth vector (requires
    /// [`crate::ScenarioConfig::mobility`] to be configured).
    pub bluetooth: Option<BluetoothVector>,
    /// Piggyback mode — Virus 4's literal §4.2 semantics: instead of its
    /// own send schedule, the virus "automatically either appends the
    /// infection to outgoing MMS messages or sends infected reply
    /// messages in response to incoming MMS messages". Requires
    /// legitimate traffic ([`crate::BehaviorConfig::legitimate_mms`]) to
    /// ride on; the `send_gap`'s hard minimum still paces it.
    pub piggyback: bool,
}

impl VirusProfile {
    /// **Virus 1** — stealthy contact-list spreader: ≥ 30 min between
    /// messages, single recipient, 30 messages between reboots
    /// (reboot ~ Exp(24 h)).
    pub fn virus1() -> Self {
        VirusProfile {
            name: "Virus 1".to_owned(),
            targeting: TargetingStrategy::ContactList,
            send_gap: DelaySpec::shifted_exp(
                SimDuration::from_mins(30),
                SimDuration::from_mins(30),
            ),
            recipients_per_message: 1,
            quota: SendQuota::per_reboot(30, SimDuration::from_hours(24)),
            dormancy: SimDuration::ZERO,
            global_day_bursts: false,
            mms_vector: true,
            bluetooth: None,
            piggyback: false,
        }
    }

    /// **Virus 2** — aggressive contact-list spreader: ≥ 1 min between
    /// messages, up to 100 recipients per message, 30 messages per
    /// 24-hour period (all sent near the start of each period — the
    /// step-like curve of Figure 1).
    pub fn virus2() -> Self {
        VirusProfile {
            name: "Virus 2".to_owned(),
            targeting: TargetingStrategy::ContactList,
            send_gap: DelaySpec::shifted_exp(SimDuration::from_mins(1), SimDuration::from_secs(30)),
            recipients_per_message: 100,
            quota: SendQuota::per_day(30),
            dormancy: SimDuration::ZERO,
            global_day_bursts: true,
            mms_vector: true,
            bluetooth: None,
            piggyback: false,
        }
    }

    /// **Virus 3** — random dialer: ≥ 1 min between messages, one random
    /// number per message of which one third are valid, no quotas.
    pub fn virus3() -> Self {
        VirusProfile {
            name: "Virus 3".to_owned(),
            targeting: TargetingStrategy::RandomDialing { valid_fraction: 1.0 / 3.0 },
            send_gap: DelaySpec::shifted_exp(SimDuration::from_mins(1), SimDuration::from_secs(30)),
            recipients_per_message: 1,
            quota: SendQuota::unlimited(),
            dormancy: SimDuration::ZERO,
            global_day_bursts: false,
            mms_vector: true,
            bluetooth: None,
            piggyback: false,
        }
    }

    /// **Virus 4** — the stealthiest: dormant for one hour, then rides
    /// the phone's legitimate messaging (modelled as sending at the
    /// legitimate-traffic rate: ≥ 30 min gaps with a ~3.5 h mean extra,
    /// i.e. a handful of messages per day), single recipient, no quota.
    pub fn virus4() -> Self {
        VirusProfile {
            name: "Virus 4".to_owned(),
            targeting: TargetingStrategy::ContactList,
            send_gap: DelaySpec::shifted_exp(
                SimDuration::from_mins(30),
                SimDuration::from_mins(210),
            ),
            recipients_per_message: 1,
            quota: SendQuota::unlimited(),
            dormancy: SimDuration::from_hours(1),
            global_day_bursts: false,
            mms_vector: true,
            bluetooth: None,
            piggyback: false,
        }
    }

    /// **Virus 4, literal semantics** — identical to [`VirusProfile::virus4`]
    /// but propagating by piggybacking on the phone's legitimate MMS
    /// traffic instead of a rate-matched schedule. Requires a scenario
    /// with legitimate traffic enabled.
    pub fn virus4_piggyback() -> Self {
        VirusProfile { name: "Virus 4 (piggyback)".to_owned(), piggyback: true, ..Self::virus4() }
    }

    /// A pure **Bluetooth worm** (Cabir-style, the paper's §6 future-work
    /// vector): never sends MMS; spreads only to phones within radio
    /// range. Requires a mobility configuration on the scenario.
    pub fn bluetooth_worm() -> Self {
        VirusProfile {
            name: "Bluetooth Worm".to_owned(),
            targeting: TargetingStrategy::ContactList,
            send_gap: DelaySpec::constant(SimDuration::from_mins(30)),
            recipients_per_message: 1,
            quota: SendQuota::unlimited(),
            dormancy: SimDuration::ZERO,
            global_day_bursts: false,
            mms_vector: false,
            bluetooth: Some(BluetoothVector::default_class2()),
            piggyback: false,
        }
    }

    /// A **hybrid worm** (CommWarrior-style): Virus 1's MMS behaviour
    /// plus the Bluetooth vector. Requires a mobility configuration.
    pub fn hybrid_worm() -> Self {
        VirusProfile {
            name: "Hybrid MMS+BT Worm".to_owned(),
            bluetooth: Some(BluetoothVector::default_class2()),
            ..Self::virus1()
        }
    }

    /// All four canonical viruses in paper order.
    pub fn all_four() -> Vec<VirusProfile> {
        vec![Self::virus1(), Self::virus2(), Self::virus3(), Self::virus4()]
    }

    /// Validates the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("virus name must not be empty".to_owned());
        }
        if self.recipients_per_message == 0 {
            return Err("recipients_per_message must be at least 1".to_owned());
        }
        if let TargetingStrategy::RandomDialing { valid_fraction } = self.targeting {
            if !(0.0..=1.0).contains(&valid_fraction) || !valid_fraction.is_finite() {
                return Err(format!("valid_fraction {valid_fraction} must be in [0, 1]"));
            }
            if self.recipients_per_message != 1 {
                return Err("random dialing addresses one number per message".to_owned());
            }
        }
        if self.quota.per_day == Some(0) || self.quota.per_reboot == Some(0) {
            return Err("a quota of 0 messages means the virus never sends".to_owned());
        }
        if let Some(bt) = self.bluetooth {
            bt.validate()?;
        }
        if !self.mms_vector && self.bluetooth.is_none() {
            return Err("virus has no propagation vector (neither MMS nor Bluetooth)".to_owned());
        }
        if self.piggyback && !self.mms_vector {
            return Err("piggyback mode needs the MMS vector".to_owned());
        }
        Ok(())
    }

    /// The default observation horizon the paper uses for this virus's
    /// figures: 18 days for Viruses 1 and 4, 10 days for Virus 2, 24 hours
    /// for Virus 3.
    pub fn paper_horizon(&self) -> SimDuration {
        match self.name.as_str() {
            "Virus 2" => SimDuration::from_days(10),
            "Virus 3" => SimDuration::from_hours(24),
            _ => SimDuration::from_days(18),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for v in VirusProfile::all_four() {
            v.validate().unwrap_or_else(|e| panic!("{}: {e}", v.name));
        }
    }

    #[test]
    fn virus1_matches_paper_parameters() {
        let v = VirusProfile::virus1();
        assert_eq!(v.send_gap.minimum(), SimDuration::from_mins(30));
        assert_eq!(v.recipients_per_message, 1);
        assert_eq!(v.quota.per_reboot, Some(30));
        assert_eq!(v.quota.per_day, None);
        assert_eq!(v.dormancy, SimDuration::ZERO);
        assert_eq!(v.targeting, TargetingStrategy::ContactList);
    }

    #[test]
    fn virus2_matches_paper_parameters() {
        let v = VirusProfile::virus2();
        assert_eq!(v.send_gap.minimum(), SimDuration::from_mins(1));
        assert_eq!(v.recipients_per_message, 100);
        assert_eq!(v.quota.per_day, Some(30));
        assert_eq!(v.quota.per_reboot, None);
    }

    #[test]
    fn virus3_matches_paper_parameters() {
        let v = VirusProfile::virus3();
        assert_eq!(v.targeting, TargetingStrategy::RandomDialing { valid_fraction: 1.0 / 3.0 });
        assert_eq!(v.quota.per_day, None);
        assert_eq!(v.quota.per_reboot, None);
        assert_eq!(v.send_gap.minimum(), SimDuration::from_mins(1));
    }

    #[test]
    fn virus4_is_dormant_then_slow() {
        let v = VirusProfile::virus4();
        assert_eq!(v.dormancy, SimDuration::from_hours(1));
        assert_eq!(v.send_gap.minimum(), SimDuration::from_mins(30));
        // Legitimate-rate pacing: mean gap of 4 h ⇒ ~6 messages/day.
        assert_eq!(v.send_gap.mean(), SimDuration::from_hours(4));
    }

    #[test]
    fn paper_horizons() {
        assert_eq!(VirusProfile::virus1().paper_horizon(), SimDuration::from_days(18));
        assert_eq!(VirusProfile::virus2().paper_horizon(), SimDuration::from_days(10));
        assert_eq!(VirusProfile::virus3().paper_horizon(), SimDuration::from_hours(24));
        assert_eq!(VirusProfile::virus4().paper_horizon(), SimDuration::from_days(18));
    }

    #[test]
    fn invalid_profiles_rejected() {
        let mut v = VirusProfile::virus1();
        v.recipients_per_message = 0;
        assert!(v.validate().is_err());

        let mut v = VirusProfile::virus3();
        v.targeting = TargetingStrategy::RandomDialing { valid_fraction: 2.0 };
        assert!(v.validate().is_err());

        let mut v = VirusProfile::virus3();
        v.recipients_per_message = 5;
        assert!(v.validate().is_err(), "random dialing is one number per message");

        let mut v = VirusProfile::virus2();
        v.quota.per_day = Some(0);
        assert!(v.validate().is_err());

        let mut v = VirusProfile::virus1();
        v.name = String::new();
        assert!(v.validate().is_err());
    }

    #[test]
    fn quota_constructors() {
        let q = SendQuota::unlimited();
        assert_eq!(q.per_day, None);
        assert_eq!(q.per_reboot, None);
        let q = SendQuota::per_day(30);
        assert_eq!(q.per_day, Some(30));
        let q = SendQuota::per_reboot(30, SimDuration::from_hours(24));
        assert_eq!(q.per_reboot, Some(30));
        assert_eq!(q.reboot_interval.mean(), SimDuration::from_hours(24));
    }
}
