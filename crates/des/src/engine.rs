//! The simulation executor: clock, event dispatch loop, and the [`Context`]
//! handed to models while they process an event.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::EventQueue;
use crate::fel::FelKind;
use crate::time::{SimDuration, SimTime};

/// A discrete-event model: a state machine driven by events of type
/// [`Model::Event`].
///
/// The engine repeatedly pops the earliest pending event, advances the clock
/// to its firing time, and calls [`Model::handle`]. The model reacts by
/// mutating its own state and scheduling further events through the
/// [`Context`].
///
/// ```rust
/// use mpvsim_des::{Model, Context, Simulation, SimTime, SimDuration};
///
/// struct Pinger { pongs: u32 }
/// #[derive(Debug)] enum Ev { Ping, Pong }
///
/// impl Model for Pinger {
///     type Event = Ev;
///     fn handle(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
///         match ev {
///             Ev::Ping => ctx.schedule_in(SimDuration::from_secs(1), Ev::Pong),
///             Ev::Pong => self.pongs += 1,
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Pinger { pongs: 0 }, 7);
/// sim.schedule(SimTime::ZERO, Ev::Ping);
/// assert_eq!(sim.run().pongs, 1);
/// ```
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Reacts to `event` firing at `ctx.now()`.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<'_, Self::Event>);
}

/// Why a [`Simulation`] run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The future-event list drained; nothing more can ever happen.
    Exhausted,
    /// The time horizon passed; later events remain pending.
    HorizonReached,
    /// The model called [`Context::stop`].
    Stopped,
    /// The event budget was consumed (runaway-model guard).
    EventBudgetExceeded,
}

/// The engine's per-event view handed to [`Model::handle`]: the clock, the
/// scheduler and the replication's random stream.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    rng: &'a mut StdRng,
    stop_requested: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// The current simulation time (the firing time of the event being
    /// handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — the engine never rewinds the clock.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        self.queue.schedule(time, event);
    }

    /// The replication's random stream.
    ///
    /// All stochastic draws must come from here so that a `(config, seed)`
    /// pair fully determines the trajectory.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Requests that the run loop return after this event completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of events currently pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

/// Runtime counters of one simulation run, cheap enough to collect
/// unconditionally: the raw material for events/sec and memory-pressure
/// reporting (see [`crate::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimMetrics {
    /// Events dispatched by the run loop so far.
    pub events_processed: u64,
    /// High-water mark of the future-event list (pending events).
    pub peak_pending_events: usize,
    /// Resident event-payload bytes at that high-water mark
    /// (`peak_pending_events` × the size of one scheduled entry).
    pub peak_event_bytes: usize,
}

/// A simulation run: a [`Model`], a clock, a future-event list and a seeded
/// random stream.
#[derive(Debug)]
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    rng: StdRng,
    events_processed: u64,
    event_budget: u64,
    outcome: Option<RunOutcome>,
}

/// Default cap on processed events; generous for the paper's workloads
/// (the heaviest figure processes well under 10 million events) while still
/// catching models that accidentally self-replicate without bound.
pub const DEFAULT_EVENT_BUDGET: u64 = 500_000_000;

impl<M: Model> Simulation<M> {
    /// Creates a simulation over `model` whose random stream is seeded with
    /// `seed`.
    pub fn new(model: M, seed: u64) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            events_processed: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
            outcome: None,
        }
    }

    /// Replaces the runaway-model guard (maximum number of processed
    /// events) with `budget`.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Switches the future-event list to the given backend (see
    /// [`FelKind`]), carrying over any already-scheduled events. The pop
    /// order — and therefore the trajectory — is identical on every
    /// backend; only performance differs.
    pub fn with_fel(mut self, kind: FelKind) -> Self {
        let queue = std::mem::take(&mut self.queue);
        self.queue = queue.into_kind(kind);
        self
    }

    /// The future-event-list backend this simulation runs on.
    pub fn fel_kind(&self) -> FelKind {
        self.queue.kind()
    }

    /// Schedules an initial event before the run starts.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.schedule(time, event);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to install probes between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the future-event list over the run so far.
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// The run's counters as one value (events processed + event-heap
    /// high-water mark).
    pub fn metrics(&self) -> SimMetrics {
        SimMetrics {
            events_processed: self.events_processed,
            peak_pending_events: self.queue.peak_len(),
            peak_event_bytes: self.queue.peak_resident_bytes(),
        }
    }

    /// Why the last call to a run method returned, if any run has happened.
    pub fn outcome(&self) -> Option<RunOutcome> {
        self.outcome
    }

    /// Runs until the event list drains, then returns the model.
    pub fn run(mut self) -> M {
        self.run_until(SimTime::MAX);
        self.model
    }

    /// Runs until the event list drains, the model stops, the event budget
    /// is consumed, or the next event would fire after `horizon`.
    ///
    /// Events scheduled exactly at `horizon` are processed. The clock is
    /// left at the last processed event (or untouched if none fired).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let outcome = loop {
            let Some(next_time) = self.queue.peek_time() else {
                break RunOutcome::Exhausted;
            };
            if next_time > horizon {
                break RunOutcome::HorizonReached;
            }
            if self.events_processed >= self.event_budget {
                break RunOutcome::EventBudgetExceeded;
            }
            let (time, event) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(time >= self.now, "event queue returned a past event");
            self.now = time;
            self.events_processed += 1;

            let mut stop = false;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stop_requested: &mut stop,
            };
            self.model.handle(event, &mut ctx);
            if stop {
                break RunOutcome::Stopped;
            }
        };
        self.outcome = Some(outcome);
        outcome
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Tick,
        Stop,
    }

    #[derive(Default)]
    struct Recorder {
        ticks: Vec<SimTime>,
        draws: Vec<u32>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
            match ev {
                Ev::Tick => {
                    self.ticks.push(ctx.now());
                    self.draws.push(ctx.rng().random_range(0..1000));
                    if self.ticks.len() < 5 {
                        ctx.schedule_in(SimDuration::from_secs(10), Ev::Tick);
                    }
                }
                Ev::Stop => ctx.stop(),
            }
        }
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new(Recorder::default(), 1);
        sim.schedule(SimTime::ZERO, Ev::Tick);
        let outcome = sim.run_until(SimTime::MAX);
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(
            sim.model().ticks,
            (0..5).map(|i| SimTime::from_secs(i * 10)).collect::<Vec<_>>()
        );
        assert_eq!(sim.events_processed(), 5);
        // At most one tick is ever pending (each tick schedules the next).
        assert_eq!(sim.peak_pending_events(), 1);
        let expected_bytes = std::mem::size_of::<crate::fel::Scheduled<Ev>>();
        assert_eq!(
            sim.metrics(),
            SimMetrics {
                events_processed: 5,
                peak_pending_events: 1,
                peak_event_bytes: expected_bytes,
            }
        );
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let mut sim = Simulation::new(Recorder::default(), 1);
        sim.schedule(SimTime::ZERO, Ev::Tick);
        let outcome = sim.run_until(SimTime::from_secs(15));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.model().ticks.len(), 2); // t = 0 and t = 10
        let outcome = sim.run_until(SimTime::MAX);
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(sim.model().ticks.len(), 5);
    }

    #[test]
    fn events_exactly_at_horizon_fire() {
        let mut sim = Simulation::new(Recorder::default(), 1);
        sim.schedule(SimTime::from_secs(15), Ev::Tick);
        sim.run_until(SimTime::from_secs(15));
        assert_eq!(sim.model().ticks.len(), 1);
    }

    #[test]
    fn stop_request_halts_loop() {
        let mut sim = Simulation::new(Recorder::default(), 1);
        sim.schedule(SimTime::from_secs(1), Ev::Stop);
        sim.schedule(SimTime::from_secs(2), Ev::Tick);
        let outcome = sim.run_until(SimTime::MAX);
        assert_eq!(outcome, RunOutcome::Stopped);
        assert!(sim.model().ticks.is_empty());
    }

    #[test]
    fn event_budget_guards_runaway() {
        struct Fork;
        impl Model for Fork {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
                ctx.schedule_in(SimDuration::from_secs(1), ());
                ctx.schedule_in(SimDuration::from_secs(1), ());
            }
        }
        let mut sim = Simulation::new(Fork, 1).with_event_budget(1000);
        sim.schedule(SimTime::ZERO, ());
        assert_eq!(sim.run_until(SimTime::MAX), RunOutcome::EventBudgetExceeded);
        assert_eq!(sim.events_processed(), 1000);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let run = |seed| {
            let mut sim = Simulation::new(Recorder::default(), seed);
            sim.schedule(SimTime::ZERO, Ev::Tick);
            sim.run_until(SimTime::MAX);
            sim.into_model().draws
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should diverge");
    }

    #[test]
    fn fel_backend_does_not_change_trajectory() {
        let run = |kind| {
            let mut sim = Simulation::new(Recorder::default(), 99).with_fel(kind);
            assert_eq!(sim.fel_kind(), kind);
            sim.schedule(SimTime::ZERO, Ev::Tick);
            sim.run_until(SimTime::MAX);
            let m = sim.into_model();
            (m.ticks, m.draws)
        };
        let heap = run(FelKind::BinaryHeap);
        assert_eq!(heap, run(FelKind::Calendar));
        assert_eq!(heap, run(FelKind::CalendarTuned { bucket_width_secs: 4, bucket_count: 8 }));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad, 1);
        sim.schedule(SimTime::from_secs(5), ());
        sim.run_until(SimTime::MAX);
    }

    #[test]
    fn pending_events_visible_to_model() {
        struct Peek {
            seen: usize,
        }
        impl Model for Peek {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
                self.seen = ctx.pending_events();
            }
        }
        let mut sim = Simulation::new(Peek { seen: usize::MAX }, 1);
        sim.schedule(SimTime::ZERO, ());
        sim.schedule(SimTime::from_secs(1), ());
        sim.run_until(SimTime::ZERO);
        assert_eq!(sim.model().seen, 1);
    }
}
