//! Runs every figure and prose-claim experiment in sequence, printing
//! each report. This is the one-shot regeneration of the paper's whole
//! evaluation section.
use mpvsim_core::figures as f;

type Study = fn(&f::FigureOptions) -> Result<Vec<f::LabeledResult>, mpvsim_core::ConfigError>;

fn main() {
    let opts = match mpvsim_cli::parse_options(std::env::args().skip(1))
        .and_then(|cli| cli.figure_with_observer())
    {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let figures: Vec<(&str, Study)> = vec![
        ("Figure 1 — Baseline Infection Curves", f::fig1_baseline as Study),
        ("Figure 2 — Virus Scan (Virus 1)", f::fig2_virus_scan),
        ("Figure 3 — Detection Algorithm (Virus 2)", f::fig3_detection),
        ("Figure 4 — User Education (all viruses)", f::fig4_education),
        ("Figure 5 — Immunization (Virus 4)", f::fig5_immunization),
        ("Figure 6 — Monitoring (Virus 3)", f::fig6_monitoring),
        ("Figure 7 — Blacklisting (Virus 3)", f::fig7_blacklist),
        ("§5.2 — Blacklist Matrix (Viruses 1/2/4)", f::blacklist_matrix),
        ("§5.3 — Scaling Study", f::scaling_study),
        ("§6 — Combined Mechanisms", f::combo_study),
    ];
    for (title, run) in figures {
        eprintln!("running {title} …");
        match run(&opts) {
            Ok(results) => print!("{}", mpvsim_cli::render_report(title, &results)),
            Err(e) => {
                eprintln!("{title}: {e}");
                std::process::exit(1);
            }
        }
        println!();
    }
}
