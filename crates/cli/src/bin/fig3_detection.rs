//! Deprecated shim: forwards to `mpvsim study fig3_detection`.
fn main() {
    mpvsim_cli::commands::deprecated_shim("fig3_detection");
}
