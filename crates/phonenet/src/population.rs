//! The phone population: all phone submodels plus population-level counts.

use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;
use serde::{Deserialize, Serialize};

use mpvsim_topology::Graph;

use crate::phone::{Health, Phone, PhoneId};

/// The full population of phone submodels.
///
/// Construction mirrors §4.1 of the paper: each node of the contact graph
/// becomes a phone; a random subset of the requested size is designated
/// vulnerable ("800 are randomly designated as susceptible"); contact
/// lists are the graph's adjacency lists and therefore reciprocal.
///
/// Contact lists are stored in CSR (compressed sparse row) form — one flat
/// `adjacency` array plus per-phone `offsets` — so phone `i`'s contacts are
/// the contiguous slice `adjacency[offsets[i]..offsets[i + 1]]`. A contact
/// lookup is two array reads and touches one shared allocation, instead of
/// chasing a per-phone `Vec` on every send.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    phones: Vec<Phone>,
    /// CSR row offsets into `adjacency`; length `phones.len() + 1`.
    offsets: Vec<u32>,
    /// All contact lists, concatenated in phone order.
    adjacency: Vec<PhoneId>,
    infected_count: usize,
}

impl Population {
    /// Builds a population from a contact graph, designating a uniformly
    /// random `vulnerable_fraction` of phones as susceptible.
    ///
    /// # Panics
    ///
    /// Panics if `vulnerable_fraction` is outside `[0, 1]`.
    pub fn from_graph<R: Rng + ?Sized>(
        graph: &Graph,
        vulnerable_fraction: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&vulnerable_fraction) && vulnerable_fraction.is_finite(),
            "vulnerable_fraction must be in [0, 1]"
        );
        let n = graph.node_count();
        let vulnerable_count = (vulnerable_fraction * n as f64).round() as usize;
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let mut vulnerable = vec![false; n];
        for &i in indices.iter().take(vulnerable_count) {
            vulnerable[i] = true;
        }
        let phones: Vec<Phone> =
            (0..n).map(|i| Phone::new(PhoneId::from(i), vulnerable[i])).collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacency = Vec::new();
        offsets.push(0);
        for i in 0..n {
            let neighbors = graph.neighbors(mpvsim_topology::NodeId(i));
            adjacency.extend(neighbors.iter().map(|node| PhoneId::from(node.index())));
            offsets.push(u32::try_from(adjacency.len()).expect("contact count exceeds u32"));
        }
        Population { phones, offsets, adjacency, infected_count: 0 }
    }

    /// The contact list of `id` (reciprocal by construction): a contiguous
    /// slice of the population's shared CSR adjacency.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn contacts(&self, id: PhoneId) -> &[PhoneId] {
        let start = self.offsets[id.index()] as usize;
        let end = self.offsets[id.index() + 1] as usize;
        &self.adjacency[start..end]
    }

    /// Number of contacts of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn degree(&self, id: PhoneId) -> usize {
        (self.offsets[id.index() + 1] - self.offsets[id.index()]) as usize
    }

    /// Number of phones.
    pub fn len(&self) -> usize {
        self.phones.len()
    }

    /// True when the population has no phones.
    pub fn is_empty(&self) -> bool {
        self.phones.is_empty()
    }

    /// The phone with the given number.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn phone(&self, id: PhoneId) -> &Phone {
        &self.phones[id.index()]
    }

    /// Mutable access to a phone. Use [`Population::infect`] for
    /// infections so the population count stays consistent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn phone_mut(&mut self, id: PhoneId) -> &mut Phone {
        &mut self.phones[id.index()]
    }

    /// Iterates over all phones.
    pub fn iter(&self) -> impl Iterator<Item = &Phone> {
        self.phones.iter()
    }

    /// Infects `id` if susceptible, maintaining the infected count.
    /// Returns whether a new infection occurred.
    pub fn infect(&mut self, id: PhoneId) -> bool {
        let newly = self.phones[id.index()].infect();
        if newly {
            self.infected_count += 1;
        }
        newly
    }

    /// Number of currently infected phones (the paper's headline measure).
    pub fn infected_count(&self) -> usize {
        self.infected_count
    }

    /// Number of phones still able to be infected.
    pub fn susceptible_count(&self) -> usize {
        self.phones.iter().filter(|p| p.is_susceptible()).count()
    }

    /// Number of phones currently on the vulnerable platform and not yet
    /// immunized (susceptible or infected). Before any dynamics run this
    /// equals the designated vulnerable count.
    pub fn vulnerable_count(&self) -> usize {
        self.phones
            .iter()
            .filter(|p| matches!(p.health(), Health::Susceptible | Health::Infected))
            .count()
    }

    /// Number of immunized phones.
    pub fn immunized_count(&self) -> usize {
        self.phones.iter().filter(|p| p.health() == Health::Immunized).count()
    }

    /// All phone ids, in numbering order.
    pub fn ids(&self) -> impl Iterator<Item = PhoneId> + '_ {
        (0..self.phones.len()).map(PhoneId::from)
    }

    /// Picks a uniformly random vulnerable phone to seed the outbreak
    /// ("the infection starts with a single infected phone"). Returns
    /// `None` if no phone is susceptible.
    pub fn random_susceptible<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PhoneId> {
        let candidates: Vec<PhoneId> =
            self.phones.iter().filter(|p| p.is_susceptible()).map(|p| p.id()).collect();
        candidates.choose(rng).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpvsim_topology::GraphSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn population(n: usize, frac: f64, seed: u64) -> Population {
        let mut r = rng(seed);
        let g = GraphSpec::erdos_renyi(n, 6.0).generate(&mut r).unwrap();
        Population::from_graph(&g, frac, &mut r)
    }

    #[test]
    fn vulnerable_fraction_exact_count() {
        let pop = population(1000, 0.8, 1);
        assert_eq!(pop.len(), 1000);
        assert_eq!(pop.vulnerable_count(), 800, "paper: exactly 800 susceptible of 1000");
        assert_eq!(pop.susceptible_count(), 800);
        assert_eq!(pop.infected_count(), 0);
    }

    #[test]
    fn contact_lists_are_reciprocal() {
        let pop = population(200, 0.8, 2);
        for id in pop.ids() {
            assert_eq!(pop.degree(id), pop.contacts(id).len());
            for &c in pop.contacts(id) {
                assert!(pop.contacts(c).contains(&id), "{} lists {} but not vice versa", id, c);
            }
        }
    }

    #[test]
    fn infect_updates_count_once() {
        let mut pop = population(50, 1.0, 3);
        let id = PhoneId(0);
        assert!(pop.infect(id));
        assert!(!pop.infect(id), "double infection is a no-op");
        assert_eq!(pop.infected_count(), 1);
        assert_eq!(pop.susceptible_count(), 49);
    }

    #[test]
    fn infect_not_vulnerable_is_noop() {
        let mut pop = population(50, 0.0, 4);
        assert!(!pop.infect(PhoneId(5)));
        assert_eq!(pop.infected_count(), 0);
    }

    #[test]
    fn random_susceptible_returns_susceptible() {
        let pop = population(100, 0.5, 5);
        let mut r = rng(6);
        for _ in 0..20 {
            let id = pop.random_susceptible(&mut r).unwrap();
            assert!(pop.phone(id).is_susceptible());
        }
    }

    #[test]
    fn random_susceptible_none_when_all_immune() {
        let mut pop = population(10, 1.0, 7);
        for id in pop.ids().collect::<Vec<_>>() {
            pop.phone_mut(id).apply_patch();
        }
        assert_eq!(pop.immunized_count(), 10);
        let mut r = rng(8);
        assert!(pop.random_susceptible(&mut r).is_none());
    }

    #[test]
    fn vulnerable_designation_is_random() {
        // Different seeds should designate different subsets.
        let a = population(100, 0.5, 10);
        let b = population(100, 0.5, 11);
        let sa: Vec<bool> = a.iter().map(|p| p.is_susceptible()).collect();
        let sb: Vec<bool> = b.iter().map(|p| p.is_susceptible()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn fraction_bounds_checked() {
        let mut r = rng(12);
        let g = GraphSpec::complete(5).generate(&mut r).unwrap();
        let result = std::panic::catch_unwind(move || {
            let mut r2 = rng(13);
            Population::from_graph(&g, 1.5, &mut r2)
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_population() {
        let mut r = rng(14);
        let g = mpvsim_topology::Graph::new();
        let pop = Population::from_graph(&g, 0.8, &mut r);
        assert!(pop.is_empty());
        assert_eq!(pop.len(), 0);
    }
}
