//! The provider's MMS gateway bookkeeping.
//!
//! All MMS traffic transits the provider's gateways, which gives the
//! provider three observation channels the response mechanisms build on:
//!
//! 1. **Total infected messages observed** — drives the "virus reaches a
//!    detectable level" clock that starts signature-scan, detection-
//!    algorithm and patch-development timers.
//! 2. **Per-phone outgoing volume over a sliding window** — the
//!    monitoring mechanism's anomaly signal ("a count of the number of
//!    MMS messages sent from a particular phone during a period of time").
//! 3. **Per-phone cumulative suspected-infected count** — the blacklist
//!    trigger. Invalid random dials (Virus 3) still count: the gateway
//!    sees the send attempt even though no phone receives it.

use std::collections::VecDeque;

use mpvsim_des::{SimDuration, SimTime};

use crate::phone::PhoneId;

/// Gateway-side counters for a population of phones.
#[derive(Debug, Clone)]
pub struct Gateway {
    monitor_window: SimDuration,
    outgoing: Vec<VecDeque<SimTime>>,
    suspected: Vec<u32>,
    infected_observed: u64,
}

impl Gateway {
    /// Creates gateway state for `population_size` phones with the given
    /// monitoring window.
    pub fn new(population_size: usize, monitor_window: SimDuration) -> Self {
        Gateway {
            monitor_window,
            outgoing: vec![VecDeque::new(); population_size],
            suspected: vec![0; population_size],
            infected_observed: 0,
        }
    }

    /// The sliding-window length used for outgoing-volume monitoring.
    pub fn monitor_window(&self) -> SimDuration {
        self.monitor_window
    }

    /// Records one outgoing MMS from `phone` at `now` and returns how many
    /// outgoing messages the window now holds (including this one).
    ///
    /// A multi-recipient MMS counts once: the monitor counts *messages*,
    /// not deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn record_outgoing(&mut self, phone: PhoneId, now: SimTime) -> usize {
        let window = self.monitor_window;
        let q = &mut self.outgoing[phone.index()];
        q.push_back(now);
        Self::prune(q, now, window);
        q.len()
    }

    /// How many outgoing messages from `phone` fall inside the window
    /// ending at `now`.
    pub fn outgoing_in_window(&mut self, phone: PhoneId, now: SimTime) -> usize {
        let window = self.monitor_window;
        let q = &mut self.outgoing[phone.index()];
        Self::prune(q, now, window);
        q.len()
    }

    fn prune(q: &mut VecDeque<SimTime>, now: SimTime, window: SimDuration) {
        let cutoff = now.saturating_duration_since(SimTime::ZERO);
        let earliest_kept = if cutoff.as_secs() > window.as_secs() {
            SimTime::from_secs(now.as_secs() - window.as_secs())
        } else {
            SimTime::ZERO
        };
        while let Some(&front) = q.front() {
            if front < earliest_kept {
                q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records one suspected-infected message from `phone` (the provider's
    /// heuristic flagged it) and returns the new cumulative total.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is out of range.
    pub fn record_suspected(&mut self, phone: PhoneId) -> u32 {
        let c = &mut self.suspected[phone.index()];
        *c += 1;
        *c
    }

    /// Cumulative suspected-infected count for `phone`.
    pub fn suspected_count(&self, phone: PhoneId) -> u32 {
        self.suspected[phone.index()]
    }

    /// Records `count` infected messages observed in transit; returns the
    /// new total. This is the input to the detectability clock.
    pub fn record_infected_observed(&mut self, count: u64) -> u64 {
        self.infected_observed += count;
        self.infected_observed
    }

    /// Total infected messages the gateway has seen in transit.
    pub fn infected_observed(&self) -> u64 {
        self.infected_observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw() -> Gateway {
        Gateway::new(4, SimDuration::from_hours(1))
    }

    #[test]
    fn outgoing_counts_within_window() {
        let mut g = gw();
        let p = PhoneId(1);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(0)), 1);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(10)), 2);
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(50)), 3);
        // The t=0 entry falls outside the 1 h window at t=70 min.
        assert_eq!(g.record_outgoing(p, SimTime::from_mins(70)), 3);
        assert_eq!(g.outgoing_in_window(p, SimTime::from_mins(70)), 3);
    }

    #[test]
    fn window_prunes_fully_after_quiet_period() {
        let mut g = gw();
        let p = PhoneId(0);
        g.record_outgoing(p, SimTime::from_mins(0));
        g.record_outgoing(p, SimTime::from_mins(1));
        assert_eq!(g.outgoing_in_window(p, SimTime::from_hours(5)), 0);
    }

    #[test]
    fn boundary_timestamp_kept() {
        let mut g = gw();
        let p = PhoneId(0);
        g.record_outgoing(p, SimTime::from_hours(1));
        // Exactly `window` old: still inside the closed window.
        assert_eq!(g.outgoing_in_window(p, SimTime::from_hours(2)), 1);
        assert_eq!(g.outgoing_in_window(p, SimTime::from_secs(2 * 3600 + 1)), 0);
    }

    #[test]
    fn phones_tracked_independently() {
        let mut g = gw();
        g.record_outgoing(PhoneId(0), SimTime::ZERO);
        assert_eq!(g.outgoing_in_window(PhoneId(1), SimTime::ZERO), 0);
    }

    #[test]
    fn suspected_counts_accumulate_forever() {
        let mut g = gw();
        let p = PhoneId(2);
        assert_eq!(g.record_suspected(p), 1);
        assert_eq!(g.record_suspected(p), 2);
        assert_eq!(g.suspected_count(p), 2);
        assert_eq!(g.suspected_count(PhoneId(3)), 0);
    }

    #[test]
    fn infected_observed_totals() {
        let mut g = gw();
        assert_eq!(g.infected_observed(), 0);
        assert_eq!(g.record_infected_observed(3), 3);
        assert_eq!(g.record_infected_observed(2), 5);
        assert_eq!(g.infected_observed(), 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_phone_panics() {
        let mut g = gw();
        g.record_outgoing(PhoneId(99), SimTime::ZERO);
    }
}
